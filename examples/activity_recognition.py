#!/usr/bin/env python
"""Smartphone activity recognition with threshold-based decisions.

The scenario from the paper's introduction: an embedded classifier
evaluates Pr(Activity | sensors) and acts only when the probability
clears a confidence threshold (0.60), so an output error of 0.01 can only
flip decisions in the 0.59..0.61 band — and ProbLP guarantees the error
stays below 0.01 while cutting energy versus 32-bit float.

Uses the UniMiB-SHAR stand-in benchmark (9 activities); swap in
``har_benchmark`` for the larger circuit.

Run:  python examples/activity_recognition.py
"""

import numpy as np

from repro import ErrorTolerance, ProbLP, QueryType, compile_network
from repro.ac import evaluate_quantized
from repro.datasets import unimib_benchmark
from repro.energy import IEEE_SINGLE, circuit_energy_nj

CONFIDENCE_THRESHOLD = 0.60
NUM_TEST_WINDOWS = 40


def main() -> None:
    benchmark = unimib_benchmark()
    print(
        f"{benchmark.name}: {benchmark.num_classes} activities, "
        f"{len(benchmark.feature_names)} discretized sensor features, "
        f"test accuracy {benchmark.test_accuracy():.1%}"
    )

    compiled = compile_network(benchmark.classifier.network)
    framework = ProbLP(
        compiled, QueryType.CONDITIONAL, ErrorTolerance.absolute(0.01)
    )
    result = framework.analyze()
    print(result.summary())
    print()

    backend = framework.backend_for(result.selected_format)
    circuit = framework.binary_circuit
    energy_32b = circuit_energy_nj(circuit, IEEE_SINGLE)
    print(
        f"energy: {result.selected.energy_nj:.3f} nJ/eval selected vs "
        f"{energy_32b:.3f} nJ/eval at 32-bit float "
        f"({energy_32b / result.selected.energy_nj:.1f}x saving)"
    )
    print()

    # Threshold decisions: compare low-precision vs exact pipelines.
    agreements = 0
    decisions = 0
    for evidence in benchmark.test_evidences(limit=NUM_TEST_WINDOWS):
        quant_joint = np.array(
            [
                evaluate_quantized(
                    circuit, backend, {**evidence, benchmark.class_name: c}
                )
                for c in range(benchmark.num_classes)
            ]
        )
        exact_joint = np.array(
            [
                circuit.evaluate({**evidence, benchmark.class_name: c})
                for c in range(benchmark.num_classes)
            ]
        )
        quant_posterior = quant_joint / quant_joint.sum()
        exact_posterior = exact_joint / exact_joint.sum()
        quant_decision = (
            int(quant_posterior.argmax())
            if quant_posterior.max() >= CONFIDENCE_THRESHOLD
            else None
        )
        exact_decision = (
            int(exact_posterior.argmax())
            if exact_posterior.max() >= CONFIDENCE_THRESHOLD
            else None
        )
        agreements += quant_decision == exact_decision
        decisions += 1
    print(
        f"threshold decisions (>= {CONFIDENCE_THRESHOLD:.2f}): "
        f"{agreements}/{decisions} windows agree between the "
        f"low-precision and exact pipelines"
    )


if __name__ == "__main__":
    main()
