#!/usr/bin/env python
"""Learning an arithmetic circuit directly from data (SPN route).

The paper notes that ACs need not come from Bayesian networks — "recent
approaches learn ACs directly from data". This example learns a
sum-product network from synthetic sensor windows with LearnSPN, converts
it to an arithmetic circuit, and pushes it through the unchanged ProbLP
pipeline: bound search, representation selection, hardware generation.

Run:  python examples/spn_learning.py
"""

import numpy as np

from repro import ErrorTolerance, ProbLP, QueryType
from repro.ac.validate import is_decomposable, is_smooth
from repro.hw import check_equivalence
from repro.spn import learn_spn, spn_size, spn_to_circuit


def make_sensor_windows(n=1500, seed=0):
    """Two latent operating modes driving four discretized sensors."""
    rng = np.random.default_rng(seed)
    mode = rng.integers(0, 2, n)
    temperature = (mode + (rng.random(n) < 0.15)) % 2
    vibration = (mode + (rng.random(n) < 0.10)) % 2
    current = rng.integers(0, 3, n)  # independent of the mode
    acoustic = (mode * 2 + rng.integers(0, 2, n)).clip(0, 2)
    return np.column_stack([temperature, vibration, current, acoustic])


def main() -> None:
    data = make_sensor_windows()
    names = ["Temperature", "Vibration", "Current", "Acoustic"]
    cards = [2, 2, 3, 3]

    spn = learn_spn(data, names, cards)
    print(f"learned SPN: {spn_size(spn)} nodes, root {type(spn).__name__}")
    circuit = spn_to_circuit(spn, name="sensor_spn")
    print(f"as arithmetic circuit: {circuit}")
    print(
        f"smooth={is_smooth(circuit)} decomposable={is_decomposable(circuit)}"
    )
    print()

    # Query the learned model.
    pr_hot = circuit.evaluate({"Temperature": 1})
    pr_hot_and_shaky = circuit.evaluate({"Temperature": 1, "Vibration": 1})
    print(f"Pr(Temperature=high)                = {pr_hot:.4f}")
    print(f"Pr(Temperature=high, Vibration=high) = {pr_hot_and_shaky:.4f}")
    print(
        f"(dependence captured: joint {pr_hot_and_shaky:.3f} vs "
        f"independent {pr_hot * circuit.evaluate({'Vibration': 1}):.3f})"
    )
    print()

    # The same ProbLP flow as for BN-compiled circuits.
    framework = ProbLP(
        circuit, QueryType.MARGINAL, ErrorTolerance.absolute(0.005)
    )
    result = framework.analyze()
    print(result.summary())
    print()

    design = framework.generate_hardware(result=result)
    print(design.describe())
    vectors = [
        {"Temperature": int(t), "Vibration": int(v)}
        for t in range(2)
        for v in range(2)
    ]
    report = check_equivalence(design, vectors)
    print(
        f"hardware equivalence on {report.num_vectors} vectors: "
        f"{report.num_mismatches} mismatches"
    )


if __name__ == "__main__":
    main()
