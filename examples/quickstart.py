#!/usr/bin/env python
"""Quickstart: the paper's Figure-1 example, end to end.

Builds the three-node Bayesian network of Figure 1a, compiles it to an
arithmetic circuit (Figure 1b), evaluates the probability of the paper's
example evidence e = {A=a1, C=c3}, runs the full ProbLP analysis, and
prints the beginning of the generated Verilog.

Run:  python examples/quickstart.py
"""

from repro import ErrorTolerance, ProbLP, QueryType, compile_network
from repro.bn.networks import figure1_network


def main() -> None:
    # 1. The Bayesian network of Figure 1a: A -> B, A -> C.
    network = figure1_network()
    print(network)
    print()

    # 2. Compile it to an arithmetic circuit (the paper uses ACE; we use
    #    symbolic variable elimination).
    compiled = compile_network(network)
    print("Compiled:", compiled.circuit)

    # 3. An upward pass with indicators set from the evidence computes
    #    Pr(e). Evidence {A=a1, C=c3} sets λ_a2 = λ_c1 = λ_c2 = 0.
    evidence = {"A": 0, "C": 2}
    print(f"Pr(A=a1, C=c3) = {compiled.evaluate(evidence):.4f}")
    print()

    # 4. Full ProbLP analysis: find the cheapest representation that
    #    guarantees |error| <= 0.01 on any marginal query.
    framework = ProbLP(
        compiled, QueryType.MARGINAL, ErrorTolerance.absolute(0.01)
    )
    result = framework.analyze()
    print(result.summary())
    print()

    # 5. Evaluate the same query in the selected low-precision format.
    quantized = framework.evaluate_quantized(result.selected_format, evidence)
    exact = compiled.evaluate(evidence)
    print(
        f"quantized Pr = {quantized:.6f}   exact Pr = {exact:.6f}   "
        f"|error| = {abs(quantized - exact):.2e} "
        f"(tolerance 0.01, bound {result.selected.query_bound:.2e})"
    )
    print()

    # 6. Generate the pipelined hardware.
    design = framework.generate_hardware(result=result)
    print(design.describe())
    verilog = design.verilog()
    print("--- first lines of generated Verilog ---")
    print("\n".join(verilog.splitlines()[:8]))


if __name__ == "__main__":
    main()
