#!/usr/bin/env python
"""Hardware generation: from dataset to verified Verilog.

Runs the complete ProbLP back end for the UIWADS user-verification
benchmark: trains the classifier, compiles and analyzes the AC, generates
the fully pipelined datapath in the selected format, streams test vectors
through the vectorized stream simulator at one evaluation per cycle,
checks bit-exact equivalence against the reference quantized evaluation,
and writes the Verilog RTL next to this script. A second pass builds the
backward-program *marginal accelerator* — hardware that emits every joint
marginal per cycle — and verifies it against the engine's quantized
backward sweep.

Run:  python examples/hardware_generation.py
"""

from pathlib import Path

from repro import ErrorTolerance, ProbLP, QueryType, compile_network
from repro.datasets import uiwads_benchmark
from repro.hw import check_equivalence

NUM_VECTORS = 30


def main() -> None:
    benchmark = uiwads_benchmark()
    print(
        f"{benchmark.name}: user verification, "
        f"{len(benchmark.feature_names)} gait features, "
        f"accuracy {benchmark.test_accuracy():.1%}"
    )
    compiled = compile_network(benchmark.classifier.network)
    framework = ProbLP(
        compiled, QueryType.MARGINAL, ErrorTolerance.absolute(0.01)
    )
    result = framework.analyze()
    print(result.summary())
    print()

    design = framework.generate_hardware(result=result)
    print(design.describe())
    breakdown = design.energy_proxy()
    print(
        f"energy proxy: {breakdown.operators_fj:.0f} fJ operators + "
        f"{breakdown.registers_fj:.0f} fJ registers = "
        f"{breakdown.total_nj:.4f} nJ/eval "
        f"(prediction was {result.selected.energy_nj:.4f} nJ/eval)"
    )
    print()

    # Stream test vectors through the pipeline and check bit-exactness.
    vectors = benchmark.test_evidences(limit=NUM_VECTORS)
    joint_vectors = [
        {**evidence, benchmark.class_name: 0} for evidence in vectors
    ]
    report = check_equivalence(design, joint_vectors)
    print(
        f"pipeline equivalence: {report.num_vectors} vectors at one per "
        f"cycle, latency {report.latency_cycles} cycles, "
        f"{report.num_mismatches} mismatches"
    )
    assert report.equivalent, "generated hardware disagrees with reference!"

    output = Path(__file__).with_name("uiwads_datapath.v")
    output.write_text(design.verilog())
    print(f"wrote {output} ({len(design.verilog().splitlines())} lines)")
    print()

    # The backward program is a tape like any other: generate hardware
    # for the marginal-serving workload and verify it bit-exactly against
    # the engine's quantized backward sweep.
    marginal_result = framework.analyze(workload="marginals")
    accelerator = framework.generate_hardware(
        result=marginal_result, workload="marginals"
    )
    print(accelerator.describe())
    report = check_equivalence(accelerator, joint_vectors[:10])
    print(
        f"marginal accelerator: {len(accelerator.program.output_slots)} "
        f"joint-marginal outputs per cycle, {report.num_vectors} vectors "
        f"verified, {report.num_mismatches} mismatches"
    )
    assert report.equivalent, "marginal accelerator disagrees with engine!"


if __name__ == "__main__":
    main()
