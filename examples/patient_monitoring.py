#!/usr/bin/env python
"""Patient monitoring with the Alarm network (Beinlich et al. 1989).

A bedside monitor evaluates Pr(HYPOVOLEMIA | readings) from the observed
leaf sensors of the Alarm Bayesian network. This example runs ProbLP for
that conditional query with a relative error tolerance — the combination
where the paper's analysis mandates floating point (§3.2.2) — and then
validates the selected format on sampled patient states, including a mini
Figure-5-style bound sweep.

Run:  python examples/patient_monitoring.py
"""

from repro import ErrorTolerance, ProbLP, QueryType, compile_network
from repro.bn.networks import alarm_network
from repro.bn.sampling import forward_sample
from repro.experiments import (
    alarm_marginal_evidences,
    render_series,
    run_fixed_validation,
    run_float_validation,
)

QUERY_NODE = "HYPOVOLEMIA"
NUM_PATIENTS = 25


def main() -> None:
    network = alarm_network()
    print(network)
    monitors = network.leaves()
    print(f"observed monitors: {', '.join(monitors)}")
    print()

    compiled = compile_network(network)
    framework = ProbLP(
        compiled, QueryType.CONDITIONAL, ErrorTolerance.relative(0.01)
    )
    result = framework.analyze()
    print(result.summary())
    print()

    # Evaluate Pr(HYPOVOLEMIA=true | monitors) on sampled patients.
    backend = framework.backend_for(result.selected_format)
    circuit = framework.binary_circuit
    samples = forward_sample(network, NUM_PATIENTS, rng=42)
    worst_relative = 0.0
    for sample in samples[:5]:
        evidence = {m: sample[m] for m in monitors}
        joint = {**evidence, QUERY_NODE: 0}  # state 0 = "true"
        exact = circuit.evaluate(joint) / circuit.evaluate(evidence)
        quant_joint = framework.evaluate_quantized(
            result.selected_format, joint
        )
        quant_pr_e = framework.evaluate_quantized(
            result.selected_format, evidence
        )
        quant = quant_joint / quant_pr_e
        relative = abs(quant - exact) / exact
        worst_relative = max(worst_relative, relative)
        print(
            f"Pr({QUERY_NODE}=true | monitors) = {exact:.5f}  "
            f"quantized {quant:.5f}  rel.err {relative:.2e}"
        )
    print(f"worst relative error seen: {worst_relative:.2e} (tolerance 0.01)")
    print()

    # Mini Figure-5 sweep: bounds vs observed errors on this circuit.
    evidences = alarm_marginal_evidences(network, 20, seed=7)
    sweep = (8, 16, 24, 32)
    print(render_series(
        run_fixed_validation(circuit, evidences, sweep, framework.analysis)
    ))
    print()
    print(render_series(
        run_float_validation(circuit, evidences, sweep, framework.analysis)
    ))


if __name__ == "__main__":
    main()
