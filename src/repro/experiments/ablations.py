"""Ablation studies on ProbLP's design choices (beyond the paper).

Three ablations called out in DESIGN.md:

* **bound variant** — the paper's conditional-query constants (eqs. 14 and
  17) versus our provably sound variants; quantifies how much rigor costs
  in bits and energy;
* **decomposition shape** — balanced versus chain binarization: effect on
  the float error constant c, pipeline depth/registers, and the mantissa
  bits needed for a target tolerance;
* **elimination order** — min-fill versus min-degree: effect on AC size
  and therefore predicted energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.transform import binarize
from ..bn.network import BayesianNetwork
from ..compile import compile_network, min_degree_order, min_fill_order
from ..core.framework import ProbLP, ProbLPConfig
from ..core.queries import ErrorTolerance, QueryType
from ..energy.estimate import count_operators


@dataclass(frozen=True)
class VariantAblationRow:
    """Bound-variant comparison for one query case."""

    query: QueryType
    tolerance: ErrorTolerance
    rigorous_fixed: str
    rigorous_float: str
    paper_fixed: str
    paper_float: str


def bound_variant_ablation(
    network: BayesianNetwork, tolerance: float = 0.01
) -> list[VariantAblationRow]:
    """Compare rigorous vs paper bound variants across query cases."""
    from ..core.report import option_cell

    compiled = compile_network(network)
    cases = [
        (QueryType.MARGINAL, ErrorTolerance.absolute(tolerance)),
        (QueryType.MARGINAL, ErrorTolerance.relative(tolerance)),
        (QueryType.CONDITIONAL, ErrorTolerance.absolute(tolerance)),
        (QueryType.CONDITIONAL, ErrorTolerance.relative(tolerance)),
    ]
    rows = []
    for query, tol in cases:
        cells = {}
        for variant in ("rigorous", "paper"):
            config = ProbLPConfig(bound_variant=variant)
            result = ProbLP(compiled, query, tol, config).analyze()
            cells[(variant, "fixed")] = option_cell(result.selection.fixed)
            cells[(variant, "float")] = option_cell(result.selection.float_)
        rows.append(
            VariantAblationRow(
                query=query,
                tolerance=tol,
                rigorous_fixed=cells[("rigorous", "fixed")],
                rigorous_float=cells[("rigorous", "float")],
                paper_fixed=cells[("paper", "fixed")],
                paper_float=cells[("paper", "float")],
            )
        )
    return rows


@dataclass(frozen=True)
class DecompositionAblationRow:
    """Balanced vs chain binarization for one network."""

    strategy: str
    float_factor_count: int
    pipeline_depth: int
    total_registers: int
    mantissa_bits_needed: int


def decomposition_ablation(
    network: BayesianNetwork, tolerance: float = 0.01
) -> list[DecompositionAblationRow]:
    """Quantify what balanced trees buy over chains."""
    from ..hw.pipeline import schedule_pipeline

    compiled = compile_network(network)
    rows = []
    for strategy in ("balanced", "chain"):
        config = ProbLPConfig(decomposition=strategy)
        framework = ProbLP(
            compiled,
            QueryType.MARGINAL,
            ErrorTolerance.relative(tolerance),
            config,
        )
        result = framework.analyze()
        schedule = schedule_pipeline(framework.binary_circuit)
        float_option = result.selection.float_
        mantissa = (
            float_option.fmt.mantissa_bits if float_option.feasible else -1
        )
        rows.append(
            DecompositionAblationRow(
                strategy=strategy,
                float_factor_count=result.float_factor_count,
                pipeline_depth=schedule.latency,
                total_registers=schedule.total_registers,
                mantissa_bits_needed=mantissa,
            )
        )
    return rows


@dataclass(frozen=True)
class OrderingAblationRow:
    """Elimination-order effect on circuit size and energy."""

    ordering: str
    num_operators: int
    num_adders: int
    num_multipliers: int
    energy_nj_at_16_bits: float


def ordering_ablation(network: BayesianNetwork) -> list[OrderingAblationRow]:
    """Compare min-fill and min-degree compilations."""
    from ..arith.fixedpoint import FixedPointFormat
    from ..energy.estimate import circuit_energy_nj

    orders = {
        "min-fill": min_fill_order(network),
        "min-degree": min_degree_order(network),
    }
    rows = []
    for name, order in orders.items():
        compiled = compile_network(network, order=order)
        binary = binarize(compiled.circuit).circuit
        counts = count_operators(binary)
        energy = circuit_energy_nj(binary, FixedPointFormat(1, 15))
        rows.append(
            OrderingAblationRow(
                ordering=name,
                num_operators=counts.total,
                num_adders=counts.adders,
                num_multipliers=counts.multipliers,
                energy_nj_at_16_bits=energy,
            )
        )
    return rows
