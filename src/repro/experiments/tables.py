"""Paper-style rendering of experiment results."""

from __future__ import annotations

import csv
import io
from typing import Sequence

from ..core.queries import QueryType, ToleranceType
from ..core.report import render_table
from .overall import Table2Row
from .validation import ValidationSeries

_QUERY_NAMES = {
    QueryType.MARGINAL: "Marg. prob.",
    QueryType.CONDITIONAL: "Cond. prob.",
    QueryType.MPE: "MPE",
}
_TOLERANCE_NAMES = {
    ToleranceType.ABSOLUTE: "abs. err",
    ToleranceType.RELATIVE: "rel. err",
}

TABLE2_COLUMNS = [
    "AC",
    "Type of query",
    "Error tolerance",
    "Opt. Fx-pt I, F (nJ)",
    "Opt. Fl-pt E, M (nJ)",
    "Selected",
    "Max error observed",
    "Proxy energy (nJ)",
    "32b Fl-pt (nJ)",
]


def table2_row_dict(row: Table2Row) -> dict[str, str]:
    return {
        "AC": row.ac_name,
        "Type of query": _QUERY_NAMES[row.query],
        "Error tolerance": (
            f"{_TOLERANCE_NAMES[row.tolerance.kind]} {row.tolerance.value:g}"
        ),
        "Opt. Fx-pt I, F (nJ)": row.fixed_cell,
        "Opt. Fl-pt E, M (nJ)": row.float_cell,
        "Selected": f"{row.selected_kind} [{row.selected_format}]",
        "Max error observed": f"{row.max_observed_error:.1e}",
        "Proxy energy (nJ)": f"{row.post_synthesis_proxy_nj:.2g}",
        "32b Fl-pt (nJ)": f"{row.energy_32b_float_nj:.2g}",
    }


def render_table2(rows: Sequence[Table2Row]) -> str:
    """The reproduced Table 2 as an aligned ASCII table."""
    return render_table([table2_row_dict(r) for r in rows], TABLE2_COLUMNS)


def table2_csv(rows: Sequence[Table2Row]) -> str:
    """The reproduced Table 2 as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TABLE2_COLUMNS)
    writer.writeheader()
    for row in rows:
        writer.writerow(table2_row_dict(row))
    return buffer.getvalue()


def validation_csv(series: ValidationSeries) -> str:
    """A Figure-5 curve as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["bits", "bound", "max_observed", "mean_observed"])
    for point in series.points:
        writer.writerow(
            [point.bits, point.bound, point.max_observed, point.mean_observed]
        )
    return buffer.getvalue()
