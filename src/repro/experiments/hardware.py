"""Hardware-design survey: forward vs backward-pass accelerators (PR 4).

For each benchmark network and workload, run the workload-aware §3.3
format search, lower the selected format to a pipelined datapath
(:class:`~repro.hw.netlist.HardwareDesign` — the forward evaluation
pipeline for the joint workload, the backward-program marginal
accelerator for the marginals workload), collect latency / register /
energy metrics, and verify a sampled evidence stream bit-exactly against
the engine's quantized executors with the vectorized stream simulator.

This is the end-to-end path the ``problp hw`` subcommand serves, bundled
as a harness so the whole survey regenerates as one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bn.networks import get_network
from ..bn.sampling import forward_sample
from ..compile import compile_network
from ..core.framework import ProbLP
from ..core.optimizer import Workload
from ..core.queries import ErrorTolerance, QueryType
from ..core.report import format_name, render_table
from ..hw.verify import check_equivalence


@dataclass(frozen=True)
class HardwareSurveyRow:
    """Design metrics of one (network, workload) accelerator."""

    network: str
    workload: str
    fmt: str
    outputs: int
    latency_cycles: int
    registers: int
    energy_nj: float
    verified_vectors: int
    equivalent: bool


def survey_network_hardware(
    network_name: str,
    workload: Workload | str,
    tolerance: float = 0.01,
    verify_vectors: int = 16,
    seed: int = 4242,
) -> HardwareSurveyRow:
    """Search, generate and stream-verify one accelerator."""
    workload = Workload.coerce(workload)
    network = get_network(network_name)
    framework = ProbLP(
        compile_network(network),
        QueryType.MARGINAL,
        ErrorTolerance.absolute(tolerance),
    )
    result = framework.analyze(workload)
    design = framework.generate_hardware(result=result, workload=workload)
    leaves = network.leaves()
    batch = [
        {leaf: sample[leaf] for leaf in leaves}
        for sample in forward_sample(network, verify_vectors, rng=seed)
    ]
    report = check_equivalence(design, batch)
    return HardwareSurveyRow(
        network=network_name,
        workload=workload.value,
        fmt=f"{result.selected.kind} [{format_name(design.fmt)}]",
        outputs=len(design.program.output_slots),
        latency_cycles=design.latency_cycles,
        registers=design.program.total_registers,
        energy_nj=design.energy_proxy().total_nj,
        verified_vectors=report.num_vectors,
        equivalent=report.equivalent,
    )


def run_hardware_survey(
    networks: Sequence[str] = ("sprinkler", "asia"),
    tolerance: float = 0.01,
    verify_vectors: int = 16,
    seed: int = 4242,
) -> list[HardwareSurveyRow]:
    """Both workloads' accelerators for each benchmark network."""
    rows = []
    for name in networks:
        for workload in (Workload.JOINT, Workload.MARGINALS):
            rows.append(
                survey_network_hardware(
                    name,
                    workload,
                    tolerance=tolerance,
                    verify_vectors=verify_vectors,
                    seed=seed,
                )
            )
    return rows


def render_hardware_survey(rows: Sequence[HardwareSurveyRow]) -> str:
    """ASCII table of the survey (the benchmark artifact rendering)."""
    table_rows = [
        {
            "network": row.network,
            "workload": row.workload,
            "format": row.fmt,
            "outputs": str(row.outputs),
            "latency": str(row.latency_cycles),
            "registers": str(row.registers),
            "energy (nJ)": f"{row.energy_nj:.3g}",
            "verified": (
                f"{row.verified_vectors} vectors "
                f"{'bit-exact' if row.equivalent else 'MISMATCH'}"
            ),
        }
        for row in rows
    ]
    return render_table(
        table_rows,
        [
            "network",
            "workload",
            "format",
            "outputs",
            "latency",
            "registers",
            "energy (nJ)",
            "verified",
        ],
    )
