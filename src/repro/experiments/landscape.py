"""The raster landscape workload: one tape, one θ row per map cell (PR 7).

A probabilistic raster asks the *same* Bayesian network query in every
grid cell, but each cell carries its own parameterization — CPT entries
modulated by smooth spatial fields (moisture, fertility). Classically
that means recompiling or re-seeding one circuit per cell; here the
whole raster becomes a single ``(n_cells, n_params)`` θ batch replayed
over one compiled tape: exact float64 in one struct-of-arrays sweep,
quantized fixed point in a second, and a §3 error certificate that
covers *every cell at once* — the envelope max-value analysis over the
full θ batch feeds the §3.1.3 delta propagation, so one root bound
certifies the entire raster against the exact surface.

:func:`landscape_tiles` chunks the θ matrix into row tiles, the unit a
serve client streams as one ``theta_batch`` request per map tile (see
``repro.serve``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from ..arith.fixedpoint import FixedPointFormat
from ..bn.learning import NetworkParameterMap
from ..bn.network import BayesianNetwork
from ..bn.networks.toy import landscape_network

#: The per-cell query: probability the species is present in the cell.
DEFAULT_EVIDENCE: dict[str, int] = {"Presence": 1}

#: Default quantization under certificate: forward values stay in
#: [0, 1], so 2 integer bits cover range plus rounding slop.
DEFAULT_FORMAT = FixedPointFormat(2, 14)

#: Per-cell probabilities are clipped into this band so every θ row
#: stays strictly positive (no zero-probability cells) and normalized.
PROBABILITY_BAND = (0.01, 0.99)


def landscape_parameter_map(
    network: BayesianNetwork | None = None,
) -> NetworkParameterMap:
    """CPT-entry → θ-column map over the binarized landscape circuit.

    The circuit is binarized so the quantized sweep and the §3
    certificate describe the same two-input operator stream the
    generated hardware would run.
    """
    from ..ac.transform import binarize
    from ..compile import compile_network

    network = network or landscape_network()
    circuit = binarize(compile_network(network).circuit).circuit
    return NetworkParameterMap(network, circuit)


def landscape_fields(height: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Two smooth deterministic [0, 1] fields: moisture and fertility."""
    if height <= 0 or width <= 0:
        raise ValueError("landscape needs a positive height and width")
    rows = np.linspace(0.0, 1.0, height)[:, None]
    cols = np.linspace(0.0, 1.0, width)[None, :]
    moisture = 0.5 + 0.5 * np.sin(2.0 * np.pi * cols) * np.cos(np.pi * rows)
    fertility = 0.5 + 0.5 * np.cos(1.5 * np.pi * (rows + cols))
    return moisture, fertility


def landscape_theta(
    height: int,
    width: int,
    parameter_map: NetworkParameterMap | None = None,
) -> np.ndarray:
    """The raster's ``(height·width, n_params)`` θ batch, row-major cells.

    Each cell's CPTs are the base tables with every Bernoulli success
    probability shifted by the cell's moisture/fertility values and
    clipped into :data:`PROBABILITY_BAND`; complements are set
    alongside, so every row remains a valid parameterization.
    """
    pmap = parameter_map or landscape_parameter_map()
    network = pmap.network
    moisture, fertility = landscape_fields(height, width)
    m = moisture.ravel()
    f = fertility.ravel()
    theta = np.tile(pmap.base_row(), (m.size, 1))

    def set_binary(child: str, parents: tuple, positive: np.ndarray) -> None:
        positive = np.clip(positive, *PROBABILITY_BAND)
        theta[:, pmap.column((child, 1, parents))] = positive
        theta[:, pmap.column((child, 0, parents))] = 1.0 - positive

    set_binary("Rain", (), 0.08 + 0.84 * m)
    set_binary("Soil", (), 0.08 + 0.84 * f)
    vegetation = network.cpt("Vegetation")
    for rain_state in (0, 1):
        for soil_state in (0, 1):
            base = float(vegetation.table[rain_state, soil_state, 1])
            set_binary(
                "Vegetation",
                (rain_state, soil_state),
                base + 0.25 * (m - 0.5) + 0.2 * (f - 0.5),
            )
    presence = network.cpt("Presence")
    for veg_state in (0, 1):
        base = float(presence.table[veg_state, 1])
        set_binary("Presence", (veg_state,), base + 0.15 * (f - 0.5))
    return theta


def landscape_tiles(
    theta: np.ndarray, tile_rows: int = 256
) -> Iterator[tuple[int, np.ndarray]]:
    """Stream the raster's θ batch as row tiles ``(start, tile)``.

    The serve client sends exactly one ``theta_batch`` request per tile;
    the micro-batcher coalesces tiles of one circuit back into a single
    batched replay, so streaming granularity costs no tape sweeps.
    """
    theta = np.asarray(theta)
    if tile_rows <= 0:
        raise ValueError("tile_rows must be positive")
    for start in range(0, theta.shape[0], tile_rows):
        yield start, theta[start : start + tile_rows]


def certify_landscape(circuit, theta: np.ndarray, fmt: FixedPointFormat) -> float:
    """The §3 root bound covering every θ row of the raster at once.

    Seeds the §3.1.3 fixed-point delta propagation with the *envelope*
    max-value analysis over the whole θ batch
    (:func:`repro.engine.theta_envelope_max_values`): SUM/PRODUCT/MAX
    are monotone in their non-negative leaves, so the column-wise θ
    maxima dominate each cell's node values and one propagation bounds
    ``|exact − quantized|`` for the entire raster.
    """
    from ..core.errormodels import FixedErrorModel
    from ..engine import tape_analysis_for, tape_for, theta_envelope_max_values

    tape = tape_for(circuit)
    envelope = theta_envelope_max_values(tape, theta)
    model = FixedErrorModel.for_format(fmt)
    deltas = tape_analysis_for(tape).fixed_deltas(
        np.asarray([model.rounding_error]), envelope
    )[:, 0]
    return float(deltas[tape.require_root()])


@dataclass(frozen=True)
class LandscapeResult:
    """Exact and quantized rasters plus the raster-wide certificate."""

    height: int
    width: int
    fmt: FixedPointFormat
    evidence: dict[str, int]
    exact: np.ndarray
    quantized: np.ndarray
    root_bound: float

    @property
    def n_cells(self) -> int:
        return self.height * self.width

    @property
    def max_abs_error(self) -> float:
        """Measured worst-case cell error of the quantized raster."""
        return float(np.abs(self.exact - self.quantized).max())

    @property
    def certified(self) -> bool:
        """True when the measured raster error sits under the §3 bound."""
        return self.max_abs_error <= self.root_bound


def run_landscape(
    height: int = 24,
    width: int = 24,
    fmt: FixedPointFormat | None = None,
    evidence: Mapping[str, int] | None = None,
    parameter_map: NetworkParameterMap | None = None,
) -> LandscapeResult:
    """Evaluate the raster exactly and quantized, then certify it.

    Two batched tape replays for the whole grid — one exact float64
    θ sweep, one per-row-quantized fixed-point sweep — plus one
    envelope-seeded bound propagation. No per-cell compilation, no
    per-cell Python loop.
    """
    from ..engine import session_for

    pmap = parameter_map or landscape_parameter_map()
    fmt = fmt or DEFAULT_FORMAT
    evidence = DEFAULT_EVIDENCE if evidence is None else dict(evidence)
    theta = landscape_theta(height, width, pmap)
    session = session_for(pmap.circuit)
    exact = session.evaluate_theta_batch(theta, evidence)
    quantized = session.evaluate_quantized_batch(fmt, [evidence], theta=theta)
    return LandscapeResult(
        height=height,
        width=width,
        fmt=fmt,
        evidence=dict(evidence),
        exact=exact.reshape(height, width),
        quantized=quantized.reshape(height, width),
        root_bound=certify_landscape(pmap.circuit, theta, fmt),
    )


#: Glyph ramp for the ASCII raster (low → high probability).
_RAMP = " .:-=+*#%@"


def render_landscape(result: LandscapeResult, raster: bool = True) -> str:
    """ASCII report: certificate summary plus an optional heat map."""
    evidence = ", ".join(f"{k}={v}" for k, v in result.evidence.items())
    verdict = "CERTIFIED" if result.certified else "VIOLATED"
    lines = [
        f"landscape {result.height}x{result.width} "
        f"({result.n_cells} cells) — Pr({evidence or 'no evidence'}) per cell",
        f"format: {result.fmt.describe()}",
        f"exact range: [{result.exact.min():.4f}, {result.exact.max():.4f}]",
        f"max |exact - quantized|: {result.max_abs_error:.3e}",
        f"raster-wide section-3 bound: {result.root_bound:.3e} [{verdict}]",
    ]
    if raster:
        low = float(result.exact.min())
        span = float(result.exact.max()) - low or 1.0
        scaled = (result.exact - low) / span
        indices = np.minimum((scaled * len(_RAMP)).astype(int), len(_RAMP) - 1)
        lines.append("")
        lines.extend("".join(_RAMP[i] for i in row) for row in indices)
    return "\n".join(lines)
