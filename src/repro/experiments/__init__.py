"""Experiment harnesses that regenerate every paper table and figure."""

from .ablations import (
    DecompositionAblationRow,
    OrderingAblationRow,
    VariantAblationRow,
    bound_variant_ablation,
    decomposition_ablation,
    ordering_ablation,
)
from .hardware import (
    HardwareSurveyRow,
    render_hardware_survey,
    run_hardware_survey,
    survey_network_hardware,
)
from .overall import (
    QueryCase,
    Table2Row,
    run_alarm_case,
    run_benchmark_case,
    standard_cases,
)
from .sweeps import (
    AccuracyPoint,
    TolerancePoint,
    accuracy_impact_sweep,
    render_accuracy_sweep,
    render_tolerance_sweep,
    tolerance_energy_sweep,
)
from .tables import render_table2, table2_csv, validation_csv
from .validation import (
    PAPER_SWEEP,
    ValidationPoint,
    ValidationSeries,
    alarm_marginal_evidences,
    render_series,
    run_fixed_validation,
    run_float_validation,
    run_posterior_validation,
)
from .workloads import (
    WorkloadComparisonPoint,
    render_workload_sweep,
    workload_format_sweep,
)

__all__ = [
    "AccuracyPoint",
    "DecompositionAblationRow",
    "HardwareSurveyRow",
    "OrderingAblationRow",
    "PAPER_SWEEP",
    "QueryCase",
    "Table2Row",
    "TolerancePoint",
    "ValidationPoint",
    "ValidationSeries",
    "VariantAblationRow",
    "WorkloadComparisonPoint",
    "accuracy_impact_sweep",
    "alarm_marginal_evidences",
    "bound_variant_ablation",
    "decomposition_ablation",
    "ordering_ablation",
    "render_accuracy_sweep",
    "render_hardware_survey",
    "render_series",
    "render_table2",
    "render_tolerance_sweep",
    "render_workload_sweep",
    "run_alarm_case",
    "run_benchmark_case",
    "run_hardware_survey",
    "run_fixed_validation",
    "run_float_validation",
    "run_posterior_validation",
    "standard_cases",
    "survey_network_hardware",
    "table2_csv",
    "tolerance_energy_sweep",
    "validation_csv",
    "workload_format_sweep",
]
