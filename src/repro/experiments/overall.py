"""Overall-performance experiment (§4.2, Table 2).

Runs the complete ProbLP pipeline — bound search, representation
selection, hardware generation — for every (AC, query, tolerance) row of
the paper's Table 2 and measures the maximum observed error of the
selected representation on the benchmark's test set, the
post-synthesis-proxy energy, and the 32-bit-float reference energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..bn.sampling import forward_sample
from ..compile import compile_network
from ..core.framework import ProbLP, ProbLPConfig
from ..core.queries import ErrorTolerance, QueryType, ToleranceType
from ..core.report import ProbLPResult, option_cell
from ..datasets.benchmark import SensorBenchmark
from ..energy.estimate import circuit_energy_nj
from ..energy.models import IEEE_SINGLE
from ..hw import generate_hardware


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2."""

    ac_name: str
    query: QueryType
    tolerance: ErrorTolerance
    fixed_cell: str
    float_cell: str
    selected_kind: str
    selected_format: str
    max_observed_error: float
    selected_energy_nj: float
    post_synthesis_proxy_nj: float
    energy_32b_float_nj: float
    result: ProbLPResult

    @property
    def within_tolerance(self) -> bool:
        return self.max_observed_error <= self.tolerance.value


@dataclass(frozen=True)
class QueryCase:
    """A (query type, tolerance) combination to analyze."""

    query: QueryType
    tolerance: ErrorTolerance

    def describe(self) -> str:
        return f"{self.query.value}/{self.tolerance.describe()}"


#: The combinations evaluated for HAR in Table 2 (all four), of which the
#: other ACs use subsets.
def standard_cases(tolerance: float = 0.01) -> tuple[QueryCase, ...]:
    return (
        QueryCase(QueryType.MARGINAL, ErrorTolerance.absolute(tolerance)),
        QueryCase(QueryType.MARGINAL, ErrorTolerance.relative(tolerance)),
        QueryCase(QueryType.CONDITIONAL, ErrorTolerance.absolute(tolerance)),
        QueryCase(QueryType.CONDITIONAL, ErrorTolerance.relative(tolerance)),
    )


def _measure_errors(
    framework: ProbLP,
    case: QueryCase,
    class_name: str,
    num_classes: int,
    evidences: Sequence[dict[str, int]],
) -> float:
    """Max observed test-set error of the selected representation.

    Marginal queries evaluate Pr(class = c, features) for every class c;
    conditional queries form the ratio with Pr(features). References come
    from exact float64 batch evaluation. All sweeps — exact and
    quantized — run batched on the framework's compiled-tape session.
    """
    result = framework.analyze()
    fmt = result.selected_format
    session = framework.session

    joint_evidences = [
        {**evidence, class_name: c}
        for evidence in evidences
        for c in range(num_classes)
    ]
    exact_joint = session.evaluate_batch(joint_evidences).reshape(
        len(evidences), num_classes
    )
    exact_pr_e = exact_joint.sum(axis=1)
    quant_joint_all = np.asarray(
        session.evaluate_quantized_batch(fmt, joint_evidences)
    ).reshape(len(evidences), num_classes)
    if case.query is QueryType.CONDITIONAL:
        quant_pr_e_all = np.asarray(
            session.evaluate_quantized_batch(fmt, list(evidences))
        )

    worst = 0.0
    for row, evidence in enumerate(evidences):
        quant_joint = quant_joint_all[row]
        if case.query in (QueryType.MARGINAL, QueryType.MPE):
            # Single-evaluation queries (on the max-product circuit for
            # MPE): compare the per-class outputs directly.
            exact_values = exact_joint[row]
            quant_values = quant_joint
        else:  # conditional: ratio of quantized joint and quantized Pr(e)
            quant_pr_e = quant_pr_e_all[row]
            if quant_pr_e == 0.0 or exact_pr_e[row] == 0.0:
                continue
            exact_values = exact_joint[row] / exact_pr_e[row]
            quant_values = quant_joint / quant_pr_e
        for exact, quant in zip(exact_values, quant_values):
            if case.tolerance.kind is ToleranceType.ABSOLUTE:
                worst = max(worst, abs(quant - exact))
            elif exact > 0.0:
                worst = max(worst, abs(quant - exact) / exact)
    return worst


def run_benchmark_case(
    benchmark: SensorBenchmark,
    case: QueryCase,
    test_limit: int | None = 100,
    config: ProbLPConfig | None = None,
) -> Table2Row:
    """One Table 2 row for a sensor benchmark.

    MPE cases analyze and measure the max-product compilation of the
    same network; marginal/conditional cases the network polynomial.
    """
    if case.query is QueryType.MPE:
        from ..compile import compile_mpe

        compiled = compile_mpe(benchmark.classifier.network)
    else:
        compiled = compile_network(benchmark.classifier.network)
    framework = ProbLP(compiled, case.query, case.tolerance, config)
    result = framework.analyze()
    evidences = benchmark.test_evidences(limit=test_limit)
    max_error = _measure_errors(
        framework,
        case,
        benchmark.class_name,
        benchmark.num_classes,
        evidences,
    )
    return _assemble_row(benchmark.name, case, framework, result, max_error)


def run_alarm_case(
    case: QueryCase,
    num_instances: int = 100,
    seed: int = 1000,
    config: ProbLPConfig | None = None,
    query_variable: str = "HYPOVOLEMIA",
) -> Table2Row:
    """One Table 2 row for the Alarm network.

    Following the paper, evidence is observed on the BN's leaf nodes and
    the query targets a root node; the test set is sampled from the
    network itself.
    """
    from ..bn.networks import alarm_network

    network = alarm_network()
    compiled = compile_network(network)
    framework = ProbLP(compiled, case.query, case.tolerance, config)
    result = framework.analyze()
    leaves = network.leaves()
    samples = forward_sample(network, num_instances, rng=seed)
    evidences = [{leaf: s[leaf] for leaf in leaves} for s in samples]
    num_classes = network.variable(query_variable).cardinality
    max_error = _measure_errors(
        framework,
        case,
        query_variable,
        num_classes,
        evidences,
    )
    return _assemble_row("Alarm", case, framework, result, max_error)


def _assemble_row(
    name: str,
    case: QueryCase,
    framework: ProbLP,
    result: ProbLPResult,
    max_error: float,
) -> Table2Row:
    selected_fmt = result.selected_format
    design = generate_hardware(
        framework.binary_circuit,
        selected_fmt,
        energy_model=framework.config.energy_model,
    )
    energy_32b = circuit_energy_nj(
        framework.binary_circuit, IEEE_SINGLE, framework.config.energy_model
    )
    return Table2Row(
        ac_name=name,
        query=case.query,
        tolerance=case.tolerance,
        fixed_cell=option_cell(result.selection.fixed),
        float_cell=option_cell(result.selection.float_),
        selected_kind=result.selected.kind,
        selected_format=selected_fmt.describe(),
        max_observed_error=max_error,
        selected_energy_nj=result.selected.energy_nj,
        post_synthesis_proxy_nj=design.energy_proxy().total_nj,
        energy_32b_float_nj=energy_32b,
        result=result,
    )
