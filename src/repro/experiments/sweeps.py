"""Energy/tolerance trade-off and accuracy-impact sweeps.

Two experiments beyond the paper's tables that substantiate its closing
claims:

* :func:`tolerance_energy_sweep` — §4.2's remark that "the choice of
  0.01 error tolerance is arbitrary and higher energy-efficiency can be
  achieved for relaxed error tolerances": sweeps the tolerance and
  reports the selected representation and its energy at every point;
* :func:`accuracy_impact_sweep` — the introduction's motivation (a
  threshold-based classifier tolerates small probability errors):
  measures classification agreement between the quantized and exact
  pipelines across fraction-bit settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..arith.fixedpoint import FixedPointFormat
from ..compile import compile_network
from ..core.framework import ProbLP, ProbLPConfig
from ..core.queries import ErrorTolerance, QueryType
from ..datasets.benchmark import SensorBenchmark


@dataclass(frozen=True)
class TolerancePoint:
    """Selected representation and energy at one tolerance setting."""

    tolerance: float
    selected_kind: str
    selected_format: str
    energy_nj: float
    energy_32b_ratio: float


def tolerance_energy_sweep(
    circuit,
    query: QueryType = QueryType.MARGINAL,
    tolerances: Sequence[float] = (0.1, 0.03, 0.01, 0.003, 1e-3, 1e-4, 1e-5),
    kind: str = "absolute",
    config: ProbLPConfig | None = None,
) -> list[TolerancePoint]:
    """Energy of the optimal representation across tolerances.

    Energy must be non-increasing as the tolerance relaxes — asserted by
    the bench that regenerates this sweep.
    """
    from ..energy.estimate import circuit_energy_nj
    from ..energy.models import IEEE_SINGLE

    points = []
    for tolerance in tolerances:
        spec = (
            ErrorTolerance.absolute(tolerance)
            if kind == "absolute"
            else ErrorTolerance.relative(tolerance)
        )
        framework = ProbLP(circuit, query, spec, config)
        result = framework.analyze()
        reference = circuit_energy_nj(
            framework.binary_circuit, IEEE_SINGLE, framework.config.energy_model
        )
        points.append(
            TolerancePoint(
                tolerance=tolerance,
                selected_kind=result.selected.kind,
                selected_format=result.selected_format.describe(),
                energy_nj=result.selected.energy_nj,
                energy_32b_ratio=reference / result.selected.energy_nj,
            )
        )
    return points


@dataclass(frozen=True)
class AccuracyPoint:
    """Quantized-vs-exact classifier behaviour at one precision."""

    fraction_bits: int
    agreement: float  # fraction of test rows with identical argmax
    quantized_accuracy: float
    exact_accuracy: float


def accuracy_impact_sweep(
    benchmark: SensorBenchmark,
    fraction_bits_sweep: Sequence[int] = (4, 6, 8, 10, 12, 16),
    test_limit: int | None = 200,
) -> list[AccuracyPoint]:
    """Classification impact of fixed-point inference across precisions.

    For every precision, runs the quantized AC over the test set (all
    class states per row), takes the argmax, and compares decisions and
    accuracy with the exact pipeline.
    """
    compiled = compile_network(benchmark.classifier.network)
    from ..ac.transform import binarize

    binary = binarize(compiled.circuit).circuit
    rows = benchmark.split.test_features
    labels = benchmark.split.test_labels
    if test_limit is not None:
        rows = rows[:test_limit]
        labels = labels[:test_limit]

    joint_evidences = [
        {**benchmark.evidence_for_row(row), benchmark.class_name: c}
        for row in rows
        for c in range(benchmark.num_classes)
    ]
    from ..engine import session_for

    # One compiled tape serves the exact reference and every precision.
    session = session_for(binary)
    exact = session.evaluate_batch(joint_evidences).reshape(
        len(rows), benchmark.num_classes
    )
    exact_predictions = exact.argmax(axis=1)
    exact_accuracy = float((exact_predictions == labels).mean())

    points = []
    for fraction_bits in fraction_bits_sweep:
        fmt = FixedPointFormat(1, fraction_bits)
        quantized = np.asarray(
            session.evaluate_quantized_batch(fmt, joint_evidences)
        ).reshape(len(rows), benchmark.num_classes)
        predictions = quantized.argmax(axis=1)
        points.append(
            AccuracyPoint(
                fraction_bits=fraction_bits,
                agreement=float((predictions == exact_predictions).mean()),
                quantized_accuracy=float((predictions == labels).mean()),
                exact_accuracy=exact_accuracy,
            )
        )
    return points


def render_tolerance_sweep(points: list[TolerancePoint]) -> str:
    from ..core.report import render_table

    rows = [
        {
            "tolerance": f"{p.tolerance:g}",
            "selected": f"{p.selected_kind} [{p.selected_format}]",
            "energy (nJ)": f"{p.energy_nj:.4g}",
            "vs 32b float": f"{p.energy_32b_ratio:.1f}x",
        }
        for p in points
    ]
    return render_table(
        rows, ["tolerance", "selected", "energy (nJ)", "vs 32b float"]
    )


def render_accuracy_sweep(points: list[AccuracyPoint]) -> str:
    from ..core.report import render_table

    rows = [
        {
            "F bits": str(p.fraction_bits),
            "decision agreement": f"{p.agreement:.1%}",
            "quantized accuracy": f"{p.quantized_accuracy:.1%}",
            "exact accuracy": f"{p.exact_accuracy:.1%}",
        }
        for p in points
    ]
    return render_table(
        rows,
        ["F bits", "decision agreement", "quantized accuracy", "exact accuracy"],
    )
