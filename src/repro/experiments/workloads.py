"""Joint-vs-marginals workload comparison for the §3.3 optimizer (PR 3).

The engine serves two repeated-query workloads from the same compiled
tape: joint evaluations (one upward sweep per query) and batched
posterior marginals (one upward plus one downward sweep). The adjoint
factor counts of the backward program are strictly larger than the
forward counts, so a format chosen for joints is *not* automatically
safe for marginals — this sweep quantifies the gap by running the
workload-aware search for both workloads across a tolerance range and
reporting the selected formats, bounds and energy side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.framework import ProbLP, ProbLPConfig
from ..core.optimizer import Workload
from ..core.queries import ErrorTolerance, QueryType
from ..core.report import ProbLPResult, format_name


@dataclass(frozen=True)
class WorkloadComparisonPoint:
    """Formats selected for the two workloads at one tolerance."""

    tolerance: float
    joint: ProbLPResult
    marginals: ProbLPResult

    @property
    def joint_format(self) -> str:
        return f"{self.joint.selected.kind} [{format_name(self.joint.selected_format)}]"

    @property
    def marginals_format(self) -> str:
        return (
            f"{self.marginals.selected.kind} "
            f"[{format_name(self.marginals.selected_format)}]"
        )

    @property
    def marginals_bits_premium(self) -> int:
        """Extra precision bits the marginals workload demands.

        Compared between the float candidates of both searches (the
        marginals workload always selects float): how many more mantissa
        bits the adjoint ``posterior_bound`` requires than the forward
        root-query bound at the same tolerance.
        """
        joint_float = self.joint.selection.float_
        marginals_float = self.marginals.selection.float_
        if joint_float.fmt is None or marginals_float.fmt is None:
            return 0
        return (
            marginals_float.fmt.mantissa_bits - joint_float.fmt.mantissa_bits
        )


def workload_format_sweep(
    circuit,
    tolerances: Sequence[float] = (0.1, 0.03, 0.01, 0.003, 1e-3, 1e-4),
    query: QueryType = QueryType.MARGINAL,
    config: ProbLPConfig | None = None,
    validation_batch: Sequence[Mapping[str, int]] | None = None,
) -> list[WorkloadComparisonPoint]:
    """Run the workload-aware search for both workloads per tolerance.

    One :class:`~repro.core.framework.ProbLP` instance per tolerance,
    but every search replays the same cached tape analysis — the whole
    sweep walks the circuit's extremes/counts exactly once. Passing
    ``validation_batch`` measures each selected format empirically
    through the engine's vectorized quantized executors.
    """
    points = []
    for tolerance in tolerances:
        framework = ProbLP(
            circuit, query, ErrorTolerance.absolute(tolerance), config
        )
        points.append(
            WorkloadComparisonPoint(
                tolerance=tolerance,
                joint=framework.optimize(
                    Workload.JOINT, validation_batch=validation_batch
                ),
                marginals=framework.optimize(
                    Workload.MARGINALS, validation_batch=validation_batch
                ),
            )
        )
    return points


def render_workload_sweep(
    points: list[WorkloadComparisonPoint],
) -> str:
    """ASCII table of the joint-vs-marginals format comparison."""
    from ..core.report import render_table

    rows = []
    for point in points:
        row = {
            "abs tol": f"{point.tolerance:g}",
            "joint pick": point.joint_format,
            "marginals pick": point.marginals_format,
            "extra M bits": f"+{point.marginals_bits_premium}",
            "posterior c": str(point.marginals.posterior_factor_count),
        }
        if point.marginals.empirical is not None:
            row["measured max err"] = (
                f"{point.marginals.empirical.max_error:.2e}"
            )
        rows.append(row)
    columns = [
        "abs tol",
        "joint pick",
        "marginals pick",
        "extra M bits",
        "posterior c",
    ]
    if points and points[0].marginals.empirical is not None:
        columns.append("measured max err")
    return render_table(rows, columns)
