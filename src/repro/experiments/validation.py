"""Bound-validation experiment (§4.1, Figure 5).

Sweeps fraction bits (fixed point, Figure 5a) and mantissa bits (float,
Figure 5b) on the AC compiled from the Alarm network, evaluating marginal
queries over a sampled test set, and reports for every precision the
analytical bound next to the mean and maximum observed error. The
observed maximum must sit below the bound at every point — that is the
claim Figure 5 validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..bn.network import BayesianNetwork
from ..bn.sampling import forward_sample
from ..core.bounds import propagate_fixed_bounds
from ..core.optimizer import CircuitAnalysis, required_exponent_bits, required_integer_bits
from ..engine import session_for

#: The paper sweeps 8..40 bits in Figure 5.
PAPER_SWEEP = tuple(range(8, 41, 2))


@dataclass(frozen=True)
class ValidationPoint:
    """One sweep point: analytical bound vs observed errors."""

    bits: int
    bound: float
    max_observed: float
    mean_observed: float

    @property
    def holds(self) -> bool:
        return self.max_observed <= self.bound


@dataclass(frozen=True)
class ValidationSeries:
    """A full Figure-5 curve."""

    representation: str  # "fixed" or "float"
    error_kind: str  # "absolute" or "relative"
    points: tuple[ValidationPoint, ...]

    @property
    def all_hold(self) -> bool:
        return all(point.holds for point in self.points)


def alarm_marginal_evidences(
    network: BayesianNetwork,
    num_instances: int,
    seed: int = 1000,
) -> list[dict[str, int]]:
    """Sample test instances and project them onto the BN's leaf nodes.

    Matches the paper's setup: "the leaf nodes of the BN were used as
    evidence nodes" and the Alarm test set is sampled from the network.
    """
    leaves = network.leaves()
    samples = forward_sample(network, num_instances, rng=seed)
    return [{leaf: sample[leaf] for leaf in leaves} for sample in samples]


def run_fixed_validation(
    circuit: ArithmeticCircuit,
    evidences: Sequence[Mapping[str, int]],
    bits_sweep: Sequence[int] = PAPER_SWEEP,
    analysis: CircuitAnalysis | None = None,
) -> ValidationSeries:
    """Figure 5a: absolute error of marginal queries under fixed point.

    The whole sweep runs on one :class:`repro.engine.InferenceSession`:
    the circuit compiles to a tape once, the exact float64 references
    come from the batched tape executor, and every precision point runs
    the exact int64-vectorized fixed-point executor (bit-identical
    scalar big-int fallback for formats wider than 2·(I+F) ≤ 62).
    """
    if analysis is None:
        analysis = CircuitAnalysis.of(circuit)
    evidences = list(evidences)
    session = session_for(circuit)
    exact = session.evaluate_batch(evidences)
    points = []
    for bits in bits_sweep:
        integer_bits = required_integer_bits(analysis, bits)
        fmt = FixedPointFormat(integer_bits, bits)
        bound = propagate_fixed_bounds(
            circuit, bits, analysis.extremes
        ).root_bound
        quantized = session.evaluate_quantized_batch(fmt, evidences)
        errors = [abs(q - r) for q, r in zip(quantized, exact)]
        points.append(
            ValidationPoint(
                bits=bits,
                bound=bound,
                max_observed=max(errors),
                mean_observed=sum(errors) / len(errors),
            )
        )
    return ValidationSeries("fixed", "absolute", tuple(points))


def run_float_validation(
    circuit: ArithmeticCircuit,
    evidences: Sequence[Mapping[str, int]],
    bits_sweep: Sequence[int] = PAPER_SWEEP,
    analysis: CircuitAnalysis | None = None,
    exponent_bits: int | None = None,
) -> ValidationSeries:
    """Figure 5b: relative error of marginal queries under float.

    ``exponent_bits=None`` derives E per sweep point from min/max-value
    analysis (the paper fixes E=8 for Alarm; pass it explicitly to match).
    Runs on the session's vectorized float-emulation executor (new with
    the engine — the seed evaluated every instance through the scalar
    big-int backend), falling back to the bit-identical scalar path for
    formats wider than M ≤ 30 / E ≤ 32.
    """
    if analysis is None:
        analysis = CircuitAnalysis.of(circuit)
    evidences = list(evidences)
    session = session_for(circuit)
    exact = session.evaluate_batch(evidences)
    # Relative error is undefined on zero outputs; drop those rows
    # *before* quantized evaluation (a zero-probability evidence may
    # underflow a pinned-E float format the positive rows never stress).
    positive = [
        (evidence, reference)
        for evidence, reference in zip(evidences, exact)
        if reference > 0.0
    ]
    if not positive:
        raise ValueError("all test evidences had zero probability")
    positive_evidences = [evidence for evidence, _ in positive]
    references = [reference for _, reference in positive]
    points = []
    for bits in bits_sweep:
        e_bits = (
            exponent_bits
            if exponent_bits is not None
            else required_exponent_bits(analysis, bits)
        )
        fmt = FloatFormat(e_bits, bits)
        bound = analysis.float_counts.relative_bound(bits)
        quantized = session.evaluate_quantized_batch(fmt, positive_evidences)
        errors = [
            abs(q - reference) / reference
            for q, reference in zip(quantized, references)
        ]
        points.append(
            ValidationPoint(
                bits=bits,
                bound=bound,
                max_observed=max(errors),
                mean_observed=sum(errors) / len(errors),
            )
        )
    return ValidationSeries("float", "relative", tuple(points))


def run_posterior_validation(
    circuit: ArithmeticCircuit,
    evidences: Sequence[Mapping[str, int]],
    bits_sweep: Sequence[int] = PAPER_SWEEP,
    analysis: CircuitAnalysis | None = None,
    exponent_bits: int | None = None,
) -> ValidationSeries:
    """Posterior-marginal error of the quantized backward sweep.

    The paper's footnote-2 query style end to end: for every mantissa
    width, *all* posterior marginals of *all* instances come from one
    batched upward plus one batched downward pass in emulated float
    arithmetic (`InferenceSession.quantized_marginals_batch`), compared
    against the exact float64 backward sweep. The bound column is the
    rigorous ratio bound from the backward factor-count propagation (:func:`repro.core.bounds.propagate_adjoint_float_counts`)
    — every observed maximum must sit below it. Float is the natural
    representation here, matching the paper's §3.2.2 policy for
    division-normalized (conditional-style) queries: relative precision
    survives the division, where absolute fixed-point bounds do not.
    """
    from ..core.bounds import propagate_adjoint_float_counts

    if analysis is None:
        analysis = CircuitAnalysis.of(circuit)
    evidences = list(evidences)
    session = session_for(circuit)
    adjoint_counts = propagate_adjoint_float_counts(circuit)
    exact = session.marginals_batch(evidences)
    points = []
    for bits in bits_sweep:
        e_bits = (
            exponent_bits
            if exponent_bits is not None
            else required_exponent_bits(analysis, bits) + 1
        )  # +1: downward intermediates can undershoot the upward minimum
        fmt = FloatFormat(e_bits, bits)
        bound = adjoint_counts.posterior_bound(bits)
        quantized = session.quantized_marginals_batch(fmt, evidences)
        worst = 0.0
        total = 0.0
        count = 0
        for variable, reference in exact.items():
            errors = abs(quantized[variable] - reference)
            worst = max(worst, float(errors.max()))
            total += float(errors.sum())
            count += errors.size
        points.append(
            ValidationPoint(
                bits=bits,
                bound=bound,
                max_observed=worst,
                mean_observed=total / count,
            )
        )
    return ValidationSeries("float posterior", "absolute", tuple(points))


def render_series(series: ValidationSeries) -> str:
    """ASCII rendering of a Figure-5 curve (log10 values)."""
    import math

    title = (
        f"{series.representation} point, marginal query: "
        f"{series.error_kind} error vs bits"
    )
    lines = [title, "-" * len(title)]
    header = f"{'bits':>5} {'bound':>12} {'max obs.':>12} {'mean obs.':>12} {'ok':>3}"
    lines.append(header)
    for point in series.points:
        lines.append(
            f"{point.bits:>5} {point.bound:>12.3e} {point.max_observed:>12.3e} "
            f"{point.mean_observed:>12.3e} {'✓' if point.holds else '✗':>3}"
        )
    margins = [
        math.log10(point.bound / point.max_observed)
        for point in series.points
        if point.max_observed > 0
    ]
    if margins:
        lines.append(
            f"bound/max margin: {min(margins):.1f}..{max(margins):.1f} "
            f"orders of magnitude"
        )
    return "\n".join(lines)
