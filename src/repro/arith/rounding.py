"""Exact integer rounding primitives.

All quantized arithmetic in :mod:`repro.arith` reduces to one operation:
rounding an exact integer scaled by a power of two. Working on Python
integers keeps every simulated operator *bit-exact* — there is no hidden
IEEE-double rounding between the modeled roundings, so observed errors are
exactly those of the modeled hardware.
"""

from __future__ import annotations

import math
from enum import Enum


class RoundingMode(Enum):
    """Supported rounding modes for the simulated operators.

    The nearest modes satisfy the paper's error models
    (|rounding error| ≤ half a ULP, eq. 2/6); they differ only in
    tie-breaking. ``TRUNCATE`` drops the low bits — cheaper hardware with
    a doubled error constant (≤ one full ULP), which the error models in
    :mod:`repro.core.errormodels` account for.
    """

    NEAREST_EVEN = "nearest-even"
    NEAREST_UP = "nearest-up"
    TRUNCATE = "truncate"

    @property
    def is_nearest(self) -> bool:
        return self is not RoundingMode.TRUNCATE

    @property
    def ulp_error_fraction(self) -> float:
        """Worst-case rounding error in ULPs (½ for nearest, 1 for trunc)."""
        return 0.5 if self.is_nearest else 1.0


def round_shift(value: int, shift: int, mode: RoundingMode) -> int:
    """Round ``value / 2**shift`` to an integer in the given mode.

    ``shift <= 0`` is an exact left shift (no rounding). ``value`` must be
    non-negative — the library only ever manipulates probabilities.
    """
    if value < 0:
        raise ValueError("round_shift expects non-negative values")
    if shift <= 0:
        return value << (-shift)
    quotient, remainder = divmod(value, 1 << shift)
    if mode is RoundingMode.TRUNCATE:
        return quotient
    half = 1 << (shift - 1)
    if remainder > half:
        return quotient + 1
    if remainder == half:
        if mode is RoundingMode.NEAREST_UP or quotient & 1:
            return quotient + 1
    return quotient


def float_to_scaled_integer(x: float) -> tuple[int, int]:
    """Decompose a non-negative finite float as ``(mantissa, scale)``.

    The pair satisfies ``x == mantissa * 2**scale`` *exactly* (IEEE doubles
    are binary rationals). ``mantissa`` is 0 only for ``x == 0``.
    """
    if not math.isfinite(x) or x < 0.0:
        raise ValueError(f"expected a non-negative finite float, got {x!r}")
    if x == 0.0:
        return 0, 0
    fraction, exponent = math.frexp(x)  # x = fraction * 2**exponent
    mantissa = int(fraction * (1 << 53))  # exact: doubles have 53-bit mantissas
    scale = exponent - 53
    # Strip trailing zeros so callers see the canonical representation.
    while mantissa and not mantissa & 1:
        mantissa >>= 1
        scale += 1
    return mantissa, scale


def scaled_integer_to_float(mantissa: int, scale: int) -> float:
    """Convert ``mantissa * 2**scale`` to the nearest float64.

    Large mantissas (beyond 53 bits) lose precision here — this is a
    *reporting* conversion only; the simulators never feed the result back
    into quantized computation.
    """
    if mantissa == 0:
        return 0.0
    # math.ldexp saturates cleanly and handles subnormals; guard the
    # mantissa size so the int -> float conversion cannot raise.
    bits = mantissa.bit_length()
    if bits > 53:
        drop = bits - 53
        mantissa = round_shift(mantissa, drop, RoundingMode.NEAREST_EVEN)
        scale += drop
    return math.ldexp(mantissa, scale)
