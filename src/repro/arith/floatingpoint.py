"""Exact normalized floating-point arithmetic simulation.

A float format has ``E`` exponent bits and ``M`` mantissa (fraction) bits.
Values are sign-less (probabilities): ``value = m · 2^(e - M)`` with a
normalized integer mantissa ``2^M ≤ m < 2^(M+1)`` (hidden leading one) and
MSB exponent ``e``, or the exact zero. With bias ``2^(E-1) - 1`` and the
all-zero biased exponent reserved for the zero encoding, the usable
exponent range is

.. math:: e_{min} = 2 - 2^{E-1} \\quad\\text{and}\\quad e_{max} = 2^{E-1}.

(Custom inference hardware needs neither infinities nor NaNs, so the top
biased exponent is not reserved; for E=8 this gives the familiar minimum
normal 2^-126.)

Operator semantics follow §3.1.2 of the paper: every operator computes the
*exact* result on integer mantissas and performs exactly one
round-to-nearest back to M mantissa bits, so each operator satisfies
``f̃ = f(1 ± ε)`` with ``ε ≤ 2^-(M+1)`` (eqs. 6–12). A hardware FPU with
guard/round/sticky bits implements exactly this behaviour.

Out-of-range results raise :class:`FloatOverflowError` /
:class:`FloatUnderflowError`: ProbLP's max/min-value analysis chooses E so
these never fire, and the error models are invalid if they would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rounding import (
    RoundingMode,
    float_to_scaled_integer,
    round_shift,
    scaled_integer_to_float,
)


class FloatOverflowError(ArithmeticError):
    """A value exceeded the largest normal number of the format."""


class FloatUnderflowError(ArithmeticError):
    """A non-zero value fell below the smallest normal number."""


@dataclass(frozen=True)
class FloatFormat:
    """A normalized, sign-less floating-point representation ``(E, M)``."""

    exponent_bits: int
    mantissa_bits: int
    rounding: RoundingMode = field(default=RoundingMode.NEAREST_EVEN)

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError("need at least 2 exponent bits")
        if self.mantissa_bits < 1:
            raise ValueError("need at least 1 mantissa bit")

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_exponent(self) -> int:
        """Smallest usable MSB exponent (biased code 1)."""
        return 1 - self.bias

    @property
    def max_exponent(self) -> int:
        """Largest usable MSB exponent (top biased code, no inf/nan)."""
        return (1 << self.exponent_bits) - 1 - self.bias

    @property
    def min_normal(self) -> float:
        return 2.0 ** self.min_exponent

    @property
    def max_value(self) -> float:
        return (2.0 - 2.0 ** (-self.mantissa_bits)) * 2.0 ** self.max_exponent

    @property
    def fits_int64_products(self) -> bool:
        """True when mantissa products stay exact in int64 lanes.

        The contract of the vectorized tape executor
        (:class:`repro.engine.FloatBatchExecutor`): ``2·(M+1) ≤ 62`` and
        bounded exponents (``E ≤ 32``). Wider formats must use the scalar
        big-int backend.
        """
        return 2 * (self.mantissa_bits + 1) <= 62 and self.exponent_bits <= 32

    @property
    def unit_roundoff(self) -> float:
        """The per-operation relative error bound ε.

        2^-(M+1) for the nearest modes (eq. 6), 2^-M for truncation.
        """
        return self.rounding.ulp_error_fraction * 2.0 ** (-self.mantissa_bits)

    def describe(self) -> str:
        return f"float(E={self.exponent_bits}, M={self.mantissa_bits})"


@dataclass(frozen=True)
class FloatNumber:
    """An immutable normalized float value or exact zero.

    ``value = mantissa · 2^(exponent - M)``; ``mantissa`` has exactly
    ``M+1`` bits when non-zero (normalized, hidden bit explicit).
    """

    mantissa: int
    exponent: int
    fmt: FloatFormat

    def __post_init__(self) -> None:
        if self.mantissa == 0:
            return
        m_bits = self.fmt.mantissa_bits + 1
        if self.mantissa.bit_length() != m_bits:
            raise ValueError(
                f"mantissa {self.mantissa} is not normalized to {m_bits} bits"
            )
        if not self.fmt.min_exponent <= self.exponent <= self.fmt.max_exponent:
            raise ValueError(
                f"exponent {self.exponent} outside "
                f"[{self.fmt.min_exponent}, {self.fmt.max_exponent}]"
            )

    @property
    def is_zero(self) -> bool:
        return self.mantissa == 0

    def to_float(self) -> float:
        if self.is_zero:
            return 0.0
        return scaled_integer_to_float(
            self.mantissa, self.exponent - self.fmt.mantissa_bits
        )


class FloatBackend:
    """Quantized-evaluation backend for a floating-point format.

    Implements the :class:`repro.ac.evaluate.QuantizedBackend` protocol.
    """

    def __init__(self, fmt: FloatFormat) -> None:
        self.fmt = fmt

    # -- internal ---------------------------------------------------------
    def _normalize(self, mantissa: int, scale: int) -> FloatNumber:
        """Round ``mantissa · 2^scale`` to the format (one rounding)."""
        if mantissa == 0:
            return FloatNumber(0, 0, self.fmt)
        target_bits = self.fmt.mantissa_bits + 1
        excess = mantissa.bit_length() - target_bits
        rounded = round_shift(mantissa, excess, self.fmt.rounding)
        scale += excess
        if rounded.bit_length() > target_bits:
            # Rounding carried into a new MSB (e.g. 0b1111 -> 0b10000);
            # the result is a power of two, so this shift is exact.
            rounded >>= 1
            scale += 1
        exponent = scale + self.fmt.mantissa_bits
        if exponent > self.fmt.max_exponent:
            raise FloatOverflowError(
                f"overflow in {self.fmt.describe()}: exponent {exponent} > "
                f"{self.fmt.max_exponent}; increase exponent bits"
            )
        if exponent < self.fmt.min_exponent:
            raise FloatUnderflowError(
                f"underflow in {self.fmt.describe()}: exponent {exponent} < "
                f"{self.fmt.min_exponent}; min-value analysis should pick E "
                f"large enough"
            )
        return FloatNumber(rounded, exponent, self.fmt)

    # -- construction -----------------------------------------------------
    def from_real(self, x: float) -> FloatNumber:
        """Quantize a real value; relative error ≤ 2^-(M+1) (eq. 6)."""
        mantissa, scale = float_to_scaled_integer(x)
        return self._normalize(mantissa, scale)

    def zero(self) -> FloatNumber:
        return FloatNumber(0, 0, self.fmt)

    def one(self) -> FloatNumber:
        if self.fmt.max_exponent < 0 or self.fmt.min_exponent > 0:
            raise FloatOverflowError(
                f"{self.fmt.describe()} cannot represent 1.0"
            )
        return FloatNumber(1 << self.fmt.mantissa_bits, 0, self.fmt)

    # -- operators ----------------------------------------------------------
    def add(self, a: FloatNumber, b: FloatNumber) -> FloatNumber:
        """Exact alignment and sum, then one rounding (eq. 9)."""
        if a.is_zero:
            return b
        if b.is_zero:
            return a
        scale_a = a.exponent - self.fmt.mantissa_bits
        scale_b = b.exponent - self.fmt.mantissa_bits
        scale = min(scale_a, scale_b)
        total = (a.mantissa << (scale_a - scale)) + (
            b.mantissa << (scale_b - scale)
        )
        return self._normalize(total, scale)

    def multiply(self, a: FloatNumber, b: FloatNumber) -> FloatNumber:
        """Exact product of mantissas, then one rounding (eq. 11)."""
        if a.is_zero or b.is_zero:
            return self.zero()
        product = a.mantissa * b.mantissa
        scale = (
            a.exponent
            - self.fmt.mantissa_bits
            + b.exponent
            - self.fmt.mantissa_bits
        )
        return self._normalize(product, scale)

    def maximum(self, a: FloatNumber, b: FloatNumber) -> FloatNumber:
        """Exact comparison — no rounding."""
        if a.is_zero:
            return b
        if b.is_zero:
            return a
        if (a.exponent, a.mantissa) >= (b.exponent, b.mantissa):
            return a
        return b

    # -- conversion -----------------------------------------------------------
    def to_real(self, a: FloatNumber) -> float:
        return a.to_float()

    def __repr__(self) -> str:
        return f"FloatBackend({self.fmt.describe()})"
