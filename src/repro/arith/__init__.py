"""Exact simulation of low-precision arithmetic.

Fixed-point and normalized floating-point number systems with
round-to-nearest operators, implemented on Python integers so that the
simulated results are bit-exact replicas of what the generated hardware
computes. Both implement the :class:`repro.ac.evaluate.QuantizedBackend`
protocol and plug directly into quantized circuit evaluation.
"""

from .fixedpoint import (
    FixedPointBackend,
    FixedPointFormat,
    FixedPointNumber,
    FixedPointOverflowError,
)
from .floatingpoint import (
    FloatBackend,
    FloatFormat,
    FloatNumber,
    FloatOverflowError,
    FloatUnderflowError,
)
from .reference import ExactBackend, RealBackend
from .rounding import (
    RoundingMode,
    float_to_scaled_integer,
    round_shift,
    scaled_integer_to_float,
)

__all__ = [
    "ExactBackend",
    "FixedPointBackend",
    "FixedPointFormat",
    "FixedPointNumber",
    "FixedPointOverflowError",
    "FloatBackend",
    "FloatFormat",
    "FloatNumber",
    "FloatOverflowError",
    "FloatUnderflowError",
    "RealBackend",
    "RoundingMode",
    "float_to_scaled_integer",
    "round_shift",
    "scaled_integer_to_float",
]
