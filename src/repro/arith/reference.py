"""Reference arithmetic backends.

Two exact (or effectively exact) backends sharing the quantized-backend
protocol:

* :class:`RealBackend` — float64 arithmetic, the reference the paper's
  observed errors are measured against;
* :class:`ExactBackend` — arbitrary-precision rationals
  (:class:`fractions.Fraction`), used in tests to quantify how far the
  float64 reference itself is from the true value (it is ~2^-52-close,
  orders of magnitude below any bound studied here).
"""

from __future__ import annotations

from fractions import Fraction


class RealBackend:
    """Float64 evaluation via the backend protocol (for A/B testing)."""

    def from_real(self, x: float) -> float:
        return float(x)

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a + b

    def multiply(self, a: float, b: float) -> float:
        return a * b

    def maximum(self, a: float, b: float) -> float:
        return a if a >= b else b

    def to_real(self, a: float) -> float:
        return a

    def __repr__(self) -> str:
        return "RealBackend()"


class ExactBackend:
    """Exact rational evaluation (slow; tests and ground-truth audits)."""

    def from_real(self, x: float) -> Fraction:
        return Fraction(x)  # floats are binary rationals: exact

    def zero(self) -> Fraction:
        return Fraction(0)

    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b

    def multiply(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def maximum(self, a: Fraction, b: Fraction) -> Fraction:
        return a if a >= b else b

    def to_real(self, a: Fraction) -> float:
        return float(a)

    def __repr__(self) -> str:
        return "ExactBackend()"
