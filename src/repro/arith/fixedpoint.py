"""Exact unsigned fixed-point arithmetic simulation.

A fixed-point format has ``I`` integer bits and ``F`` fraction bits
(``N = I + F`` total; probabilities are non-negative so there is no sign
bit). A number is stored as an integer mantissa ``m`` with value
``m · 2⁻F``, ``0 ≤ m < 2^(I+F)``.

Operator semantics follow §3.1.1 of the paper:

* conversion of a real leaf value rounds to the nearest representable
  value — error ≤ 2^-(F+1) (eq. 2);
* the adder is exact (no rounding, eq. 3) — overflow cannot occur when
  the integer bits were chosen by max-value analysis;
* the multiplier computes the exact 2F-fraction-bit product and rounds
  the low bits away — one extra error ≤ 2^-(F+1) (eq. 4).

Overflow raises :class:`FixedPointOverflowError` instead of saturating or
wrapping: ProbLP guarantees by construction that the chosen format never
overflows, so an overflow here is a bug in the caller's range analysis
and must not be masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rounding import (
    RoundingMode,
    float_to_scaled_integer,
    round_shift,
    scaled_integer_to_float,
)


class FixedPointOverflowError(ArithmeticError):
    """A value exceeded the representable range ``[0, 2^I - 2^-F]``."""


@dataclass(frozen=True)
class FixedPointFormat:
    """An unsigned fixed-point representation ``(I, F)``."""

    integer_bits: int
    fraction_bits: int
    rounding: RoundingMode = field(default=RoundingMode.NEAREST_EVEN)

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ValueError("integer_bits must be non-negative")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        if self.integer_bits + self.fraction_bits == 0:
            raise ValueError("format needs at least one bit")

    @property
    def total_bits(self) -> int:
        """N = I + F, the paper's bit-count for fixed-point energy models."""
        return self.integer_bits + self.fraction_bits

    @property
    def max_mantissa(self) -> int:
        return (1 << self.total_bits) - 1

    @property
    def max_value(self) -> float:
        return self.max_mantissa * 2.0 ** (-self.fraction_bits)

    @property
    def resolution(self) -> float:
        """One unit in the last place, 2^-F."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def fits_int64_products(self) -> bool:
        """True when 2F-fraction products stay exact in int64 lanes.

        The contract of the vectorized tape executor
        (:class:`repro.engine.FixedPointBatchExecutor`): ``2·(I+F) ≤ 62``.
        Wider formats must use the scalar big-int backend.
        """
        return 2 * self.total_bits <= 62

    @property
    def conversion_error_bound(self) -> float:
        """Worst-case rounding error of a single conversion.

        2^-(F+1) for the nearest modes (eq. 2), 2^-F for truncation.
        """
        return self.rounding.ulp_error_fraction * 2.0 ** (-self.fraction_bits)

    def describe(self) -> str:
        return f"fixed(I={self.integer_bits}, F={self.fraction_bits})"


@dataclass(frozen=True)
class FixedPointNumber:
    """An immutable fixed-point value: ``mantissa · 2^-F``."""

    mantissa: int
    fmt: FixedPointFormat

    def __post_init__(self) -> None:
        if not 0 <= self.mantissa <= self.fmt.max_mantissa:
            raise FixedPointOverflowError(
                f"mantissa {self.mantissa} out of range for "
                f"{self.fmt.describe()}"
            )

    def to_float(self) -> float:
        return scaled_integer_to_float(self.mantissa, -self.fmt.fraction_bits)

    @property
    def is_zero(self) -> bool:
        return self.mantissa == 0


class FixedPointBackend:
    """Quantized-evaluation backend for a fixed-point format.

    Implements the :class:`repro.ac.evaluate.QuantizedBackend` protocol.
    """

    def __init__(self, fmt: FixedPointFormat) -> None:
        self.fmt = fmt

    # -- construction ---------------------------------------------------
    def from_real(self, x: float) -> FixedPointNumber:
        """Quantize a real value; error ≤ 2^-(F+1) (eq. 2 of the paper)."""
        mantissa, scale = float_to_scaled_integer(x)
        # Value = mantissa · 2^scale; target mantissa is value · 2^F,
        # i.e. shift by -(scale + F).
        shift = -(scale + self.fmt.fraction_bits)
        rounded = round_shift(mantissa, shift, self.fmt.rounding)
        if rounded > self.fmt.max_mantissa:
            raise FixedPointOverflowError(
                f"value {x!r} exceeds range of {self.fmt.describe()}; "
                f"increase integer bits"
            )
        return FixedPointNumber(rounded, self.fmt)

    def zero(self) -> FixedPointNumber:
        return FixedPointNumber(0, self.fmt)

    def one(self) -> FixedPointNumber:
        if self.fmt.integer_bits < 1:
            raise FixedPointOverflowError(
                f"{self.fmt.describe()} cannot represent 1.0; indicator "
                f"inputs need at least one integer bit"
            )
        return FixedPointNumber(1 << self.fmt.fraction_bits, self.fmt)

    # -- operators -------------------------------------------------------
    def add(self, a: FixedPointNumber, b: FixedPointNumber) -> FixedPointNumber:
        """Exact addition (eq. 3): fixed-point adders do not round."""
        total = a.mantissa + b.mantissa
        if total > self.fmt.max_mantissa:
            raise FixedPointOverflowError(
                f"adder overflow in {self.fmt.describe()}; max-value "
                f"analysis should have prevented this"
            )
        return FixedPointNumber(total, self.fmt)

    def multiply(
        self, a: FixedPointNumber, b: FixedPointNumber
    ) -> FixedPointNumber:
        """Multiply then round the low F bits away (eq. 4)."""
        product = a.mantissa * b.mantissa  # exact, value = p · 2^-2F
        rounded = round_shift(product, self.fmt.fraction_bits, self.fmt.rounding)
        if rounded > self.fmt.max_mantissa:
            raise FixedPointOverflowError(
                f"multiplier overflow in {self.fmt.describe()}"
            )
        return FixedPointNumber(rounded, self.fmt)

    def maximum(
        self, a: FixedPointNumber, b: FixedPointNumber
    ) -> FixedPointNumber:
        """Exact comparison — MPE max nodes introduce no rounding."""
        return a if a.mantissa >= b.mantissa else b

    # -- conversion -------------------------------------------------------
    def to_real(self, a: FixedPointNumber) -> float:
        return a.to_float()

    def __repr__(self) -> str:
        return f"FixedPointBackend({self.fmt.describe()})"
