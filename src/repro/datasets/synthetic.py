"""Synthetic class-conditional sensor data.

The paper evaluates on three embedded-sensing datasets (HAR, UniMiB SHAR,
UIWADS) that are not redistributable here. As documented in DESIGN.md §4,
we substitute Gaussian class-conditional feature generators with matched
problem shapes (classes × features × discretization bins): the ProbLP
experiments consume only the trained Naive Bayes parameters (which fix the
AC structure and value ranges) and a held-out test set, so matching the
shape reproduces the paper's AC sizes, energy ordering and bit-width
requirements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape and generation parameters of a synthetic sensor dataset."""

    name: str
    num_classes: int
    num_features: int
    num_states: int  # discretization bins per feature
    num_samples: int
    seed: int
    class_separation: float = 1.0
    feature_noise: float = 1.0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.num_features < 1:
            raise ValueError("need at least one feature")
        if self.num_states < 2:
            raise ValueError("need at least two states per feature")
        if self.num_samples < self.num_classes:
            raise ValueError("need at least one sample per class")


@dataclass(frozen=True)
class ContinuousDataset:
    """Raw continuous features plus integer labels."""

    spec: SyntheticSpec
    features: np.ndarray  # (n, num_features) float
    labels: np.ndarray  # (n,) int


def generate_continuous(spec: SyntheticSpec) -> ContinuousDataset:
    """Draw Gaussian class-conditional features.

    Class means are drawn once per (class, feature) with standard
    deviation ``class_separation``; samples add unit-variance noise scaled
    by ``feature_noise``. Labels are balanced.
    """
    rng = np.random.default_rng(spec.seed)
    means = rng.normal(
        0.0, spec.class_separation, size=(spec.num_classes, spec.num_features)
    )
    labels = rng.integers(0, spec.num_classes, size=spec.num_samples)
    noise = rng.normal(
        0.0, spec.feature_noise, size=(spec.num_samples, spec.num_features)
    )
    features = means[labels] + noise
    return ContinuousDataset(spec=spec, features=features, labels=labels)
