"""HAR stand-in: smartphone human-activity recognition (Anguita et al.).

The original dataset distinguishes 6 activities (walking, walking
upstairs, walking downstairs, sitting, standing, laying) from
accelerometer/gyroscope features. The paper's pipeline (following its
refs [9, 19]) trains a Naive Bayes classifier over a feature-selected,
discretized frontend; the resulting AC is the largest of the benchmark
suite (Table 2 reports 4.3 nJ/eval at fixed I=1, F=15).

Our synthetic stand-in uses 6 classes × 60 features × 5 bins, which
reproduces that AC size and energy scale (see DESIGN.md §4).
"""

from __future__ import annotations

from .benchmark import SensorBenchmark, build_benchmark
from .synthetic import SyntheticSpec

HAR_SPEC = SyntheticSpec(
    name="HAR",
    num_classes=6,
    num_features=60,
    num_states=5,
    num_samples=3000,
    seed=20190601,
    class_separation=1.0,
    feature_noise=1.0,
)


def har_benchmark() -> SensorBenchmark:
    """Build the HAR stand-in benchmark (deterministic)."""
    return build_benchmark(HAR_SPEC)
