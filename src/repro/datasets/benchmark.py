"""Assembled sensor benchmarks: data → discretization → Naive Bayes.

A :class:`SensorBenchmark` is everything one Table 2 row needs: the
trained classifier (whose network compiles to the AC under analysis) and
the discretized test set on which observed errors are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bn.naive_bayes import NaiveBayesClassifier
from ..bn.variable import Variable
from .discretize import Discretizer, fit_discretizer
from .splits import Split, train_test_split
from .synthetic import SyntheticSpec, generate_continuous


@dataclass(frozen=True)
class SensorBenchmark:
    """A trained embedded-sensing classification benchmark."""

    name: str
    spec: SyntheticSpec
    classifier: NaiveBayesClassifier
    discretizer: Discretizer
    split: Split

    @property
    def class_name(self) -> str:
        return self.classifier.class_name

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self.classifier.feature_names

    @property
    def num_classes(self) -> int:
        return self.classifier.num_classes

    def evidence_for_row(self, row: np.ndarray) -> dict[str, int]:
        """λ evidence dict for one discretized test row (features only)."""
        return {
            name: int(state) for name, state in zip(self.feature_names, row)
        }

    def test_evidences(self, limit: int | None = None) -> list[dict[str, int]]:
        """Evidence dicts for the (optionally truncated) test set."""
        rows = self.split.test_features
        if limit is not None:
            rows = rows[:limit]
        return [self.evidence_for_row(row) for row in rows]

    def test_accuracy(self) -> float:
        return self.classifier.accuracy(
            self.split.test_features, self.split.test_labels
        )


def build_benchmark(
    spec: SyntheticSpec,
    train_fraction: float = 0.6,
    alpha: float = 1.0,
) -> SensorBenchmark:
    """Generate, discretize, split and train a benchmark end to end.

    The discretizer is fitted on the training portion only, matching
    standard practice (and avoiding test-set leakage).
    """
    continuous = generate_continuous(spec)
    raw_split = train_test_split(
        continuous.features, continuous.labels, train_fraction, seed=spec.seed
    )
    discretizer = fit_discretizer(raw_split.train_features, spec.num_states)
    split = Split(
        train_features=discretizer.transform(raw_split.train_features),
        train_labels=raw_split.train_labels,
        test_features=discretizer.transform(raw_split.test_features),
        test_labels=raw_split.test_labels,
    )
    class_variable = Variable(
        "Class", tuple(f"c{i}" for i in range(spec.num_classes))
    )
    feature_variables = [
        Variable(f"F{j}", tuple(f"s{i}" for i in range(spec.num_states)))
        for j in range(spec.num_features)
    ]
    classifier = NaiveBayesClassifier.train(
        class_variable,
        feature_variables,
        split.train_labels,
        split.train_features,
        alpha=alpha,
        name=spec.name,
    )
    return SensorBenchmark(
        name=spec.name,
        spec=spec,
        classifier=classifier,
        discretizer=discretizer,
        split=split,
    )
