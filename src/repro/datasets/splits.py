"""Train/test splitting utilities (paper: 60 % train, 40 % test)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Split:
    """Integer-state train/test matrices plus labels."""

    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray

    @property
    def num_train(self) -> int:
        return self.train_features.shape[0]

    @property
    def num_test(self) -> int:
        return self.test_features.shape[0]


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    train_fraction: float = 0.6,
    seed: int = 0,
) -> Split:
    """Shuffle and split; the paper trains on 60 % of each dataset."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels disagree on sample count")
    rng = np.random.default_rng(seed)
    order = rng.permutation(features.shape[0])
    cut = int(round(train_fraction * features.shape[0]))
    if cut == 0 or cut == features.shape[0]:
        raise ValueError("split leaves an empty train or test set")
    train_idx, test_idx = order[:cut], order[cut:]
    return Split(
        train_features=features[train_idx],
        train_labels=labels[train_idx],
        test_features=features[test_idx],
        test_labels=labels[test_idx],
    )
