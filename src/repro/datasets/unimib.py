"""UniMiB SHAR stand-in: smartphone activity recognition (Micucci et al.).

The original dataset contains acceleration recordings for activities of
daily living. The paper's classifier operates on a heavily
feature-selected frontend (its AC costs only 0.4 nJ/eval at fixed I=1,
F=13 — roughly a tenth of HAR's), so our stand-in uses 9 activity
classes × 6 features × 4 bins, matching that circuit scale
(see DESIGN.md §4).
"""

from __future__ import annotations

from .benchmark import SensorBenchmark, build_benchmark
from .synthetic import SyntheticSpec

UNIMIB_SPEC = SyntheticSpec(
    name="UNIMIB",
    num_classes=9,
    num_features=6,
    num_states=4,
    num_samples=2400,
    seed=20190602,
    class_separation=1.2,
    feature_noise=1.0,
)


def unimib_benchmark() -> SensorBenchmark:
    """Build the UniMiB SHAR stand-in benchmark (deterministic)."""
    return build_benchmark(UNIMIB_SPEC)
