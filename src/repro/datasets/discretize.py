"""Feature discretization.

Naive Bayes over categorical CPTs needs discrete features; following
common practice for the paper's sensor benchmarks, continuous features
are quantile-binned: bin edges are the training-set quantiles, so bins
are (approximately) equally populated and no class-conditional bin
starves — which keeps the smoothed CPT entries, and therefore the AC's
minimum values, well away from zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Discretizer:
    """Per-feature quantile bin edges fitted on training data."""

    edges: np.ndarray  # (num_features, num_states - 1)

    @property
    def num_features(self) -> int:
        return self.edges.shape[0]

    @property
    def num_states(self) -> int:
        return self.edges.shape[1] + 1

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map continuous features to integer states."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ValueError(
                f"expected (n, {self.num_features}) features, got "
                f"{features.shape}"
            )
        states = np.empty(features.shape, dtype=np.int64)
        for j in range(self.num_features):
            states[:, j] = np.searchsorted(
                self.edges[j], features[:, j], side="right"
            )
        return states


def fit_discretizer(features: np.ndarray, num_states: int) -> Discretizer:
    """Fit per-feature quantile bin edges."""
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array")
    if num_states < 2:
        raise ValueError("need at least two states")
    quantiles = np.linspace(0.0, 1.0, num_states + 1)[1:-1]
    edges = np.quantile(features, quantiles, axis=0).T  # (features, states-1)
    return Discretizer(edges=np.ascontiguousarray(edges))
