"""Embedded-sensing dataset substrates (synthetic stand-ins; DESIGN.md §4)."""

from .benchmark import SensorBenchmark, build_benchmark
from .discretize import Discretizer, fit_discretizer
from .har import HAR_SPEC, har_benchmark
from .splits import Split, train_test_split
from .synthetic import ContinuousDataset, SyntheticSpec, generate_continuous
from .uiwads import UIWADS_SPEC, uiwads_benchmark
from .unimib import UNIMIB_SPEC, unimib_benchmark

__all__ = [
    "ContinuousDataset",
    "Discretizer",
    "HAR_SPEC",
    "SensorBenchmark",
    "Split",
    "SyntheticSpec",
    "UIWADS_SPEC",
    "UNIMIB_SPEC",
    "build_benchmark",
    "fit_discretizer",
    "generate_continuous",
    "har_benchmark",
    "train_test_split",
    "uiwads_benchmark",
    "unimib_benchmark",
]
