"""UIWADS stand-in: user identification from walking patterns (Casale et al.).

The original task verifies a user against impostors from chest-mounted
accelerometer gait features — a small binary model (the paper's smallest
AC: 0.06 nJ/eval at fixed I=1, F=11). Our stand-in uses 2 classes × 7
features × 3 bins, matching that circuit scale (see DESIGN.md §4).
"""

from __future__ import annotations

from .benchmark import SensorBenchmark, build_benchmark
from .synthetic import SyntheticSpec

UIWADS_SPEC = SyntheticSpec(
    name="UIWADS",
    num_classes=2,
    num_features=7,
    num_states=3,
    num_samples=1500,
    seed=20190603,
    class_separation=1.0,
    feature_noise=1.0,
)


def uiwads_benchmark() -> SensorBenchmark:
    """Build the UIWADS stand-in benchmark (deterministic)."""
    return build_benchmark(UIWADS_SPEC)
