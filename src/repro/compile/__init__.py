"""BN → AC compilation (replaces the paper's ACE tool).

Symbolic variable elimination records the arithmetic of inference as an
arithmetic circuit. ``compile_network`` produces network-polynomial
circuits for marginal/conditional queries; ``compile_mpe`` produces
max-product circuits.
"""

from .elimination import (
    CompiledCircuit,
    compile_network,
    cpt_symbolic_factor,
    network_polynomial_brute_force,
)
from .factor import (
    SymbolicFactor,
    eliminate_variable,
    factors_mentioning,
    multiply_factors,
    scalar_factor,
)
from .mpe import compile_mpe, mpe_brute_force
from .ordering import (
    induced_width,
    min_degree_order,
    min_fill_order,
    moral_graph,
    validate_order,
)

__all__ = [
    "CompiledCircuit",
    "SymbolicFactor",
    "compile_mpe",
    "compile_network",
    "cpt_symbolic_factor",
    "eliminate_variable",
    "factors_mentioning",
    "induced_width",
    "min_degree_order",
    "min_fill_order",
    "moral_graph",
    "mpe_brute_force",
    "multiply_factors",
    "network_polynomial_brute_force",
    "scalar_factor",
    "validate_order",
]
