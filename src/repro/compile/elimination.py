"""BN → AC compilation by symbolic variable elimination.

This replaces the closed-source ACE tool the paper uses. The compiled
circuit computes the *network polynomial*

.. math:: f(\\lambda) = \\sum_{\\mathbf{x}} \\prod_i
          \\theta_{x_i|\\mathbf{u}_i} \\lambda_{x_i},

so evaluating it with indicators set from evidence ``e`` yields ``Pr(e)``
(an upward pass, exactly as in §2 of the paper). Compiling with
``mode="max"`` yields a max-product circuit whose evaluation is the MPE
value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..ac.circuit import ArithmeticCircuit
from ..bn.network import BayesianNetwork
from .factor import (
    SymbolicFactor,
    eliminate_variable,
    factors_mentioning,
    multiply_factors,
)
from .ordering import min_fill_order, validate_order

import numpy as np


@dataclass(frozen=True)
class CompiledCircuit:
    """A compiled AC plus its provenance."""

    circuit: ArithmeticCircuit
    network_name: str
    elimination_order: tuple[str, ...]
    mode: str

    def evaluate(self, evidence: Mapping[str, int] | None = None) -> float:
        """Exact float64 evaluation; ``Pr(e)`` (or MPE value for max mode)."""
        return self.circuit.evaluate(evidence)


def cpt_symbolic_factor(
    circuit: ArithmeticCircuit, cpt, with_indicators: bool = True
) -> SymbolicFactor:
    """Encode one CPT as a symbolic factor.

    Each entry is ``θ(child=x | parents=u) · λ(child=x)`` — multiplying the
    child's evidence indicator into its CPT is the standard encoding of the
    network polynomial.
    """
    names = tuple(v.name for v in cpt.scope)
    order = tuple(int(i) for i in np.argsort(names))
    scope = tuple(names[i] for i in order)
    cards = tuple(cpt.scope[i].cardinality for i in order)
    table = np.transpose(cpt.table, order)
    child_axis = order.index(len(names) - 1)

    entries = np.empty(cards, dtype=object)
    iterator = np.ndindex(*cards) if cards else iter([()])
    for config in iterator:
        child_state = config[child_axis] if cards else 0
        parent_desc = ",".join(
            f"{scope[i]}={config[i]}"
            for i in range(len(scope))
            if i != child_axis
        )
        label = (
            f"θ({cpt.child.name}={child_state}|{parent_desc})"
            if parent_desc
            else f"θ({cpt.child.name}={child_state})"
        )
        theta = circuit.add_parameter(float(table[config]), label)
        if with_indicators:
            lam = circuit.add_indicator(cpt.child.name, int(child_state))
            entries[config] = circuit.add_product([theta, lam])
        else:
            entries[config] = theta
    return SymbolicFactor(scope, cards, entries)


def compile_network(
    network: BayesianNetwork,
    order: Iterable[str] | None = None,
    mode: str = "sum",
    name: str | None = None,
) -> CompiledCircuit:
    """Compile a Bayesian network into an arithmetic circuit.

    Parameters
    ----------
    order:
        Elimination order; defaults to greedy min-fill.
    mode:
        ``"sum"`` for the network polynomial (marginal/conditional
        queries) or ``"max"`` for a max-product MPE circuit.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"mode must be 'sum' or 'max', got {mode!r}")
    order = tuple(order) if order is not None else min_fill_order(network)
    validate_order(network, order)

    circuit = ArithmeticCircuit(
        name=name or f"{network.name}_{mode}_ac", dedup=True
    )
    pool: list[SymbolicFactor] = [
        cpt_symbolic_factor(circuit, cpt) for cpt in network.cpts()
    ]
    for variable in order:
        involved, pool = factors_mentioning(pool, variable)
        if not involved:
            continue
        product = multiply_factors(circuit, involved)
        pool.append(eliminate_variable(circuit, product, variable, mode))

    # All remaining factors are scalars; combine them into the root.
    scalars = [factor.scalar_entry() for factor in pool]
    if not scalars:
        raise RuntimeError("elimination produced no result factor")
    root = circuit.add_product(scalars) if len(scalars) > 1 else scalars[0]
    circuit.set_root(root)
    return CompiledCircuit(
        circuit=circuit,
        network_name=network.name,
        elimination_order=order,
        mode=mode,
    )


def network_polynomial_brute_force(
    network: BayesianNetwork, evidence: Mapping[str, int]
) -> float:
    """Reference ``Pr(e)`` by explicit enumeration (tests only; exponential)."""
    from itertools import product as iter_product

    names = network.variable_names
    cards = [network.variable(n).cardinality for n in names]
    total = 0.0
    for assignment in iter_product(*(range(c) for c in cards)):
        full = dict(zip(names, assignment))
        if any(full[v] != s for v, s in evidence.items()):
            continue
        total += network.joint(full)
    return total
