"""Most-probable-explanation (MPE) circuits.

An MPE circuit is compiled exactly like the network polynomial, but
variables are maxed out instead of summed out, yielding a max-product
circuit. Evaluating it with indicators set from evidence ``e`` returns
``max_x Pr(x, e)`` — the probability of the most probable explanation.
The paper treats MPE like marginal queries for error analysis (one AC
evaluation, §3.2.1); max operators are comparison-only so they introduce
no rounding of their own.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..bn.network import BayesianNetwork
from .elimination import CompiledCircuit, compile_network


def compile_mpe(
    network: BayesianNetwork,
    order: Iterable[str] | None = None,
    name: str | None = None,
) -> CompiledCircuit:
    """Compile a max-product (MPE) circuit for the network."""
    return compile_network(network, order=order, mode="max", name=name)


def mpe_brute_force(
    network: BayesianNetwork, evidence: Mapping[str, int]
) -> float:
    """Reference MPE value by explicit enumeration (tests only)."""
    from itertools import product as iter_product

    names = network.variable_names
    cards = [network.variable(n).cardinality for n in names]
    best = 0.0
    for assignment in iter_product(*(range(c) for c in cards)):
        full = dict(zip(names, assignment))
        if any(full[v] != s for v, s in evidence.items()):
            continue
        best = max(best, network.joint(full))
    return best
