"""Variable elimination orderings.

Good orderings keep the intermediate factors — and therefore the compiled
circuit — small. Min-fill is the default; min-degree is provided as a
cheaper alternative and for ablations.
"""

from __future__ import annotations

import networkx as nx

from ..bn.network import BayesianNetwork


def moral_graph(network: BayesianNetwork) -> nx.Graph:
    """The moralized, undirected interaction graph of the network."""
    graph = nx.Graph()
    graph.add_nodes_from(network.variable_names)
    for cpt in network.cpts():
        scope = [v.name for v in cpt.scope]
        for i, a in enumerate(scope):
            for b in scope[i + 1 :]:
                graph.add_edge(a, b)
    return graph


def _fill_in_count(graph: nx.Graph, node: str) -> int:
    """Number of edges elimination of ``node`` would add."""
    neighbors = list(graph.neighbors(node))
    missing = 0
    for i, a in enumerate(neighbors):
        for b in neighbors[i + 1 :]:
            if not graph.has_edge(a, b):
                missing += 1
    return missing


def _eliminate_node(graph: nx.Graph, node: str) -> None:
    neighbors = list(graph.neighbors(node))
    for i, a in enumerate(neighbors):
        for b in neighbors[i + 1 :]:
            graph.add_edge(a, b)
    graph.remove_node(node)


def _scope_counts(network: BayesianNetwork) -> dict[str, int]:
    """How many CPT scopes mention each variable.

    Used as a min-fill tie-break: a variable in few scopes involves few
    factors when eliminated, producing fewer product nodes in the
    compiled circuit (e.g. Naive Bayes features before the class).
    """
    counts = {name: 0 for name in network.variable_names}
    for cpt in network.cpts():
        for variable in cpt.scope:
            counts[variable.name] += 1
    return counts


def min_fill_order(network: BayesianNetwork) -> tuple[str, ...]:
    """Greedy min-fill elimination order.

    Ties break by scope count (see :func:`_scope_counts`), then by name
    for determinism.
    """
    graph = moral_graph(network)
    scopes = _scope_counts(network)
    order = []
    while graph.number_of_nodes():
        best = min(
            graph.nodes,
            key=lambda n: (_fill_in_count(graph, n), scopes[n], n),
        )
        order.append(best)
        _eliminate_node(graph, best)
    return tuple(order)


def min_degree_order(network: BayesianNetwork) -> tuple[str, ...]:
    """Greedy min-degree elimination order (ties broken by name)."""
    graph = moral_graph(network)
    order = []
    while graph.number_of_nodes():
        best = min(graph.nodes, key=lambda n: (graph.degree(n), n))
        order.append(best)
        _eliminate_node(graph, best)
    return tuple(order)


def induced_width(network: BayesianNetwork, order: tuple[str, ...]) -> int:
    """Induced width (treewidth upper bound) of an elimination order."""
    graph = moral_graph(network)
    width = 0
    for node in order:
        width = max(width, graph.degree(node))
        _eliminate_node(graph, node)
    return width


def validate_order(network: BayesianNetwork, order: tuple[str, ...]) -> None:
    """Check that ``order`` is a permutation of the network's variables."""
    if sorted(order) != sorted(network.variable_names):
        raise ValueError(
            "elimination order must mention every network variable exactly "
            "once"
        )
