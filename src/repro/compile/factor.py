"""Symbolic factors: factors whose entries are AC node indices.

Variable elimination over symbolic factors *records* the arithmetic it
would perform instead of executing it, which is exactly how a Bayesian
network is compiled into an arithmetic circuit (Darwiche's construction).
Multiplying factors emits PRODUCT nodes; summing a variable out emits SUM
nodes (or MAX nodes for MPE compilation).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterable, Sequence

import numpy as np

from ..ac.circuit import ArithmeticCircuit


@dataclass(frozen=True)
class SymbolicFactor:
    """A table of AC node indices over a sorted scope of variables."""

    scope: tuple[str, ...]
    cards: tuple[int, ...]
    entries: np.ndarray  # dtype=object, shape == cards

    def __post_init__(self) -> None:
        if tuple(sorted(self.scope)) != tuple(self.scope):
            raise ValueError(f"symbolic factor scope must be sorted: {self.scope}")
        if len(self.scope) != len(self.cards):
            raise ValueError("scope and cards length mismatch")
        if self.entries.shape != tuple(self.cards):
            raise ValueError(
                f"entries shape {self.entries.shape} != cards {self.cards}"
            )

    def entry(self, config: tuple[int, ...]) -> int:
        return int(self.entries[config])

    def card_of(self, name: str) -> int:
        return self.cards[self.scope.index(name)]

    @property
    def is_scalar(self) -> bool:
        return not self.scope

    def scalar_entry(self) -> int:
        if not self.is_scalar:
            raise ValueError(f"factor still has scope {self.scope}")
        return int(self.entries[()])


def scalar_factor(node: int) -> SymbolicFactor:
    """Wrap a single AC node as a scope-less factor."""
    entries = np.empty((), dtype=object)
    entries[()] = node
    return SymbolicFactor((), (), entries)


def multiply_factors(
    circuit: ArithmeticCircuit, factors: Sequence[SymbolicFactor]
) -> SymbolicFactor:
    """Pointwise product of symbolic factors, emitting PRODUCT nodes.

    For every configuration of the union scope, gathers the matching entry
    of each input factor and emits one (n-ary) product node; later
    binarization decomposes these into 2-input multipliers.
    """
    if not factors:
        raise ValueError("need at least one factor to multiply")
    if len(factors) == 1:
        return factors[0]
    union: dict[str, int] = {}
    for factor in factors:
        for name, card in zip(factor.scope, factor.cards):
            if name in union and union[name] != card:
                raise ValueError(f"inconsistent cardinality for {name!r}")
            union[name] = card
    scope = tuple(sorted(union))
    cards = tuple(union[name] for name in scope)
    positions = [
        tuple(scope.index(name) for name in factor.scope) for factor in factors
    ]
    entries = np.empty(cards, dtype=object)
    for config in iter_product(*(range(c) for c in cards)):
        children = [
            factor.entry(tuple(config[p] for p in pos))
            for factor, pos in zip(factors, positions)
        ]
        entries[config] = circuit.add_product(children)
    return SymbolicFactor(scope, cards, entries)


def eliminate_variable(
    circuit: ArithmeticCircuit,
    factor: SymbolicFactor,
    name: str,
    mode: str = "sum",
) -> SymbolicFactor:
    """Sum (or max) a variable out of a symbolic factor.

    Emits one SUM/MAX node per configuration of the remaining scope, with
    one child per state of the eliminated variable.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"mode must be 'sum' or 'max', got {mode!r}")
    if name not in factor.scope:
        raise ValueError(f"{name!r} not in factor scope {factor.scope}")
    axis = factor.scope.index(name)
    card = factor.cards[axis]
    scope = tuple(v for v in factor.scope if v != name)
    cards = tuple(c for i, c in enumerate(factor.cards) if i != axis)
    combine = circuit.add_sum if mode == "sum" else circuit.add_max
    entries = np.empty(cards, dtype=object)
    for config in iter_product(*(range(c) for c in cards)):
        full = list(config)
        children = []
        for state in range(card):
            full_config = tuple(full[:axis]) + (state,) + tuple(full[axis:])
            children.append(factor.entry(full_config))
        entries[config] = combine(children)
    return SymbolicFactor(scope, cards, entries)


def factors_mentioning(
    factors: Iterable[SymbolicFactor], name: str
) -> tuple[list[SymbolicFactor], list[SymbolicFactor]]:
    """Split factors into (mentioning ``name``, not mentioning it)."""
    involved, rest = [], []
    for factor in factors:
        (involved if name in factor.scope else rest).append(factor)
    return involved, rest
