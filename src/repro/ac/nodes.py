"""Node definitions for arithmetic circuits.

An arithmetic circuit (AC) is a rooted DAG whose internal nodes are
additions and multiplications (plus maximizations for MPE circuits) and
whose leaves are network parameters ``θ`` and evidence indicators ``λ``
(Figure 1b of the paper). Nodes are stored in an arena inside
:class:`~repro.ac.circuit.ArithmeticCircuit`; the classes here are the
immutable node records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class OpType(Enum):
    """The kinds of AC nodes."""

    SUM = "sum"
    PRODUCT = "product"
    MAX = "max"
    PARAMETER = "parameter"
    INDICATOR = "indicator"

    @property
    def is_leaf(self) -> bool:
        return self in (OpType.PARAMETER, OpType.INDICATOR)

    @property
    def is_operator(self) -> bool:
        return not self.is_leaf


#: Operator types that the hardware generator can emit.
HARDWARE_OPS = (OpType.SUM, OpType.PRODUCT, OpType.MAX)


@dataclass(frozen=True)
class Node:
    """A single AC node.

    Exactly one of the payload groups is populated, depending on ``op``:

    * operators (``SUM`` / ``PRODUCT`` / ``MAX``): ``children`` holds arena
      indices, all strictly smaller than this node's own index (the arena
      is topologically ordered by construction);
    * ``PARAMETER``: ``value`` holds the real number, ``label`` an optional
      human-readable name such as ``"θ(B=b1|A=a0)"``;
    * ``INDICATOR``: ``variable`` and ``state`` identify the λ variable.
    """

    op: OpType
    children: tuple[int, ...] = ()
    value: float | None = None
    variable: str | None = None
    state: int | None = None
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op.is_operator:
            if len(self.children) < 1:
                raise ValueError(f"{self.op.value} node needs children")
            if self.value is not None or self.variable is not None:
                raise ValueError(f"{self.op.value} node cannot carry a payload")
        elif self.op is OpType.PARAMETER:
            if self.children:
                raise ValueError("parameter node cannot have children")
            if self.value is None:
                raise ValueError("parameter node needs a value")
            if not (self.value >= 0.0):
                raise ValueError(
                    f"AC parameters must be non-negative finite numbers, "
                    f"got {self.value!r}"
                )
        elif self.op is OpType.INDICATOR:
            if self.children:
                raise ValueError("indicator node cannot have children")
            if self.variable is None or self.state is None:
                raise ValueError("indicator node needs a variable and state")
            if self.state < 0:
                raise ValueError("indicator state must be non-negative")

    @property
    def is_leaf(self) -> bool:
        return self.op.is_leaf

    def describe(self) -> str:
        """Short human-readable rendering used in dumps and error messages."""
        if self.op is OpType.PARAMETER:
            return self.label or f"θ={self.value:g}"
        if self.op is OpType.INDICATOR:
            return f"λ({self.variable}={self.state})"
        symbol = {"sum": "+", "product": "*", "max": "max"}[self.op.value]
        return f"{symbol}{list(self.children)}"
