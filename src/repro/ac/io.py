"""JSON serialization of arithmetic circuits.

Circuits round-trip losslessly through a compact JSON document so they can
be compiled once and analyzed or turned into hardware later, including
from the ``problp`` command line.
"""

from __future__ import annotations

import json
from pathlib import Path

from .circuit import ArithmeticCircuit
from .nodes import OpType

_FORMAT_VERSION = 1


def circuit_to_dict(circuit: ArithmeticCircuit) -> dict:
    """Serialize a circuit to a JSON-compatible dictionary."""
    nodes = []
    for node in circuit.nodes:
        if node.op is OpType.PARAMETER:
            entry: dict = {"op": "parameter", "value": node.value}
            if node.label:
                entry["label"] = node.label
        elif node.op is OpType.INDICATOR:
            entry = {
                "op": "indicator",
                "variable": node.variable,
                "state": node.state,
            }
        else:
            entry = {"op": node.op.value, "children": list(node.children)}
        nodes.append(entry)
    return {
        "format": "problp-ac",
        "version": _FORMAT_VERSION,
        "name": circuit.name,
        "root": circuit.root,
        "nodes": nodes,
    }


def circuit_from_dict(payload: dict) -> ArithmeticCircuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output.

    Deserialization goes through the regular builder, so deduplication and
    unary-collapse apply; node indices are preserved via an explicit map so
    the root is always translated correctly.
    """
    if payload.get("format") != "problp-ac":
        raise ValueError("not a problp-ac document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported problp-ac version {payload.get('version')!r}"
        )
    circuit = ArithmeticCircuit(name=payload.get("name", "ac"))
    index_map: dict[int, int] = {}
    for index, entry in enumerate(payload["nodes"]):
        op = entry["op"]
        if op == "parameter":
            index_map[index] = circuit.add_parameter(
                entry["value"], entry.get("label")
            )
        elif op == "indicator":
            index_map[index] = circuit.add_indicator(
                entry["variable"], entry["state"]
            )
        else:
            children = [index_map[c] for c in entry["children"]]
            if op == "sum":
                index_map[index] = circuit.add_sum(children)
            elif op == "product":
                index_map[index] = circuit.add_product(children)
            elif op == "max":
                index_map[index] = circuit.add_max(children)
            else:
                raise ValueError(f"unknown node op {op!r}")
    circuit.set_root(index_map[payload["root"]])
    return circuit


def save_circuit(circuit: ArithmeticCircuit, path: str | Path) -> None:
    """Write a circuit to ``path`` as JSON."""
    Path(path).write_text(json.dumps(circuit_to_dict(circuit)))


def load_circuit(path: str | Path) -> ArithmeticCircuit:
    """Read a circuit previously written by :func:`save_circuit`."""
    return circuit_from_dict(json.loads(Path(path).read_text()))
