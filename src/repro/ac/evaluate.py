"""Evaluation passes over arithmetic circuits.

Three evaluators are provided:

* :func:`evaluate_real` / :func:`evaluate_values` — exact float64 forward
  pass, the reference the paper measures errors against;
* :func:`evaluate_batch` — numpy-vectorized float64 evaluation over a
  whole test set at once;
* :func:`evaluate_quantized` — forward pass in an arbitrary quantized
  number system (fixed- or floating-point simulators from
  :mod:`repro.arith`), which must implement :class:`QuantizedBackend`.

Quantized evaluation requires a **binary** circuit: every rounding the
hardware performs corresponds to exactly one two-input operator, so
evaluating an n-ary node would silently disagree with the error analysis
and with the generated hardware. Use :func:`repro.ac.transform.binarize`
first.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from .circuit import ArithmeticCircuit
from .nodes import OpType


class QuantizedBackend(Protocol):
    """Number-system interface for quantized evaluation.

    Implementations live in :mod:`repro.arith`. Values are opaque to the
    evaluator; only the backend creates and combines them.
    """

    def from_real(self, x: float) -> Any:
        """Quantize a real number (rounding to nearest)."""

    def zero(self) -> Any:
        """The exact number 0."""

    def one(self) -> Any:
        """The exact number 1."""

    def add(self, a: Any, b: Any) -> Any:
        """Quantized addition."""

    def multiply(self, a: Any, b: Any) -> Any:
        """Quantized multiplication."""

    def maximum(self, a: Any, b: Any) -> Any:
        """Exact maximum (comparison only, no rounding)."""

    def to_real(self, a: Any) -> float:
        """Convert back to a float64 real number."""


def evaluate_values(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> list[float]:
    """Float64 value of every node under the given evidence."""
    lambda_values = circuit.indicator_assignment(evidence)
    values: list[float] = [0.0] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_values[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = sum(values[c] for c in node.children)
        elif node.op is OpType.PRODUCT:
            result = 1.0
            for child in node.children:
                result *= values[child]
            values[index] = result
        else:  # MAX
            values[index] = max(values[c] for c in node.children)
    return values


def evaluate_real(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Float64 value of the root under the given evidence."""
    return evaluate_values(circuit, evidence)[circuit.root]


def evaluate_batch(
    circuit: ArithmeticCircuit,
    evidence_batch: Sequence[Mapping[str, int]],
) -> np.ndarray:
    """Float64 root values for a batch of evidence assignments.

    Vectorizes over the batch: one numpy operation per circuit node.
    Returns an array of shape ``(len(evidence_batch),)``.
    """
    batch_size = len(evidence_batch)
    if batch_size == 0:
        return np.empty(0)
    # Precompute indicator value matrices.
    lambda_matrix: dict[tuple[str, int], np.ndarray] = {}
    for (variable, state) in circuit.indicators:
        column = np.ones(batch_size)
        for row, evidence in enumerate(evidence_batch):
            if variable in evidence and evidence[variable] != state:
                column[row] = 0.0
        lambda_matrix[(variable, state)] = column

    values = np.empty((len(circuit), batch_size))
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_matrix[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = values[list(node.children)].sum(axis=0)
        elif node.op is OpType.PRODUCT:
            values[index] = values[list(node.children)].prod(axis=0)
        else:  # MAX
            values[index] = values[list(node.children)].max(axis=0)
    return values[circuit.root].copy()


def evaluate_quantized_values(
    circuit: ArithmeticCircuit,
    backend: QuantizedBackend,
    evidence: Mapping[str, int] | None = None,
) -> list[Any]:
    """Quantized value of every node; see module docstring for semantics."""
    if not circuit.is_binary:
        raise ValueError(
            "quantized evaluation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    lambda_values = circuit.indicator_assignment(evidence)
    one = backend.one()
    zero = backend.zero()
    values: list[Any] = [None] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = backend.from_real(node.value)
        elif node.op is OpType.INDICATOR:
            lam = lambda_values[(node.variable, node.state)]
            values[index] = one if lam == 1.0 else zero
        else:
            left = values[node.children[0]]
            if len(node.children) == 1:
                values[index] = left
                continue
            right = values[node.children[1]]
            if node.op is OpType.SUM:
                values[index] = backend.add(left, right)
            elif node.op is OpType.PRODUCT:
                values[index] = backend.multiply(left, right)
            else:  # MAX
                values[index] = backend.maximum(left, right)
    return values


def evaluate_quantized(
    circuit: ArithmeticCircuit,
    backend: QuantizedBackend,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Quantized root value, converted back to float64."""
    values = evaluate_quantized_values(circuit, backend, evidence)
    return backend.to_real(values[circuit.root])
