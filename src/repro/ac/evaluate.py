"""Evaluation passes over arithmetic circuits.

Three evaluators are provided:

* :func:`evaluate_real` / :func:`evaluate_values` — exact float64 forward
  pass, the reference the paper measures errors against;
* :func:`evaluate_batch` — numpy-vectorized float64 evaluation over a
  whole test set at once;
* :func:`evaluate_quantized` — forward pass in an arbitrary quantized
  number system (fixed- or floating-point simulators from
  :mod:`repro.arith`), which must implement :class:`QuantizedBackend`.

The float64 entry points are thin wrappers over the compiled-tape
engine (:mod:`repro.engine`): the circuit is linearized once into a
cached :class:`~repro.engine.tape.Tape` and each call replays the tape.
Results are bit-identical to the original per-node sweeps (which are
preserved verbatim in :mod:`repro.engine.reference` and differentially
tested against the engine).

``evaluate_quantized`` / ``evaluate_quantized_values`` intentionally
keep the original per-node loop: they are the golden reference all
accelerated quantized executors are validated against.

Quantized evaluation requires a **binary** circuit: every rounding the
hardware performs corresponds to exactly one two-input operator, so
evaluating an n-ary node would silently disagree with the error analysis
and with the generated hardware. Use :func:`repro.ac.transform.binarize`
first.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from .circuit import ArithmeticCircuit
from .nodes import OpType


class QuantizedBackend(Protocol):
    """Number-system interface for quantized evaluation.

    Implementations live in :mod:`repro.arith`. Values are opaque to the
    evaluator; only the backend creates and combines them.
    """

    def from_real(self, x: float) -> Any:
        """Quantize a real number (rounding to nearest)."""

    def zero(self) -> Any:
        """The exact number 0."""

    def one(self) -> Any:
        """The exact number 1."""

    def add(self, a: Any, b: Any) -> Any:
        """Quantized addition."""

    def multiply(self, a: Any, b: Any) -> Any:
        """Quantized multiplication."""

    def maximum(self, a: Any, b: Any) -> Any:
        """Exact maximum (comparison only, no rounding)."""

    def to_real(self, a: Any) -> float:
        """Convert back to a float64 real number."""


def evaluate_values(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> list[float]:
    """Float64 value of every node under the given evidence."""
    # Imported lazily: repro.ac.__init__ loads this module while the
    # engine package (which imports repro.ac.circuit) may still be
    # initializing.
    from ..engine import execute_values, tape_for

    return execute_values(tape_for(circuit), evidence)


def evaluate_real(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Float64 value of the root under the given evidence."""
    from ..engine import execute_real, tape_for

    return execute_real(tape_for(circuit), evidence)


def evaluate_batch(
    circuit: ArithmeticCircuit,
    evidence_batch: Sequence[Mapping[str, int]],
) -> np.ndarray:
    """Float64 root values for a batch of evidence assignments.

    Vectorizes over the batch: one numpy operation per tape operation.
    Returns an array of shape ``(len(evidence_batch),)``.
    """
    from ..engine import execute_batch, tape_for

    return execute_batch(tape_for(circuit), evidence_batch)


def evaluate_quantized_values(
    circuit: ArithmeticCircuit,
    backend: QuantizedBackend,
    evidence: Mapping[str, int] | None = None,
) -> list[Any]:
    """Quantized value of every node; see module docstring for semantics."""
    if not circuit.is_binary:
        raise ValueError(
            "quantized evaluation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    lambda_values = circuit.indicator_assignment(evidence)
    one = backend.one()
    zero = backend.zero()
    values: list[Any] = [None] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = backend.from_real(node.value)
        elif node.op is OpType.INDICATOR:
            lam = lambda_values[(node.variable, node.state)]
            values[index] = one if lam == 1.0 else zero
        else:
            left = values[node.children[0]]
            if len(node.children) == 1:
                values[index] = left
                continue
            right = values[node.children[1]]
            if node.op is OpType.SUM:
                values[index] = backend.add(left, right)
            elif node.op is OpType.PRODUCT:
                values[index] = backend.multiply(left, right)
            else:  # MAX
                values[index] = backend.maximum(left, right)
    return values


def evaluate_quantized(
    circuit: ArithmeticCircuit,
    backend: QuantizedBackend,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Quantized root value, converted back to float64."""
    values = evaluate_quantized_values(circuit, backend, evidence)
    return backend.to_real(values[circuit.root])
