"""Graphviz export of arithmetic circuits.

Renders circuits in the visual style of the paper's Figure 1b: ``+`` and
``×`` operator nodes, θ parameter leaves and λ indicator leaves. Intended
for documentation and debugging of small circuits::

    dot -Tpdf circuit.dot -o circuit.pdf
"""

from __future__ import annotations

from pathlib import Path

from .circuit import ArithmeticCircuit
from .nodes import OpType

_OP_STYLE = {
    OpType.SUM: ("+", "ellipse", "#cce5ff"),
    OpType.PRODUCT: ("×", "ellipse", "#ffe5cc"),
    OpType.MAX: ("max", "ellipse", "#e5ccff"),
}


def circuit_to_dot(
    circuit: ArithmeticCircuit,
    max_nodes: int = 500,
    include_unreachable: bool = False,
) -> str:
    """Render a circuit as Graphviz dot text.

    Refuses circuits larger than ``max_nodes`` — giant graphs render to
    unreadable output; raise the limit explicitly if needed.
    """
    keep = (
        set(range(len(circuit)))
        if include_unreachable
        else circuit.reachable_from_root()
    )
    if len(keep) > max_nodes:
        raise ValueError(
            f"circuit has {len(keep)} nodes, over the max_nodes={max_nodes} "
            f"rendering limit; raise the limit to force"
        )
    lines = [
        f'digraph "{circuit.name}" {{',
        "  rankdir=BT;",
        '  node [fontname="Helvetica"];',
    ]
    for index, node in enumerate(circuit.nodes):
        if index not in keep:
            continue
        if node.op is OpType.PARAMETER:
            label = node.label or f"θ={node.value:g}"
            lines.append(
                f'  n{index} [label="{label}", shape=box, '
                f'style=filled, fillcolor="#e8f5e9"];'
            )
        elif node.op is OpType.INDICATOR:
            lines.append(
                f'  n{index} [label="λ({node.variable}={node.state})", '
                f'shape=box, style=filled, fillcolor="#fff9c4"];'
            )
        else:
            symbol, shape, color = _OP_STYLE[node.op]
            peripheries = 2 if index == circuit.root else 1
            lines.append(
                f'  n{index} [label="{symbol}", shape={shape}, '
                f'style=filled, fillcolor="{color}", '
                f"peripheries={peripheries}];"
            )
        for child in node.children:
            lines.append(f"  n{child} -> n{index};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(circuit: ArithmeticCircuit, path: str | Path, **kwargs) -> None:
    """Write the dot rendering of a circuit to ``path``."""
    Path(path).write_text(circuit_to_dot(circuit, **kwargs))
