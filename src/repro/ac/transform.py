"""Structural transformations of arithmetic circuits.

The central transform is :func:`binarize`, which decomposes every n-ary
operator into a tree of two-input operators — the first stage of the
paper's hardware generation (Figure 4) and a precondition for quantized
evaluation and error-bound analysis. ``strategy="balanced"`` builds
minimum-depth trees (shallower pipelines, smaller float error constants);
``strategy="chain"`` builds left-to-right chains, provided for the
ablation study on decomposition shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit import ArithmeticCircuit
from .nodes import OpType


@dataclass(frozen=True)
class TransformResult:
    """A transformed circuit plus the old-index → new-index mapping."""

    circuit: ArithmeticCircuit
    node_map: dict[int, int]

    @property
    def root(self) -> int:
        return self.circuit.root


def _combine(
    circuit: ArithmeticCircuit,
    op: OpType,
    children: list[int],
    strategy: str,
) -> int:
    """Reduce ``children`` to one node with a tree of 2-input ``op`` nodes."""
    add = {
        OpType.SUM: circuit.add_sum,
        OpType.PRODUCT: circuit.add_product,
        OpType.MAX: circuit.add_max,
    }[op]
    if strategy == "chain":
        result = children[0]
        for child in children[1:]:
            result = add([result, child])
        return result
    # Balanced: repeatedly pair up adjacent nodes.
    level = list(children)
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(add([level[i], level[i + 1]]))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def binarize(
    circuit: ArithmeticCircuit, strategy: str = "balanced"
) -> TransformResult:
    """Decompose all n-ary operators into trees of 2-input operators.

    Only nodes reachable from the root are kept, so this doubles as dead
    code elimination. The result satisfies ``circuit.is_binary``.
    """
    if strategy not in ("balanced", "chain"):
        raise ValueError(f"unknown strategy {strategy!r}")
    reachable = circuit.reachable_from_root()
    result = ArithmeticCircuit(name=f"{circuit.name}_bin", dedup=True)
    node_map: dict[int, int] = {}
    for index, node in enumerate(circuit.nodes):
        if index not in reachable:
            continue
        if node.op is OpType.PARAMETER:
            node_map[index] = result.add_parameter(node.value, node.label)
        elif node.op is OpType.INDICATOR:
            node_map[index] = result.add_indicator(node.variable, node.state)
        else:
            children = [node_map[c] for c in node.children]
            node_map[index] = _combine(result, node.op, children, strategy)
    result.set_root(node_map[circuit.root])
    return TransformResult(result, node_map)


def prune_unreachable(circuit: ArithmeticCircuit) -> TransformResult:
    """Drop nodes outside the root cone, preserving n-ary structure."""
    reachable = circuit.reachable_from_root()
    result = ArithmeticCircuit(name=circuit.name, dedup=True)
    node_map: dict[int, int] = {}
    for index, node in enumerate(circuit.nodes):
        if index not in reachable:
            continue
        if node.op is OpType.PARAMETER:
            node_map[index] = result.add_parameter(node.value, node.label)
        elif node.op is OpType.INDICATOR:
            node_map[index] = result.add_indicator(node.variable, node.state)
        else:
            children = [node_map[c] for c in node.children]
            if node.op is OpType.SUM:
                node_map[index] = result.add_sum(children)
            elif node.op is OpType.PRODUCT:
                node_map[index] = result.add_product(children)
            else:
                node_map[index] = result.add_max(children)
    result.set_root(node_map[circuit.root])
    return TransformResult(result, node_map)
