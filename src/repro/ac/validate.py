"""Structural validation and diagnostics for arithmetic circuits.

:func:`validate_circuit` enforces the invariants every downstream pass
relies on; the remaining helpers are diagnostics (smoothness and
decomposability are properties some AC families guarantee — circuits from
our variable-elimination compiler are decomposable over indicator
variables but not necessarily smooth, which none of the ProbLP analyses
require).
"""

from __future__ import annotations

from .circuit import ArithmeticCircuit
from .nodes import OpType


class CircuitError(ValueError):
    """Raised when a circuit violates a structural invariant."""


def validate_circuit(circuit: ArithmeticCircuit) -> None:
    """Check all structural invariants, raising :class:`CircuitError`.

    Invariants: a root is set; children precede parents (topological
    arena); leaves are parameters/indicators with valid payloads; operator
    fan-in is at least one; parameter values are finite and non-negative.
    """
    if not circuit.has_root:
        raise CircuitError(f"circuit {circuit.name!r} has no root")
    if len(circuit) == 0:
        raise CircuitError(f"circuit {circuit.name!r} is empty")
    for index, node in enumerate(circuit.nodes):
        for child in node.children:
            if child >= index:
                raise CircuitError(
                    f"node {index} has child {child} that does not precede "
                    f"it; arena is not topologically ordered"
                )
        if node.op is OpType.PARAMETER:
            value = node.value
            if value is None or not (0.0 <= value < float("inf")):
                raise CircuitError(
                    f"parameter node {index} has invalid value {value!r}"
                )
        elif node.op is OpType.INDICATOR:
            if node.variable is None or node.state is None or node.state < 0:
                raise CircuitError(f"indicator node {index} malformed")
        elif not node.children:
            raise CircuitError(f"operator node {index} has no children")


def indicator_support(circuit: ArithmeticCircuit) -> list[frozenset[str]]:
    """For each node, the set of variables whose λ leaves feed it."""
    support: list[frozenset[str]] = [frozenset()] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.INDICATOR:
            support[index] = frozenset((node.variable,))
        elif node.children:
            merged: set[str] = set()
            for child in node.children:
                merged |= support[child]
            support[index] = frozenset(merged)
    return support


def is_smooth(circuit: ArithmeticCircuit) -> bool:
    """True when every sum/max node's children mention the same variables."""
    support = indicator_support(circuit)
    for node in circuit.nodes:
        if node.op in (OpType.SUM, OpType.MAX) and len(node.children) > 1:
            first = support[node.children[0]]
            if any(support[c] != first for c in node.children[1:]):
                return False
    return True


def is_decomposable(circuit: ArithmeticCircuit) -> bool:
    """True when every product's children mention disjoint variables."""
    support = indicator_support(circuit)
    for node in circuit.nodes:
        if node.op is OpType.PRODUCT and len(node.children) > 1:
            seen: set[str] = set()
            for child in node.children:
                if support[child] & seen:
                    return False
                seen |= support[child]
    return True
