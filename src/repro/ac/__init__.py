"""Arithmetic circuits: the computation model ProbLP analyzes.

An AC is a rooted DAG of sums and products (plus max for MPE) over network
parameters θ and evidence indicators λ. This package provides the circuit
container, evaluators (exact, batched and quantized), structural
transformations (binary decomposition), validation and serialization.
"""

from .circuit import ArithmeticCircuit, CircuitStats, topological_check
from .derivatives import (
    ZeroEvidenceError,
    conditional_probability,
    joint_marginals,
    partial_derivatives,
    posterior_marginals,
)
from .dot import circuit_to_dot, save_dot
from .evaluate import (
    QuantizedBackend,
    evaluate_batch,
    evaluate_quantized,
    evaluate_quantized_values,
    evaluate_real,
    evaluate_values,
)
from .fastpath import Program, VectorFixedPointEvaluator
from .io import circuit_from_dict, circuit_to_dict, load_circuit, save_circuit
from .nodes import HARDWARE_OPS, Node, OpType
from .transform import TransformResult, binarize, prune_unreachable
from .validate import (
    CircuitError,
    indicator_support,
    is_decomposable,
    is_smooth,
    validate_circuit,
)

__all__ = [
    "ArithmeticCircuit",
    "CircuitError",
    "CircuitStats",
    "HARDWARE_OPS",
    "Node",
    "OpType",
    "Program",
    "QuantizedBackend",
    "TransformResult",
    "VectorFixedPointEvaluator",
    "ZeroEvidenceError",
    "binarize",
    "circuit_from_dict",
    "circuit_to_dict",
    "circuit_to_dot",
    "conditional_probability",
    "evaluate_batch",
    "evaluate_quantized",
    "evaluate_quantized_values",
    "evaluate_real",
    "evaluate_values",
    "indicator_support",
    "is_decomposable",
    "is_smooth",
    "joint_marginals",
    "load_circuit",
    "partial_derivatives",
    "posterior_marginals",
    "prune_unreachable",
    "save_circuit",
    "save_dot",
    "topological_check",
    "validate_circuit",
]
