"""The arithmetic circuit container.

:class:`ArithmeticCircuit` stores nodes in an arena list that is
topologically ordered by construction: an operator's children must already
exist when the operator is added. This makes every downstream pass — real
and quantized evaluation, bound propagation, extreme-value analysis,
hardware generation — a single forward sweep over ``circuit.nodes``.

The builder performs common-subexpression elimination by default:
structurally identical nodes (same op and children, or same parameter
value) are shared, which mirrors the sharing an AC compiler like ACE
produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .nodes import Node, OpType


@dataclass(frozen=True)
class CircuitStats:
    """Node-count summary of a circuit."""

    num_nodes: int
    num_sums: int
    num_products: int
    num_max: int
    num_parameters: int
    num_indicators: int
    depth: int
    max_fanin: int

    @property
    def num_operators(self) -> int:
        return self.num_sums + self.num_products + self.num_max


class ArithmeticCircuit:
    """A rooted arithmetic circuit over θ parameters and λ indicators."""

    def __init__(self, name: str = "ac", dedup: bool = True) -> None:
        self.name = name
        self._nodes: list[Node] = []
        self._root: int | None = None
        self._dedup = dedup
        self._cse: dict[tuple, int] = {}
        self._indicators: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _intern(self, key: tuple, node: Node) -> int:
        if self._dedup and key in self._cse:
            return self._cse[key]
        index = len(self._nodes)
        self._nodes.append(node)
        if self._dedup:
            self._cse[key] = index
        return index

    def add_parameter(self, value: float, label: str | None = None) -> int:
        """Add (or reuse) a θ leaf with the given real value."""
        node = Node(OpType.PARAMETER, value=float(value), label=label)
        return self._intern(("p", float(value)), node)

    def add_indicator(self, variable: str, state: int) -> int:
        """Add (or reuse) the λ leaf for ``variable = state``."""
        key = (variable, int(state))
        if key in self._indicators:
            return self._indicators[key]
        index = len(self._nodes)
        self._nodes.append(Node(OpType.INDICATOR, variable=variable, state=int(state)))
        self._indicators[key] = index
        return index

    def _add_operator(self, op: OpType, children: Sequence[int]) -> int:
        children = tuple(int(c) for c in children)
        if not children:
            raise ValueError(f"{op.value} node needs at least one child")
        for child in children:
            if not 0 <= child < len(self._nodes):
                raise ValueError(
                    f"child index {child} out of range "
                    f"(circuit has {len(self._nodes)} nodes)"
                )
        if len(children) == 1:
            # A unary sum/product/max is the identity; don't materialize it.
            return children[0]
        key = (op.value,) + tuple(sorted(children))
        return self._intern(key, Node(op, children=children))

    def add_sum(self, children: Sequence[int]) -> int:
        return self._add_operator(OpType.SUM, children)

    def add_product(self, children: Sequence[int]) -> int:
        return self._add_operator(OpType.PRODUCT, children)

    def add_max(self, children: Sequence[int]) -> int:
        return self._add_operator(OpType.MAX, children)

    def set_root(self, index: int) -> None:
        if not 0 <= index < len(self._nodes):
            raise ValueError(f"root index {index} out of range")
        self._root = index

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes)

    def node(self, index: int) -> Node:
        return self._nodes[index]

    @property
    def root(self) -> int:
        if self._root is None:
            raise ValueError(f"circuit {self.name!r} has no root set")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root is not None

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def indicators(self) -> dict[tuple[str, int], int]:
        """Mapping ``(variable, state) -> node index`` (copy)."""
        return dict(self._indicators)

    @property
    def indicator_variables(self) -> tuple[str, ...]:
        """Sorted names of all variables with at least one λ leaf."""
        return tuple(sorted({var for var, _ in self._indicators}))

    def indicator_states(self, variable: str) -> tuple[int, ...]:
        """Sorted states of ``variable`` that have λ leaves."""
        return tuple(
            sorted(state for var, state in self._indicators if var == variable)
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def parents_map(self) -> list[list[int]]:
        """For each node, the indices of operators that consume it."""
        parents: list[list[int]] = [[] for _ in self._nodes]
        for index, node in enumerate(self._nodes):
            for child in node.children:
                parents[child].append(index)
        return parents

    def depths(self) -> list[int]:
        """Operator depth of each node (leaves are 0)."""
        depths = [0] * len(self._nodes)
        for index, node in enumerate(self._nodes):
            if node.children:
                depths[index] = 1 + max(depths[c] for c in node.children)
        return depths

    def stats(self) -> CircuitStats:
        counts = {op: 0 for op in OpType}
        max_fanin = 0
        for node in self._nodes:
            counts[node.op] += 1
            max_fanin = max(max_fanin, len(node.children))
        depths = self.depths()
        return CircuitStats(
            num_nodes=len(self._nodes),
            num_sums=counts[OpType.SUM],
            num_products=counts[OpType.PRODUCT],
            num_max=counts[OpType.MAX],
            num_parameters=counts[OpType.PARAMETER],
            num_indicators=counts[OpType.INDICATOR],
            depth=max(depths) if depths else 0,
            max_fanin=max_fanin,
        )

    @property
    def is_binary(self) -> bool:
        """True when every operator has at most two inputs."""
        return all(
            len(node.children) <= 2
            for node in self._nodes
            if node.op.is_operator
        )

    def reachable_from_root(self) -> set[int]:
        """Indices of all nodes in the cone of the root."""
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self._nodes[index].children)
        return seen

    # ------------------------------------------------------------------
    # Evaluation conveniences (full implementations in evaluate.py)
    # ------------------------------------------------------------------
    def indicator_assignment(
        self, evidence: Mapping[str, int] | None
    ) -> dict[tuple[str, int], float]:
        """λ values for the given evidence.

        Indicators of unobserved variables are 1; for an observed variable
        the matching state's indicator is 1 and the rest are 0. Evidence on
        variables without indicators in this circuit is rejected — it would
        silently not condition anything.
        """
        evidence = dict(evidence or {})
        present = set(self.indicator_variables)
        unknown = set(evidence) - present
        if unknown:
            raise ValueError(
                f"evidence on variables with no indicators in this circuit: "
                f"{sorted(unknown)}"
            )
        values: dict[tuple[str, int], float] = {}
        for (variable, state) in self._indicators:
            if variable in evidence:
                values[(variable, state)] = (
                    1.0 if evidence[variable] == state else 0.0
                )
            else:
                values[(variable, state)] = 1.0
        return values

    def evaluate(self, evidence: Mapping[str, int] | None = None) -> float:
        """Evaluate in exact float64 arithmetic (see :mod:`repro.ac.evaluate`)."""
        from .evaluate import evaluate_real

        return evaluate_real(self, evidence)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ArithmeticCircuit({self.name!r}, {stats.num_nodes} nodes: "
            f"{stats.num_sums}+ {stats.num_products}* {stats.num_max}max, "
            f"{stats.num_parameters}θ {stats.num_indicators}λ, "
            f"depth {stats.depth})"
        )


def topological_check(circuit: ArithmeticCircuit) -> bool:
    """Verify the arena invariant: children precede their parents."""
    return all(
        child < index
        for index, node in enumerate(circuit.nodes)
        for child in node.children
    )
