"""The differential approach: downward (derivative) passes over ACs.

The network polynomial is multilinear in the indicators λ, so its partial
derivatives carry probabilistic meaning (Darwiche's differential
approach): with the circuit evaluated under evidence ``e``,

.. math:: \\frac{\\partial f}{\\partial \\lambda_{x}}(e)
          = Pr(x, e \\setminus X),

i.e. one upward pass plus one downward pass yields the joint of *every*
state of *every* variable with the evidence — and posterior marginals
after normalization. This is also the paper's footnote 2: conditional
probabilities "can also be estimated by an upward and a downward pass in
an AC followed with a division".

These functions are thin wrappers over the compiled-tape engine
(:mod:`repro.engine`): the circuit is linearized once into a cached
:class:`~repro.engine.tape.Tape` and both passes replay it (the backward
pass through the cached :class:`~repro.engine.tape.BackwardProgram`,
whose binary fold chains apply the product rule in O(k) per k-ary
product). Results are bit-identical to the frozen node-walking sweep
preserved in :func:`repro.engine.reference.reference_partial_derivatives`
and differentially tested against it. Batched all-marginals serving
lives on :meth:`repro.engine.InferenceSession.marginals_batch`.

Derivative passes are defined for sum/product circuits; MAX nodes (MPE
circuits) are not differentiable and are rejected. Conditioning on
zero-probability evidence raises the typed
:class:`~repro.errors.ZeroEvidenceError`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ZeroEvidenceError
from .circuit import ArithmeticCircuit

__all__ = [
    "ZeroEvidenceError",
    "conditional_probability",
    "joint_marginals",
    "partial_derivatives",
    "posterior_marginals",
]


def partial_derivatives(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> tuple[list[float], list[float]]:
    """Upward values and downward partials ``∂f/∂v_i`` for every node.

    Returns ``(values, partials)``. Only nodes in the root cone receive
    non-zero partials.
    """
    # Imported lazily: repro.ac.__init__ loads this module while the
    # engine package (which imports repro.ac.circuit) may still be
    # initializing.
    from ..engine import session_for

    return session_for(circuit).partials(evidence)


def joint_marginals(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> dict[str, np.ndarray]:
    """``Pr(X = x, e \\ X)`` for every indicator variable and state.

    One upward + one downward pass computes all of them at once.
    """
    from ..engine import session_for

    return session_for(circuit).marginals(evidence, joint=True)


def posterior_marginals(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> dict[str, np.ndarray]:
    """``Pr(X | e)`` for every variable, via the differential approach.

    Raises :class:`~repro.errors.ZeroEvidenceError` (a
    ``ZeroDivisionError`` subclass) when the evidence has probability
    zero.
    """
    from ..engine import session_for

    return session_for(circuit).marginals(evidence)


def conditional_probability(
    circuit: ArithmeticCircuit,
    query: str,
    state: int,
    evidence: Mapping[str, int],
) -> float:
    """``Pr(query = state | e)`` by upward+downward pass and a division.

    The paper's footnote-2 alternative to two upward passes. Served from
    the circuit's cached :class:`~repro.engine.InferenceSession`, so
    repeated calls replay the compiled tape instead of recompiling and
    re-walking the circuit per query.
    """
    from ..engine import session_for

    if query in evidence:
        raise ValueError(f"query variable {query!r} is also evidence")
    posterior = session_for(circuit).marginals(evidence)
    try:
        return float(posterior[query][state])
    except KeyError:
        raise KeyError(
            f"circuit has no indicators for variable {query!r}"
        ) from None
