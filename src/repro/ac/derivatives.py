"""The differential approach: downward (derivative) passes over ACs.

The network polynomial is multilinear in the indicators λ, so its partial
derivatives carry probabilistic meaning (Darwiche's differential
approach): with the circuit evaluated under evidence ``e``,

.. math:: \\frac{\\partial f}{\\partial \\lambda_{x}}(e)
          = Pr(x, e \\setminus X),

i.e. one upward pass plus one downward pass yields the joint of *every*
state of *every* variable with the evidence — and posterior marginals
after normalization. This is also the paper's footnote 2: conditional
probabilities "can also be estimated by an upward and a downward pass in
an AC followed with a division".

Derivative passes are defined for sum/product circuits; MAX nodes (MPE
circuits) are not differentiable and are rejected.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .circuit import ArithmeticCircuit
from .evaluate import evaluate_values
from .nodes import OpType


def partial_derivatives(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> tuple[list[float], list[float]]:
    """Upward values and downward partials ``∂f/∂v_i`` for every node.

    Returns ``(values, partials)``. Only nodes in the root cone receive
    non-zero partials.
    """
    for node in circuit.nodes:
        if node.op is OpType.MAX:
            raise ValueError(
                "derivative passes are undefined for MAX nodes; "
                "use a sum-product circuit"
            )
    values = evaluate_values(circuit, evidence)
    partials = [0.0] * len(circuit)
    partials[circuit.root] = 1.0
    # Reverse topological order: parents before children.
    for index in range(len(circuit) - 1, -1, -1):
        node = circuit.node(index)
        if not node.op.is_operator or partials[index] == 0.0:
            continue
        seed = partials[index]
        if node.op is OpType.SUM:
            for child in node.children:
                partials[child] += seed
        else:  # PRODUCT
            children = node.children
            for position, child in enumerate(children):
                product = seed
                for other_position, other in enumerate(children):
                    if other_position != position:
                        product *= values[other]
                partials[child] += product
    return values, partials


def joint_marginals(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> dict[str, np.ndarray]:
    """``Pr(X = x, e \\ X)`` for every indicator variable and state.

    One upward + one downward pass computes all of them at once.
    """
    _, partials = partial_derivatives(circuit, evidence)
    marginals: dict[str, np.ndarray] = {}
    for (variable, state), node_index in circuit.indicators.items():
        card = len(circuit.indicator_states(variable))
        if variable not in marginals:
            marginals[variable] = np.zeros(card)
        marginals[variable][state] = partials[node_index]
    return marginals


def posterior_marginals(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> dict[str, np.ndarray]:
    """``Pr(X | e)`` for every variable, via the differential approach.

    Raises ``ZeroDivisionError`` when the evidence has probability zero.
    """
    joints = joint_marginals(circuit, evidence)
    posteriors = {}
    for variable, joint in joints.items():
        total = joint.sum()
        if total == 0.0:
            raise ZeroDivisionError(
                f"evidence has probability zero; cannot condition "
                f"{variable!r}"
            )
        posteriors[variable] = joint / total
    return posteriors


def conditional_probability(
    circuit: ArithmeticCircuit,
    query: str,
    state: int,
    evidence: Mapping[str, int],
) -> float:
    """``Pr(query = state | e)`` by upward+downward pass and a division.

    The paper's footnote-2 alternative to two upward passes.
    """
    if query in evidence:
        raise ValueError(f"query variable {query!r} is also evidence")
    posterior = posterior_marginals(circuit, evidence)
    try:
        return float(posterior[query][state])
    except KeyError:
        raise KeyError(
            f"circuit has no indicators for variable {query!r}"
        ) from None
