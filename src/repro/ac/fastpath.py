"""Fast evaluation paths for quantized sweeps (tape-backed).

Historically this module carried its own linearizer (``Program``) and a
hand-rolled int64 batch evaluator (``VectorFixedPointEvaluator``). Both
are now thin wrappers over the compiled-tape engine
(:mod:`repro.engine`), which owns the single linearization every sweep
shares. The classes stay because experiments, benchmarks and downstream
code construct them by name; new code should prefer
:class:`repro.engine.InferenceSession`.

* :class:`Program` — compiles the circuit's cached
  :class:`~repro.engine.tape.Tape` and evaluates it with any
  :class:`~repro.ac.evaluate.QuantizedBackend`;
* :class:`VectorFixedPointEvaluator` — exact numpy int64 fixed-point
  batch evaluation, bit-identical to
  :class:`repro.arith.FixedPointBackend` (tested), valid for formats
  with ``2·(I+F) ≤ 62``. Unlike the pre-engine version it also accepts
  ``F = 0`` integer formats.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..arith.fixedpoint import FixedPointFormat
from .circuit import ArithmeticCircuit

# Legacy public opcode names. They mirror repro.engine.tape (where the
# canonical definitions live); redefined literally here to keep this
# module importable while the engine package is still initializing.
OP_SUM, OP_PRODUCT, OP_MAX = 0, 1, 2


def _require_binary(circuit: ArithmeticCircuit) -> None:
    if not circuit.is_binary:
        raise ValueError(
            "program compilation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )


class Program:
    """A circuit linearized for fast repeated quantized evaluation.

    Wraps the circuit's cached tape plus a
    :class:`~repro.engine.executors.QuantizedTapeEvaluator`. The legacy
    introspection attributes (``parameters``, ``indicators``,
    ``operations``, ``num_slots``, ``root``) are preserved.
    """

    def __init__(self, circuit: ArithmeticCircuit) -> None:
        from ..engine import QuantizedTapeEvaluator, tape_for

        _require_binary(circuit)
        self.circuit = circuit
        self.tape = tape_for(circuit)
        self._evaluator = QuantizedTapeEvaluator(self.tape)
        self.num_slots = self.tape.num_slots
        self.root = self.tape.require_root()
        self.parameters: list[tuple[int, float]] = [
            (int(slot), float(self.tape.param_values[value_id]))
            for slot, value_id in zip(
                self.tape.param_slots, self.tape.param_ids
            )
        ]
        self.indicators: list[tuple[int, str, int]] = [
            (int(slot), variable, state)
            for slot, (variable, state) in zip(
                self.tape.indicator_slots, self.tape.indicator_keys
            )
        ]
        self.operations: list[tuple[int, int, int, int]] = [
            (opcode, dest, left, right)
            for opcode, dest, left, right in self.tape.op_tuples
        ]

    def evaluate(self, backend, evidence: Mapping[str, int] | None = None) -> float:
        """Quantized evaluation; same semantics as ``evaluate_quantized``."""
        return self._evaluator.evaluate(backend, evidence)


class VectorFixedPointEvaluator:
    """Exact batched fixed-point evaluation on numpy int64 mantissas."""

    def __init__(self, circuit: ArithmeticCircuit, fmt: FixedPointFormat) -> None:
        from ..engine import FixedPointBatchExecutor, tape_for

        _require_binary(circuit)
        self.circuit = circuit
        self.fmt = fmt
        self._executor = FixedPointBatchExecutor(tape_for(circuit), fmt)

    def evaluate_batch(
        self, evidence_batch: Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """Evaluate the batch; returns float64 values of the root word.

        Raises :class:`repro.arith.FixedPointOverflowError` if any
        intermediate exceeds the representable range, exactly like the
        scalar backend.
        """
        return self._executor.evaluate_batch(evidence_batch)
