"""Fast evaluation paths for quantized sweeps.

The bound-validation and Table 2 experiments evaluate the same circuit
thousands of times. Two accelerators keep that pure-Python-tractable:

* :class:`Program` — the circuit linearized into plain opcode tuples,
  removing per-node attribute lookups from the inner loop (works with
  any backend, ~2× faster than the generic evaluator);
* :class:`VectorFixedPointEvaluator` — an **exact** numpy int64
  implementation of fixed-point evaluation over a whole evidence batch
  at once. Exactness requires products to fit in int64, i.e.
  ``2·(I+F) ≤ 62``; wider formats must use the big-int path. Results are
  bit-identical to :class:`repro.arith.FixedPointBackend` (tested).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..arith.fixedpoint import FixedPointFormat, FixedPointOverflowError
from ..arith.rounding import RoundingMode
from .circuit import ArithmeticCircuit
from .nodes import OpType

# Opcodes of the linearized program.
OP_SUM, OP_PRODUCT, OP_MAX = 0, 1, 2


class Program:
    """A circuit linearized for fast repeated quantized evaluation."""

    def __init__(self, circuit: ArithmeticCircuit) -> None:
        if not circuit.is_binary:
            raise ValueError(
                "program compilation requires a binary circuit; apply "
                "repro.ac.transform.binarize first"
            )
        self.circuit = circuit
        self.num_slots = len(circuit)
        self.root = circuit.root
        self.parameters: list[tuple[int, float]] = []
        self.indicators: list[tuple[int, str, int]] = []
        self.operations: list[tuple[int, int, int, int]] = []
        for index, node in enumerate(circuit.nodes):
            if node.op is OpType.PARAMETER:
                self.parameters.append((index, node.value))
            elif node.op is OpType.INDICATOR:
                self.indicators.append((index, node.variable, node.state))
            else:
                opcode = {
                    OpType.SUM: OP_SUM,
                    OpType.PRODUCT: OP_PRODUCT,
                    OpType.MAX: OP_MAX,
                }[node.op]
                left = node.children[0]
                right = node.children[1] if len(node.children) > 1 else left
                self.operations.append((opcode, index, left, right))

    def evaluate(self, backend, evidence: Mapping[str, int] | None = None) -> float:
        """Quantized evaluation; same semantics as ``evaluate_quantized``."""
        lambda_values = self.circuit.indicator_assignment(evidence)
        slots: list[Any] = [None] * self.num_slots
        quantized_cache: dict[float, Any] = {}
        for index, value in self.parameters:
            cached = quantized_cache.get(value)
            if cached is None:
                cached = quantized_cache[value] = backend.from_real(value)
            slots[index] = cached
        one, zero = backend.one(), backend.zero()
        for index, variable, state in self.indicators:
            slots[index] = (
                one if lambda_values[(variable, state)] == 1.0 else zero
            )
        add, multiply, maximum = backend.add, backend.multiply, backend.maximum
        for opcode, destination, left, right in self.operations:
            if opcode == OP_SUM:
                slots[destination] = add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[destination] = multiply(slots[left], slots[right])
            else:
                slots[destination] = maximum(slots[left], slots[right])
        return backend.to_real(slots[self.root])


class VectorFixedPointEvaluator:
    """Exact batched fixed-point evaluation on numpy int64 mantissas."""

    def __init__(self, circuit: ArithmeticCircuit, fmt: FixedPointFormat) -> None:
        if 2 * fmt.total_bits > 62:
            raise ValueError(
                f"vectorized fixed point needs 2·(I+F) ≤ 62 bits to stay "
                f"exact in int64; {fmt.describe()} has {fmt.total_bits} "
                f"total bits — use the big-int backend instead"
            )
        self.program = Program(circuit)
        self.fmt = fmt
        self._max_mantissa = fmt.max_mantissa
        # Pre-quantize parameter mantissas once (exact big-int path).
        from ..arith.fixedpoint import FixedPointBackend

        backend = FixedPointBackend(fmt)
        self._parameter_words = [
            (index, backend.from_real(value).mantissa)
            for index, value in self.program.parameters
        ]
        self._one_word = backend.one().mantissa

    def _round_products(self, products: np.ndarray) -> np.ndarray:
        """Vectorized rounding of 2F-fraction products back to F bits."""
        fraction_bits = self.fmt.fraction_bits
        quotient = products >> fraction_bits
        remainder = products & ((1 << fraction_bits) - 1)
        mode = self.fmt.rounding
        if mode is RoundingMode.TRUNCATE:
            return quotient
        half = 1 << (fraction_bits - 1)
        if mode is RoundingMode.NEAREST_UP:
            return quotient + (remainder >= half)
        round_up = (remainder > half) | (
            (remainder == half) & ((quotient & 1) == 1)
        )
        return quotient + round_up

    def evaluate_batch(
        self, evidence_batch: Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """Evaluate the batch; returns float64 values of the root word.

        Raises :class:`FixedPointOverflowError` if any intermediate
        exceeds the representable range, exactly like the scalar backend.
        """
        batch = len(evidence_batch)
        if batch == 0:
            return np.empty(0)
        slots = np.zeros((self.program.num_slots, batch), dtype=np.int64)
        for index, word in self._parameter_words:
            slots[index] = word
        for index, variable, state in self.program.indicators:
            column = np.full(batch, self._one_word, dtype=np.int64)
            for row, evidence in enumerate(evidence_batch):
                if variable in evidence and evidence[variable] != state:
                    column[row] = 0
            slots[index] = column
        for opcode, destination, left, right in self.program.operations:
            if opcode == OP_SUM:
                result = slots[left] + slots[right]
            elif opcode == OP_PRODUCT:
                result = self._round_products(slots[left] * slots[right])
            else:  # OP_MAX
                result = np.maximum(slots[left], slots[right])
            if result.max(initial=0) > self._max_mantissa:
                raise FixedPointOverflowError(
                    f"overflow at node {destination} in {self.fmt.describe()}"
                )
            slots[destination] = result
        return slots[self.program.root] * 2.0 ** (-self.fmt.fraction_bits)
