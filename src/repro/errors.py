"""Library-wide typed exceptions.

Kept dependency-free so every layer (``bn``, ``ac``, ``engine``,
``core``, the CLI) can raise and catch the same types without import
cycles.
"""

from __future__ import annotations


class NonBinaryCircuitError(ValueError):
    """An analysis that models 2-input hardware got an n-ary circuit.

    Bound propagation, extreme-driven format search and hardware
    generation all assume each operator is one 2-input rounding; running
    them on a wider decomposition would describe hardware that is never
    generated. Raised with a message naming the fix
    (``repro.ac.transform.binarize``); a :class:`ValueError` subclass so
    legacy ``except`` clauses keep working.
    """


class InfeasibleFormatError(ValueError):
    """No number format within the search cap meets the tolerance.

    Raised by representation selection when both the fixed- and
    floating-point searches fail (the paper's Table 2 prints these cases
    as ``>64``). Carries both per-representation reasons in the message;
    the CLI catches it and prints the message instead of a traceback. A
    :class:`ValueError` subclass so legacy ``except`` clauses keep
    working.
    """

    def __init__(self, fixed_reason: str | None, float_reason: str | None):
        self.fixed_reason = fixed_reason
        self.float_reason = float_reason
        super().__init__(
            "no feasible representation within the search cap: "
            f"fixed: {fixed_reason}; float: {float_reason}"
        )


class ThetaShapeError(ValueError):
    """A parameter batch (θ matrix) does not fit the target tape.

    θ-sweeps replay one compiled tape over an ``(n_theta, n_params)``
    matrix of parameter instantiations, one column per entry of the
    tape's deduplicated parameter table. Raised when the matrix has the
    wrong rank or width, contains non-finite or negative entries (the
    network polynomial's θ leaves are probabilities), or when a
    higher-level sweep assigns conflicting values to parameters that
    share one deduplicated table entry. A :class:`ValueError` subclass
    so legacy ``except`` clauses keep working.
    """


class ZeroEvidenceError(ZeroDivisionError):
    """The conditioning evidence has probability zero.

    Posterior distributions ``Pr(X | e)`` are undefined when
    ``Pr(e) = 0``; every layer that normalizes joints raises this typed
    error (a :class:`ZeroDivisionError` subclass, so legacy ``except``
    clauses keep working) with a message naming the query it broke. The
    CLI and ``bn`` front ends catch it and print the message instead of
    a traceback.
    """
