"""Library-wide typed exceptions.

Kept dependency-free so every layer (``bn``, ``ac``, ``engine``,
``core``, the CLI) can raise and catch the same types without import
cycles.
"""

from __future__ import annotations


class ZeroEvidenceError(ZeroDivisionError):
    """The conditioning evidence has probability zero.

    Posterior distributions ``Pr(X | e)`` are undefined when
    ``Pr(e) = 0``; every layer that normalizes joints raises this typed
    error (a :class:`ZeroDivisionError` subclass, so legacy ``except``
    clauses keep working) with a message naming the query it broke. The
    CLI and ``bn`` front ends catch it and print the message instead of
    a traceback.
    """
