"""Vectorized evidence → indicator-matrix encoding.

Every evaluator needs the same preprocessing step: turn an evidence
assignment (or a whole batch of them) into the 0/1 values of the λ
leaves. The seed implementations each re-derived it with an
O(batch × indicators) pure-Python double loop (``evaluate_batch``,
``VectorFixedPointEvaluator``) or a per-query dict
(``indicator_assignment``). :class:`EvidenceEncoder` does it once,
vectorized per *variable*: one ``np.fromiter`` gather of the observed
states plus one broadcast comparison yields the whole
``(num_indicators, batch)`` activity matrix.

Semantics match :meth:`ArithmeticCircuit.indicator_assignment`: an
indicator is active (1) when its variable is unobserved or observed in
its state, inactive (0) otherwise. ``strict=True`` rejects evidence on
variables without indicators (the scalar evaluators' behavior);
``strict=False`` ignores it (the seed batch evaluators' behavior).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: Sentinel for "variable unobserved" in the gathered state vectors.
_UNOBSERVED = -1
#: Sentinel for "observed in a state no indicator matches". Indicator
#: states are non-negative (Node validation), so any negative evidence
#: value means "matches nothing" — it must zero the variable's
#: indicators, not read as unobserved.
_INVALID = -2


class EvidenceEncoder:
    """Encode evidence batches against a fixed indicator table."""

    def __init__(self, indicator_keys: Sequence[tuple[str, int]]) -> None:
        self.keys = tuple((str(v), int(s)) for v, s in indicator_keys)
        self.num_indicators = len(self.keys)
        self.variables = tuple(sorted({v for v, _ in self.keys}))
        self._known = frozenset(self.variables)
        # Per variable: the rows of the indicator matrix it owns and the
        # state each row tests for.
        self._var_rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for variable in self.variables:
            rows = [i for i, (v, _) in enumerate(self.keys) if v == variable]
            states = [self.keys[i][1] for i in rows]
            self._var_rows[variable] = (
                np.asarray(rows, dtype=np.intp),
                np.asarray(states, dtype=np.int64),
            )

    @classmethod
    def for_tape(cls, tape) -> "EvidenceEncoder":
        return cls(tape.indicator_keys)

    @classmethod
    def for_circuit(cls, circuit) -> "EvidenceEncoder":
        from .tape import tape_for

        return cls.for_tape(tape_for(circuit))

    # ------------------------------------------------------------------
    def _check_known(
        self, evidence_batch: Sequence[Mapping[str, int]]
    ) -> None:
        unknown = {
            variable
            for evidence in evidence_batch
            for variable in evidence
            if variable not in self._known
        }
        if unknown:
            raise ValueError(
                f"evidence on variables with no indicators in this circuit: "
                f"{sorted(unknown)}"
            )

    def encode(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Boolean activity matrix of shape ``(num_indicators, batch)``.

        ``matrix[i, b]`` is True iff indicator ``keys[i]`` has value 1
        under ``evidence_batch[b]``.
        """
        if strict:
            self._check_known(evidence_batch)
        batch = len(evidence_batch)
        matrix = np.ones((self.num_indicators, batch), dtype=bool)
        if batch == 0:
            return matrix
        for variable, (rows, states) in self._var_rows.items():

            def gather(evidence):
                if variable not in evidence:
                    return _UNOBSERVED
                value = int(evidence[variable])
                return value if value >= 0 else _INVALID

            observed = np.fromiter(
                (gather(evidence) for evidence in evidence_batch),
                dtype=np.int64,
                count=batch,
            )
            if not (observed != _UNOBSERVED).any():
                continue  # variable unobserved everywhere: all ones
            matrix[rows] = (observed == _UNOBSERVED) | (
                observed == states[:, None]
            )
        return matrix

    def encode_one(
        self, evidence: Mapping[str, int] | None, strict: bool = True
    ) -> np.ndarray:
        """Boolean activity vector of shape ``(num_indicators,)``.

        Bit-identical to ``encode([evidence])[:, 0]`` but O(observed
        variables) instead of O(all variables) — this sits on the
        batch-size-1 serving hot path, where evidence is sparse.
        """
        if not evidence:
            return np.ones(self.num_indicators, dtype=bool)
        if strict:
            self._check_known([evidence])
        active = np.ones(self.num_indicators, dtype=bool)
        for variable, value in evidence.items():
            rows_states = self._var_rows.get(variable)
            if rows_states is None:
                continue
            rows, states = rows_states
            # Negative evidence matches no indicator (states are ≥ 0),
            # zeroing the variable's rows like the batch encoder.
            active[rows] = states == int(value)
        return active
