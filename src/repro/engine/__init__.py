"""The compiled-tape execution engine.

Compiles an :class:`~repro.ac.circuit.ArithmeticCircuit` once into a
flat :class:`Tape` IR (struct-of-arrays numpy buffers, a deduplicated
parameter table, an indicator table) and runs every sweep — exact
float64, batched float64, quantized fixed point, quantized floating
point, and the **backward (derivative) sweeps** behind all-marginals
queries — against that one artifact (forward sweeps replay the op
stream, backward sweeps replay the cached :class:`BackwardProgram`).
The :class:`EvidenceEncoder` turns evidence batches into indicator
matrices in one vectorized step, :class:`MarginalIndex` groups the
downward pass into per-variable posteriors, and
:class:`InferenceSession` fronts the whole thing with per-circuit
compiled caches for serving repeated queries.

Layering: ``engine`` sits above ``ac`` (circuit structure) and ``arith``
(exact number systems) and below ``core`` / ``experiments`` / ``hw``.
The legacy entry points (``repro.ac.evaluate``, ``repro.ac.fastpath``)
remain as thin wrappers; the frozen seed implementations live in
:mod:`repro.engine.reference` for differential testing.
"""

from ..errors import ThetaShapeError, ZeroEvidenceError
from .analysis import (
    ForwardSchedule,
    TapeAnalysis,
    analysis_for,
    schedule_segments,
    sweep_max_log2,
    tape_analysis_for,
)
from .encoder import EvidenceEncoder
from .executors import (
    FixedPointBatchExecutor,
    FixedWordKernel,
    FloatBatchExecutor,
    FloatWordKernel,
    QuantizedTapeEvaluator,
    execute_batch,
    execute_partials,
    execute_partials_batch,
    execute_real,
    execute_values,
)
from .marginals import MarginalIndex
from .memo import KeyedMemo
from .native import (
    NativeTapeKernels,
    native_available,
    native_kernels_for,
    native_unavailable_reason,
)
from .session import (
    BACKEND_CHOICES,
    InferenceSession,
    backend_for_format,
    requested_backend,
    session_for,
)
from .tape import (
    OP_COPY,
    OP_MAX,
    OP_PRODUCT,
    OP_SUM,
    BackwardProgram,
    Tape,
    compile_tape,
    tape_for,
)
from .theta import (
    align_theta,
    normalize_theta,
    theta_envelope_max_values,
    theta_param_matrix,
)

__all__ = [
    "BACKEND_CHOICES",
    "BackwardProgram",
    "EvidenceEncoder",
    "FixedPointBatchExecutor",
    "FixedWordKernel",
    "FloatBatchExecutor",
    "FloatWordKernel",
    "ForwardSchedule",
    "InferenceSession",
    "KeyedMemo",
    "MarginalIndex",
    "NativeTapeKernels",
    "OP_COPY",
    "OP_MAX",
    "OP_PRODUCT",
    "OP_SUM",
    "QuantizedTapeEvaluator",
    "Tape",
    "TapeAnalysis",
    "ThetaShapeError",
    "ZeroEvidenceError",
    "align_theta",
    "analysis_for",
    "backend_for_format",
    "compile_tape",
    "execute_batch",
    "execute_partials",
    "execute_partials_batch",
    "execute_real",
    "execute_values",
    "native_available",
    "native_kernels_for",
    "native_unavailable_reason",
    "normalize_theta",
    "requested_backend",
    "schedule_segments",
    "session_for",
    "sweep_max_log2",
    "tape_analysis_for",
    "tape_for",
    "theta_envelope_max_values",
    "theta_param_matrix",
]
