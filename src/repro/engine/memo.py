"""One keyed-memo utility for every compiled-artifact cache.

Everything the engine compiles — tapes, analyses, sessions, per-format
executors, quantized parameter tables, and (PR 6) native kernel
libraries — follows the same memoization discipline, previously
hand-copied at five sites:

* the cache dict is guarded by a lock, but **construction runs outside
  it** so concurrent first touches of *different* keys build in
  parallel;
* same-key racers converge on the first installed artifact (the loser's
  duplicate build is discarded) — double-checked locking;
* optionally, a **freshness predicate** lets a cached artifact be
  superseded when its key object mutated underneath it (circuits are
  append-only arenas, so a grown or re-rooted circuit invalidates its
  tape and session).

:class:`KeyedMemo` packages that discipline once. ``weak=True`` keys the
cache by object identity in a :class:`weakref.WeakKeyDictionary`, so
artifacts die with the objects they were compiled from and long-lived
services never leak.

A memo constructed with ``name="tape"`` additionally counts lookup
outcomes in the process metrics registry as
``problp_memo_cache_total{cache="tape",outcome="hit"|"miss"|"stale"}``
(one counter bump per lookup; anonymous memos pay nothing).
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Hashable, TypeVar

from ..obs.metrics import REGISTRY

V = TypeVar("V")

__all__ = ["KeyedMemo"]

_CACHE_TOTAL = REGISTRY.counter(
    "problp_memo_cache_total",
    "Engine keyed-memo lookups by cache and outcome "
    "(hit = fresh reuse, stale = superseded entry rebuilt, miss = built).",
    labelnames=("cache", "outcome"),
)


class KeyedMemo:
    """Thread-safe keyed memoization with build-outside-the-lock.

    ``get(key, build)`` returns the cached value for ``key`` or installs
    ``build()``'s result; ``fresh`` (when given) must return True for a
    cached value to be reused — a stale value is rebuilt and replaced.
    ``build`` must not return ``None`` (``None`` marks a cache miss).
    """

    def __init__(self, *, weak: bool = False, name: str | None = None) -> None:
        self._entries: Any = weakref.WeakKeyDictionary() if weak else {}
        self._lock = threading.Lock()
        if name is None:
            self._hit = self._stale = self._miss = None
        else:
            self._hit = _CACHE_TOTAL.labels(name, "hit")
            self._stale = _CACHE_TOTAL.labels(name, "stale")
            self._miss = _CACHE_TOTAL.labels(name, "miss")

    def get(
        self,
        key: Hashable,
        build: Callable[[], V],
        *,
        fresh: Callable[[V], bool] | None = None,
    ) -> V:
        with self._lock:
            value = self._entries.get(key)
            if value is not None and (fresh is None or fresh(value)):
                if self._hit is not None:
                    self._hit.inc()
                return value
            outcome = self._miss if value is None else self._stale
        if outcome is not None:
            outcome.inc()
        built = build()
        if built is None:
            raise ValueError("KeyedMemo build() must not return None")
        with self._lock:
            value = self._entries.get(key)
            if value is not None and (fresh is None or fresh(value)):
                return value
            self._entries[key] = built
            return built

    def peek(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` without building (or ``None``)."""
        with self._lock:
            return self._entries.get(key)

    def discard(self, key: Hashable) -> None:
        """Drop ``key``'s cached value if present."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __getitem__(self, key: Hashable) -> Any:
        with self._lock:
            return self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> tuple:
        with self._lock:
            return tuple(self._entries.keys())
