"""θ-sweeps: the deduplicated parameter table as a batch axis (PR 7).

Every batch axis in the engine used to be *evidence*; this module makes
the tape's deduplicated parameter table (``param_slots`` /
``param_values``) the other first-class batch axis. A **θ batch** is an
``(n_theta, n_params)`` float64 matrix — one row per parameter
instantiation, one column per entry of the tape's deduplicated table
(``len(tape.param_values)`` wide, *not* one per θ leaf: leaves sharing a
value share a column, exactly as they share a table entry).

:func:`normalize_theta` validates and canonicalizes a θ batch (typed
:class:`~repro.errors.ThetaShapeError` on rank/width/NaN/negative
violations; non-contiguous input is copied, never rejected);
:func:`align_theta` zips a θ batch against an evidence batch with
broadcast-one semantics; :func:`theta_param_matrix` transposes to the
lane-major ``(n_params, n_lanes)`` layout the batch executors seed their
parameter slots from.

:func:`theta_envelope_max_values` is the §3.1.4 bridge for raster
workloads: one max-value sweep seeded with the column-wise maxima of a
θ batch upper-bounds *every* row's sweep (SUM/PRODUCT/MAX are monotone
in the non-negative leaves), so a single §3 error-bound propagation can
certify thousands of per-cell parameterizations at once
(:mod:`repro.experiments.landscape`).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..errors import ThetaShapeError
from .analysis import NEG_INF, sweep_max_log2, tape_analysis_for
from .tape import Tape


def normalize_theta(tape: Tape, theta) -> np.ndarray:
    """Validate a θ batch against a tape; return it as (n_theta, n_params).

    The result is always a C-contiguous float64 ``(n_theta, n_params)``
    matrix with ``n_params == len(tape.param_values)`` (the deduplicated
    table width). A 1-D row vector is promoted to a single-row batch.
    Raises :class:`~repro.errors.ThetaShapeError` on any violation —
    wrong rank or width, non-finite entries, or negative entries (the
    network polynomial's θ leaves are probabilities). Non-contiguous or
    non-float64 input is copied, never rejected.
    """
    width = len(tape.param_values)
    try:
        matrix = np.asarray(theta, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise ThetaShapeError(
            f"theta batch must be a numeric matrix: {error}"
        ) from None
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ThetaShapeError(
            f"theta batch must be an (n_theta, {width}) matrix; got a "
            f"{matrix.ndim}-d array of shape {matrix.shape}"
        )
    if matrix.shape[1] != width:
        raise ThetaShapeError(
            f"theta batch width {matrix.shape[1]} does not match the "
            f"{width} deduplicated parameter(s) of {tape.describe()}"
        )
    if not np.isfinite(matrix).all():
        raise ThetaShapeError(
            "theta batch contains non-finite entries (NaN or inf)"
        )
    if matrix.size and float(matrix.min()) < 0.0:
        raise ThetaShapeError(
            "theta batch contains negative entries; network-polynomial "
            "parameters are probabilities"
        )
    return np.ascontiguousarray(matrix)


def align_theta(
    tape: Tape,
    theta,
    evidence_batch: Sequence[Mapping[str, int] | None],
) -> tuple[list[Mapping[str, int] | None], np.ndarray]:
    """Zip a θ batch with an evidence batch (broadcast-one semantics).

    Returns ``(evidence_rows, matrix)`` of equal length: matching
    lengths zip row-for-row; a single θ row replicates across the
    evidence batch; a single evidence row replicates across the θ batch.
    Anything else raises :class:`~repro.errors.ThetaShapeError`.
    """
    matrix = normalize_theta(tape, theta)
    rows = matrix.shape[0]
    count = len(evidence_batch)
    if rows == count:
        return list(evidence_batch), matrix
    if rows == 1 and count > 1:
        return list(evidence_batch), np.repeat(matrix, count, axis=0)
    if count == 1 and rows > 1:
        return list(evidence_batch) * rows, matrix
    raise ThetaShapeError(
        f"cannot zip {rows} theta row(s) with {count} evidence row(s); "
        f"lengths must match, or either side must have exactly one row"
    )


def theta_param_matrix(matrix: np.ndarray) -> np.ndarray:
    """Lane-major ``(n_params, n_lanes)`` layout for executor seeding."""
    return np.ascontiguousarray(matrix.T)


def theta_envelope_max_values(tape: Tape, theta) -> np.ndarray:
    """Per-slot linear-domain maxima valid for *every* row of a θ batch.

    One §3.1.4 max-value sweep seeded with the column-wise maxima of the
    θ batch. SUM, PRODUCT and MAX are all monotone non-decreasing in
    their non-negative inputs, so the envelope sweep dominates each
    row's individual sweep slot-for-slot — feeding the result to
    :meth:`repro.engine.analysis.TapeAnalysis.fixed_deltas` yields one
    §3 error bound certified for the whole batch (the raster-landscape
    certificate). Conversion to the linear domain follows the
    ``repro.core.extremes`` clamp rule so envelope bounds compose with
    the per-circuit bound machinery.
    """
    matrix = normalize_theta(tape, theta)
    if matrix.shape[0] == 0:
        raise ThetaShapeError("theta envelope needs at least one θ row")
    column_max = matrix.max(axis=0)
    param_log2 = np.asarray(
        [
            math.log2(value) if value > 0.0 else NEG_INF
            for value in column_max
        ],
        dtype=np.float64,
    )
    schedule = tape_analysis_for(tape).schedule
    max_log2 = sweep_max_log2(tape, schedule, param_log2)
    return np.asarray(
        [0.0 if value == NEG_INF else 2.0 ** max(value, -500.0) for value in max_log2]
    )
