"""Frozen seed implementations, kept as differential-test oracles.

These are verbatim copies of the pre-engine per-node sweeps from
``repro.ac.evaluate`` (the public functions there now delegate to the
tape executors). They exist so the differential test suite and the
engine benchmark can always compare the compiled-tape engine against the
original semantics — **do not optimize or "fix" these**; they are the
specification.

The scalar quantized oracle needs no copy: the generic per-node loop in
:func:`repro.ac.evaluate.evaluate_quantized` is itself retained as the
reference for all quantized executors.

PR 3 adds the frozen **analysis** walkers: the sequential op-by-op
sweeps for max/min-value extremes, forward (1±ε) factor counts,
fixed-point error-delta propagation, and the adjoint factor counts of
the backward program — exactly the pre-vectorization implementations of
``repro.core.extremes`` / ``repro.core.bounds`` (which now delegate to
:mod:`repro.engine.analysis`). They remain the specification the
vectorized schedules are differentially tested against.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from ..arith.fixedpoint import FixedPointBackend, FixedPointFormat
from ..arith.floatingpoint import FloatBackend, FloatFormat
from .tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, tape_for


def reference_evaluate_values(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> list[float]:
    """Seed float64 per-node sweep (pre-engine ``evaluate_values``)."""
    lambda_values = circuit.indicator_assignment(evidence)
    values: list[float] = [0.0] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_values[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = sum(values[c] for c in node.children)
        elif node.op is OpType.PRODUCT:
            result = 1.0
            for child in node.children:
                result *= values[child]
            values[index] = result
        else:  # MAX
            values[index] = max(values[c] for c in node.children)
    return values


def reference_evaluate_real(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Seed float64 root evaluation (pre-engine ``evaluate_real``)."""
    return reference_evaluate_values(circuit, evidence)[circuit.root]


def reference_partial_derivatives(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> tuple[list[float], list[float]]:
    """Frozen node-walking derivative sweep (the backward-pass oracle).

    The seed's downward pass from ``repro.ac.derivatives`` (the public
    functions there now replay the compiled tape), with one repair made
    *before* freezing: the product rule runs in O(k) per k-ary product
    via a left-folded prefix table and a suffix-folded adjoint seed,
    instead of the seed's O(k²) skip-one inner loop. Children are
    visited right-to-left so contribution order — and therefore every
    float64 bit, duplicates included — matches the tape's binary fold
    chains, which compute exactly these prefix/suffix products.
    """
    for node in circuit.nodes:
        if node.op is OpType.MAX:
            raise ValueError(
                "derivative passes are undefined for MAX nodes; "
                "use a sum-product circuit"
            )
    values = reference_evaluate_values(circuit, evidence)
    partials = [0.0] * len(circuit)
    partials[circuit.root] = 1.0
    # Reverse topological order: parents before children.
    for index in range(len(circuit) - 1, -1, -1):
        node = circuit.node(index)
        seed = partials[index]
        if not node.op.is_operator or seed == 0.0:
            continue
        if node.op is OpType.SUM:
            for child in node.children:
                partials[child] += seed
        else:  # PRODUCT
            children = node.children
            arity = len(children)
            prefix = [1.0] * arity  # prefix[i] = Π values[children[:i]]
            for position in range(1, arity):
                prefix[position] = (
                    prefix[position - 1] * values[children[position - 1]]
                )
            suffix_seed = seed  # seed · Π values[children[i+1:]]
            for position in range(arity - 1, -1, -1):
                partials[children[position]] += suffix_seed * prefix[position]
                suffix_seed *= values[children[position]]
    return values, partials


def _reference_leaf_log2(tape, values: list[float], zero_marker: float) -> None:
    """Frozen leaf seeding of the log₂ analysis walkers."""
    for slot in tape.indicator_slots:
        values[slot] = 0.0  # λ extreme non-zero value is 1
    for slot, value_id in zip(tape.param_slots, tape.param_ids):
        value = float(tape.param_values[value_id])
        values[slot] = math.log2(value) if value > 0.0 else zero_marker


def reference_max_log2_values(circuit: ArithmeticCircuit) -> list[float]:
    """Frozen sequential max-value analysis (pre-vectorization sweep)."""
    tape = tape_for(circuit)
    neg_inf = float("-inf")
    values = [neg_inf] * tape.num_slots
    _reference_leaf_log2(tape, values, neg_inf)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            left_value, right_value = values[left], values[right]
            peak = left_value if left_value >= right_value else right_value
            if peak == neg_inf:
                values[dest] = neg_inf
            else:
                values[dest] = peak + math.log2(
                    2.0 ** (left_value - peak) + 2.0 ** (right_value - peak)
                )
        elif opcode == OP_PRODUCT:
            values[dest] = values[left] + values[right]
        elif opcode == OP_MAX:
            values[dest] = max(values[left], values[right])
        else:  # OP_COPY
            values[dest] = values[left]
    return values[: tape.num_nodes]


def reference_min_log2_positive_values(
    circuit: ArithmeticCircuit,
) -> list[float]:
    """Frozen sequential min-value analysis (pre-vectorization sweep)."""
    tape = tape_for(circuit)
    pos_inf = float("inf")
    values = [pos_inf] * tape.num_slots
    _reference_leaf_log2(tape, values, pos_inf)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_PRODUCT:
            left_value, right_value = values[left], values[right]
            if left_value == pos_inf or right_value == pos_inf:
                values[dest] = pos_inf  # identically-zero factor
            else:
                values[dest] = left_value + right_value
        elif opcode == OP_COPY:
            values[dest] = values[left]
        else:  # SUM and MAX both take the smallest non-zero child
            values[dest] = min(values[left], values[right])
    return values[: tape.num_nodes]


def reference_forward_float_counts(circuit: ArithmeticCircuit) -> list[int]:
    """Frozen sequential (1±ε) factor-count sweep (§3.1.3, eqs. 10/12)."""
    tape = tape_for(circuit)
    counts = [0] * tape.num_slots
    for slot in tape.param_slots:
        counts[slot] = 1  # one conversion rounding per θ leaf
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            counts[dest] = max(counts[left], counts[right]) + 1
        elif opcode == OP_PRODUCT:
            counts[dest] = counts[left] + counts[right] + 1
        elif opcode == OP_MAX:
            counts[dest] = max(counts[left], counts[right])
        else:  # OP_COPY
            counts[dest] = counts[left]
    return counts[: tape.num_nodes]


def reference_fixed_deltas(
    circuit: ArithmeticCircuit,
    rounding_error: float,
    max_values: Sequence[float],
) -> list[float]:
    """Frozen sequential fixed-point error-delta propagation (eqs. 3/5).

    ``rounding_error`` is the per-operation constant
    ``ulp_fraction · 2^-F``; ``max_values`` the per-node linear-domain
    maxima from extreme analysis (binary circuits: slots == nodes).
    """
    tape = tape_for(circuit)
    deltas = [0.0] * tape.num_slots
    for slot in tape.param_slots:
        deltas[slot] = rounding_error
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            deltas[dest] = deltas[left] + deltas[right]
        elif opcode == OP_PRODUCT:
            deltas[dest] = (
                max_values[left] * deltas[right]
                + max_values[right] * deltas[left]
                + deltas[left] * deltas[right]
                + rounding_error
            )
        elif opcode == OP_MAX:
            deltas[dest] = max(deltas[left], deltas[right])
        else:  # OP_COPY
            deltas[dest] = deltas[left]
    return deltas[: tape.num_nodes]


def reference_adjoint_float_counts(circuit: ArithmeticCircuit) -> list[int]:
    """Frozen sequential adjoint factor-count sweep (the PR 2 walker).

    Replays the reversed op stream with the order-dependent
    ``max(a, b) + 1`` accumulate fold and the ``None`` short-circuit on
    the first contribution into an exactly-zero adjoint — the semantics
    the vectorized closed-form fold must reproduce exactly.
    """
    tape = tape_for(circuit)
    tape.require_differentiable()
    root = tape.require_root()
    value_counts = [0] * tape.num_slots
    for slot in tape.param_slots:
        value_counts[slot] = 1
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            value_counts[dest] = max(value_counts[left], value_counts[right]) + 1
        elif opcode == OP_PRODUCT:
            value_counts[dest] = value_counts[left] + value_counts[right] + 1
        else:  # OP_COPY (MAX rejected above)
            value_counts[dest] = value_counts[left]

    adjoints: list[int | None] = [None] * tape.num_slots
    adjoints[root] = 0

    def accumulate(slot: int, contribution: int) -> None:
        current = adjoints[slot]
        adjoints[slot] = (
            contribution
            if current is None
            else max(current, contribution) + 1
        )

    for opcode, dest, left, right in tape.backward.op_tuples:
        seed = adjoints[dest]
        if seed is None:
            continue  # outside the root cone: adjoint is exactly zero
        if opcode == OP_PRODUCT:
            accumulate(left, seed + value_counts[right] + 1)
            accumulate(right, seed + value_counts[left] + 1)
        elif opcode == OP_SUM:
            accumulate(left, seed)
            accumulate(right, seed)
        else:  # OP_COPY
            accumulate(left, seed)
    return [
        0 if count is None else count
        for count in adjoints[: tape.num_nodes]
    ]


def reference_evaluate_batch(
    circuit: ArithmeticCircuit,
    evidence_batch: Sequence[Mapping[str, int]],
) -> np.ndarray:
    """Seed batched float64 sweep (pre-engine ``evaluate_batch``).

    Note the O(batch × indicators) Python indicator loop and the n-ary
    ``np.sum`` reductions — exactly what the engine replaced.
    """
    batch_size = len(evidence_batch)
    if batch_size == 0:
        return np.empty(0)
    lambda_matrix: dict[tuple[str, int], np.ndarray] = {}
    for (variable, state) in circuit.indicators:
        column = np.ones(batch_size)
        for row, evidence in enumerate(evidence_batch):
            if variable in evidence and evidence[variable] != state:
                column[row] = 0.0
        lambda_matrix[(variable, state)] = column

    values = np.empty((len(circuit), batch_size))
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_matrix[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = values[list(node.children)].sum(axis=0)
        elif node.op is OpType.PRODUCT:
            values[index] = values[list(node.children)].prod(axis=0)
        else:  # MAX
            values[index] = values[list(node.children)].max(axis=0)
    return values[circuit.root].copy()


# ----------------------------------------------------------------------
# θ-sweep oracles (PR 7): frozen per-θ *sequential* replays
# ----------------------------------------------------------------------
# The θ-batched executors replay one tape over an (n_theta, n_params)
# matrix of parameter instantiations in a single struct-of-arrays sweep.
# These oracles pin their semantics: one scalar tape replay per θ row,
# parameter slots re-seeded from that row of the deduplicated table —
# the obvious sequential dispatch the vectorized sweep must reproduce
# bit-for-bit. Do not optimize or vectorize them.


def _reference_theta_slots(
    tape, row, lambda_values
) -> list[float]:
    """One frozen scalar float64 forward sweep with re-seeded θ slots."""
    slots = [0.0] * tape.num_slots
    for slot, value_id in zip(tape.param_slots, tape.param_ids):
        slots[slot] = float(row[value_id])
    for slot, key in zip(tape.indicator_slots, tape.indicator_keys):
        slots[slot] = lambda_values[key]
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            slots[dest] = slots[left] + slots[right]
        elif opcode == OP_PRODUCT:
            slots[dest] = slots[left] * slots[right]
        elif opcode == OP_MAX:
            left_value, right_value = slots[left], slots[right]
            slots[dest] = (
                left_value if left_value >= right_value else right_value
            )
        else:  # OP_COPY
            slots[dest] = slots[left]
    return slots


def reference_theta_forward(
    circuit: ArithmeticCircuit,
    theta: Sequence[Sequence[float]],
    evidence: Mapping[str, int] | None = None,
) -> np.ndarray:
    """Frozen per-θ sequential float64 root values, shape ``(n_theta,)``."""
    tape = tape_for(circuit)
    root = tape.require_root()
    lambda_values = circuit.indicator_assignment(evidence)
    return np.asarray(
        [
            _reference_theta_slots(tape, row, lambda_values)[root]
            for row in np.asarray(theta, dtype=np.float64)
        ]
    )


def reference_theta_partials(
    circuit: ArithmeticCircuit,
    theta: Sequence[Sequence[float]],
    evidence: Mapping[str, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Frozen per-θ sequential ``(values, partials)``, ``(num_nodes, n_theta)``.

    One scalar forward plus one scalar backward tape replay per θ row,
    exactly the adjoint accumulation order of the batched executor.
    """
    tape = tape_for(circuit)
    tape.require_differentiable()
    root = tape.require_root()
    lambda_values = circuit.indicator_assignment(evidence)
    value_columns: list[list[float]] = []
    partial_columns: list[list[float]] = []
    for row in np.asarray(theta, dtype=np.float64):
        slots = _reference_theta_slots(tape, row, lambda_values)
        partials = [0.0] * tape.num_slots
        partials[root] = 1.0
        for opcode, dest, left, right in tape.backward.op_tuples:
            seed = partials[dest]
            if opcode == OP_SUM:
                partials[left] += seed
                partials[right] += seed
            elif opcode == OP_PRODUCT:
                partials[left] += seed * slots[right]
                partials[right] += seed * slots[left]
            else:  # OP_COPY
                partials[left] += seed
        value_columns.append(slots[: tape.num_nodes])
        partial_columns.append(partials[: tape.num_nodes])
    if not value_columns:
        empty = np.empty((tape.num_nodes, 0))
        return empty, empty.copy()
    return np.asarray(value_columns).T, np.asarray(partial_columns).T


def reference_theta_fixed_words(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat,
    theta: Sequence[Sequence[float]],
    evidence: Mapping[str, int] | None = None,
) -> np.ndarray:
    """Frozen per-θ big-int fixed-point root mantissas, ``(n_theta,)``.

    Each θ row is quantized through the scalar
    :class:`~repro.arith.fixedpoint.FixedPointBackend` and swept with
    one rounded operation per two-input operator — the golden reference
    for the vectorized per-row quantized parameter tables.
    """
    backend = FixedPointBackend(fmt)
    tape = tape_for(circuit)
    root = tape.require_root()
    lambda_values = circuit.indicator_assignment(evidence)
    one, zero = backend.one(), backend.zero()
    results: list[int] = []
    for row in np.asarray(theta, dtype=np.float64):
        slots: list = [None] * tape.num_slots
        for slot, value_id in zip(tape.param_slots, tape.param_ids):
            slots[slot] = backend.from_real(float(row[value_id]))
        for slot, key in zip(tape.indicator_slots, tape.indicator_keys):
            slots[slot] = one if lambda_values[key] else zero
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                slots[dest] = backend.add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[dest] = backend.multiply(slots[left], slots[right])
            elif opcode == OP_MAX:
                slots[dest] = backend.maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
        results.append(int(slots[root].mantissa))
    return np.asarray(results, dtype=np.int64)


def reference_theta_float_words(
    circuit: ArithmeticCircuit,
    fmt: FloatFormat,
    theta: Sequence[Sequence[float]],
    evidence: Mapping[str, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Frozen per-θ emulated-float root words, two ``(n_theta,)`` arrays.

    Each θ row is quantized through the scalar
    :class:`~repro.arith.floatingpoint.FloatBackend` and swept with one
    rounded operation per two-input operator; the root's ``(mantissa,
    exponent)`` pairs are the golden reference for the vectorized (and
    native) per-row quantized float parameter tables. Exact zero is the
    ``(0, 0)`` pair, exactly as the word kernels encode it.
    """
    backend = FloatBackend(fmt)
    tape = tape_for(circuit)
    root = tape.require_root()
    lambda_values = circuit.indicator_assignment(evidence)
    one, zero = backend.one(), backend.zero()
    mantissas: list[int] = []
    exponents: list[int] = []
    for row in np.asarray(theta, dtype=np.float64):
        slots: list = [None] * tape.num_slots
        for slot, value_id in zip(tape.param_slots, tape.param_ids):
            slots[slot] = backend.from_real(float(row[value_id]))
        for slot, key in zip(tape.indicator_slots, tape.indicator_keys):
            slots[slot] = one if lambda_values[key] else zero
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                slots[dest] = backend.add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[dest] = backend.multiply(slots[left], slots[right])
            elif opcode == OP_MAX:
                slots[dest] = backend.maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
        mantissas.append(int(slots[root].mantissa))
        exponents.append(int(slots[root].exponent))
    return (
        np.asarray(mantissas, dtype=np.int64),
        np.asarray(exponents, dtype=np.int64),
    )


def reference_theta_fixed_partial_words(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat,
    theta: Sequence[Sequence[float]],
    evidence: Mapping[str, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Frozen per-θ big-int fixed ``(value, adjoint)`` mantissa matrices.

    Shapes ``(num_nodes, n_theta)``; the backward sweep runs in the same
    emulated arithmetic (one rounded multiply plus one checked add per
    adjoint contribution), mirroring the batched executor's order.
    """
    backend = FixedPointBackend(fmt)
    tape = tape_for(circuit)
    tape.require_differentiable()
    root = tape.require_root()
    lambda_values = circuit.indicator_assignment(evidence)
    one, zero = backend.one(), backend.zero()
    value_columns: list[list[int]] = []
    adjoint_columns: list[list[int]] = []
    for row in np.asarray(theta, dtype=np.float64):
        slots: list = [None] * tape.num_slots
        for slot, value_id in zip(tape.param_slots, tape.param_ids):
            slots[slot] = backend.from_real(float(row[value_id]))
        for slot, key in zip(tape.indicator_slots, tape.indicator_keys):
            slots[slot] = one if lambda_values[key] else zero
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                slots[dest] = backend.add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[dest] = backend.multiply(slots[left], slots[right])
            elif opcode == OP_MAX:
                slots[dest] = backend.maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
        adjoints: list = [zero] * tape.num_slots
        adjoints[root] = one
        for opcode, dest, left, right in tape.backward.op_tuples:
            seed = adjoints[dest]
            if opcode == OP_SUM:
                adjoints[left] = backend.add(adjoints[left], seed)
                adjoints[right] = backend.add(adjoints[right], seed)
            elif opcode == OP_PRODUCT:
                adjoints[left] = backend.add(
                    adjoints[left], backend.multiply(seed, slots[right])
                )
                adjoints[right] = backend.add(
                    adjoints[right], backend.multiply(seed, slots[left])
                )
            else:  # OP_COPY
                adjoints[left] = backend.add(adjoints[left], seed)
        value_columns.append(
            [int(v.mantissa) for v in slots[: tape.num_nodes]]
        )
        adjoint_columns.append(
            [int(v.mantissa) for v in adjoints[: tape.num_nodes]]
        )
    if not value_columns:
        empty = np.empty((tape.num_nodes, 0), dtype=np.int64)
        return empty, empty.copy()
    return (
        np.asarray(value_columns, dtype=np.int64).T,
        np.asarray(adjoint_columns, dtype=np.int64).T,
    )
