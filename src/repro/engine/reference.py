"""Frozen seed implementations, kept as differential-test oracles.

These are verbatim copies of the pre-engine per-node sweeps from
``repro.ac.evaluate`` (the public functions there now delegate to the
tape executors). They exist so the differential test suite and the
engine benchmark can always compare the compiled-tape engine against the
original semantics — **do not optimize or "fix" these**; they are the
specification.

The scalar quantized oracle needs no copy: the generic per-node loop in
:func:`repro.ac.evaluate.evaluate_quantized` is itself retained as the
reference for all quantized executors.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType


def reference_evaluate_values(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> list[float]:
    """Seed float64 per-node sweep (pre-engine ``evaluate_values``)."""
    lambda_values = circuit.indicator_assignment(evidence)
    values: list[float] = [0.0] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_values[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = sum(values[c] for c in node.children)
        elif node.op is OpType.PRODUCT:
            result = 1.0
            for child in node.children:
                result *= values[child]
            values[index] = result
        else:  # MAX
            values[index] = max(values[c] for c in node.children)
    return values


def reference_evaluate_real(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> float:
    """Seed float64 root evaluation (pre-engine ``evaluate_real``)."""
    return reference_evaluate_values(circuit, evidence)[circuit.root]


def reference_partial_derivatives(
    circuit: ArithmeticCircuit,
    evidence: Mapping[str, int] | None = None,
) -> tuple[list[float], list[float]]:
    """Frozen node-walking derivative sweep (the backward-pass oracle).

    The seed's downward pass from ``repro.ac.derivatives`` (the public
    functions there now replay the compiled tape), with one repair made
    *before* freezing: the product rule runs in O(k) per k-ary product
    via a left-folded prefix table and a suffix-folded adjoint seed,
    instead of the seed's O(k²) skip-one inner loop. Children are
    visited right-to-left so contribution order — and therefore every
    float64 bit, duplicates included — matches the tape's binary fold
    chains, which compute exactly these prefix/suffix products.
    """
    for node in circuit.nodes:
        if node.op is OpType.MAX:
            raise ValueError(
                "derivative passes are undefined for MAX nodes; "
                "use a sum-product circuit"
            )
    values = reference_evaluate_values(circuit, evidence)
    partials = [0.0] * len(circuit)
    partials[circuit.root] = 1.0
    # Reverse topological order: parents before children.
    for index in range(len(circuit) - 1, -1, -1):
        node = circuit.node(index)
        seed = partials[index]
        if not node.op.is_operator or seed == 0.0:
            continue
        if node.op is OpType.SUM:
            for child in node.children:
                partials[child] += seed
        else:  # PRODUCT
            children = node.children
            arity = len(children)
            prefix = [1.0] * arity  # prefix[i] = Π values[children[:i]]
            for position in range(1, arity):
                prefix[position] = (
                    prefix[position - 1] * values[children[position - 1]]
                )
            suffix_seed = seed  # seed · Π values[children[i+1:]]
            for position in range(arity - 1, -1, -1):
                partials[children[position]] += suffix_seed * prefix[position]
                suffix_seed *= values[children[position]]
    return values, partials


def reference_evaluate_batch(
    circuit: ArithmeticCircuit,
    evidence_batch: Sequence[Mapping[str, int]],
) -> np.ndarray:
    """Seed batched float64 sweep (pre-engine ``evaluate_batch``).

    Note the O(batch × indicators) Python indicator loop and the n-ary
    ``np.sum`` reductions — exactly what the engine replaced.
    """
    batch_size = len(evidence_batch)
    if batch_size == 0:
        return np.empty(0)
    lambda_matrix: dict[tuple[str, int], np.ndarray] = {}
    for (variable, state) in circuit.indicators:
        column = np.ones(batch_size)
        for row, evidence in enumerate(evidence_batch):
            if variable in evidence and evidence[variable] != state:
                column[row] = 0.0
        lambda_matrix[(variable, state)] = column

    values = np.empty((len(circuit), batch_size))
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = node.value
        elif node.op is OpType.INDICATOR:
            values[index] = lambda_matrix[(node.variable, node.state)]
        elif node.op is OpType.SUM:
            values[index] = values[list(node.children)].sum(axis=0)
        elif node.op is OpType.PRODUCT:
            values[index] = values[list(node.children)].prod(axis=0)
        else:  # MAX
            values[index] = values[list(node.children)].max(axis=0)
    return values[circuit.root].copy()
