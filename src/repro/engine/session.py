"""The serving front door: one compiled tape, many queries.

:class:`InferenceSession` owns everything repeat queries against one
circuit need — the compiled :class:`~repro.engine.tape.Tape`, the shared
:class:`~repro.engine.encoder.EvidenceEncoder`, and per-format executor
caches — so callers (``ProbLP``, the CLI, the experiment harnesses, a
future network service) pay compilation once and evaluation cost per
query only.

Format dispatch is automatic: quantized batches run on the exact
vectorized executors whenever the format qualifies (fixed point with
``2·(I+F) ≤ 62``, float with ``M ≤ 30, E ≤ 32``) and fall back to the
scalar big-int tape evaluator — bit-identical either way — for wider
formats.
"""

from __future__ import annotations

import weakref
from typing import Any, Mapping, Sequence

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointBackend, FixedPointFormat
from ..arith.floatingpoint import FloatBackend, FloatFormat
from .encoder import EvidenceEncoder
from .executors import (
    FixedPointBatchExecutor,
    FloatBatchExecutor,
    QuantizedTapeEvaluator,
    execute_batch,
    execute_real,
    execute_values,
)
from .tape import Tape, tape_for

AnyFormat = FixedPointFormat | FloatFormat


def backend_for_format(fmt: AnyFormat):
    """The scalar big-int backend matching a format."""
    if isinstance(fmt, FixedPointFormat):
        return FixedPointBackend(fmt)
    if isinstance(fmt, FloatFormat):
        return FloatBackend(fmt)
    raise TypeError(f"unsupported format type {type(fmt).__name__}")


class InferenceSession:
    """Compiled-tape inference service for one circuit.

    Example
    -------
    >>> from repro.bn.networks import sprinkler_network
    >>> from repro.compile import compile_network
    >>> from repro.ac.transform import binarize
    >>> from repro.engine import InferenceSession
    >>> from repro.arith import FixedPointFormat
    >>> binary = binarize(compile_network(sprinkler_network()).circuit).circuit
    >>> session = InferenceSession(binary)
    >>> batch = [{"Rain": 1}, {"Rain": 0}, {}]
    >>> exact = session.evaluate_batch(batch)
    >>> quantized = session.evaluate_quantized_batch(
    ...     FixedPointFormat(1, 12), batch
    ... )
    >>> (abs(exact - quantized) < 2**-8).all()
    True
    """

    def __init__(self, circuit: ArithmeticCircuit) -> None:
        self.circuit = circuit
        self.tape: Tape = tape_for(circuit)
        self.encoder = EvidenceEncoder.for_tape(self.tape)
        # Built on first quantized call: quantized evaluation demands a
        # binary circuit, but exact float64 serving works on any tape.
        self._scalar_quantized_cache: QuantizedTapeEvaluator | None = None
        self._fixed_batch: dict[FixedPointFormat, FixedPointBatchExecutor] = {}
        self._float_batch: dict[FloatFormat, FloatBatchExecutor] = {}
        self._backends: dict[AnyFormat, Any] = {}

    @property
    def _scalar_quantized(self) -> QuantizedTapeEvaluator:
        if self._scalar_quantized_cache is None:
            self._scalar_quantized_cache = QuantizedTapeEvaluator(
                self.tape, self.encoder
            )
        return self._scalar_quantized_cache

    # -- exact float64 --------------------------------------------------
    def evaluate(self, evidence: Mapping[str, int] | None = None) -> float:
        """Exact float64 root value for one evidence assignment."""
        return execute_real(self.tape, evidence, self.encoder)

    def evaluate_values(
        self, evidence: Mapping[str, int] | None = None
    ) -> list[float]:
        """Exact float64 value of every circuit node."""
        return execute_values(self.tape, evidence, self.encoder)

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Exact float64 root values for a whole evidence batch.

        ``strict=True`` rejects evidence on unknown variables instead of
        ignoring it (the seed batch behavior, kept as the default).
        """
        return execute_batch(
            self.tape, evidence_batch, self.encoder, strict=strict
        )

    # -- quantized ------------------------------------------------------
    def supports_vectorized(self, fmt: AnyFormat) -> bool:
        """True when the format runs on an exact vectorized executor."""
        if isinstance(fmt, (FixedPointFormat, FloatFormat)):
            return fmt.fits_int64_products
        return False

    def _vector_executor(self, fmt: AnyFormat):
        if isinstance(fmt, FixedPointFormat):
            executor = self._fixed_batch.get(fmt)
            if executor is None:
                executor = self._fixed_batch[fmt] = FixedPointBatchExecutor(
                    self.tape, fmt, self.encoder
                )
            return executor
        executor = self._float_batch.get(fmt)
        if executor is None:
            executor = self._float_batch[fmt] = FloatBatchExecutor(
                self.tape, fmt, self.encoder
            )
        return executor

    def evaluate_quantized(
        self,
        fmt_or_backend: AnyFormat | Any,
        evidence: Mapping[str, int] | None = None,
    ) -> float:
        """Quantized root value for one evidence assignment.

        Accepts a format (a matching backend is built) or any
        :class:`~repro.ac.evaluate.QuantizedBackend` instance.
        """
        if isinstance(fmt_or_backend, (FixedPointFormat, FloatFormat)):
            backend = self._backend(fmt_or_backend)
        else:
            backend = fmt_or_backend
        return self._scalar_quantized.evaluate(backend, evidence)

    def evaluate_quantized_batch(
        self,
        fmt: AnyFormat,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Quantized root values for a whole batch, as float64.

        Dispatches to the exact vectorized executor when the format
        qualifies, otherwise runs the scalar big-int tape evaluator per
        instance — results are bit-identical either way, including the
        batch-lenient evidence handling (``strict=False`` default).
        """
        if self.supports_vectorized(fmt):
            return self._vector_executor(fmt).evaluate_batch(
                evidence_batch, strict=strict
            )
        backend = self._backend(fmt)
        return np.asarray(
            [
                self._scalar_quantized.evaluate(
                    backend, evidence, strict=strict
                )
                for evidence in evidence_batch
            ]
        )

    def _backend(self, fmt: AnyFormat):
        backend = self._backends.get(fmt)
        if backend is None:
            backend = self._backends[fmt] = backend_for_format(fmt)
        return backend

    def __repr__(self) -> str:
        return f"InferenceSession({self.tape.describe()})"


#: Per-circuit session cache (sessions are cheap, but callers like the
#: experiment harnesses construct them in loops). Weak so a session dies
#: with its circuit.
_SESSION_CACHE: "weakref.WeakKeyDictionary[ArithmeticCircuit, InferenceSession]" = (
    weakref.WeakKeyDictionary()
)


def session_for(circuit: ArithmeticCircuit) -> InferenceSession:
    """A cached :class:`InferenceSession` for the circuit.

    Reuses the session while the underlying tape stays fresh; a circuit
    that grew or was re-rooted gets a new session (same staleness rule
    as :func:`repro.engine.tape.tape_for`).
    """
    session = _SESSION_CACHE.get(circuit)
    current_root = circuit.root if circuit.has_root else None
    if (
        session is None
        or session.tape.num_nodes != len(circuit)
        or session.tape.root != current_root
    ):
        session = InferenceSession(circuit)
        _SESSION_CACHE[circuit] = session
    return session
