"""The serving front door: one compiled tape, many queries.

:class:`InferenceSession` owns everything repeat queries against one
circuit need — the compiled :class:`~repro.engine.tape.Tape`, the shared
:class:`~repro.engine.encoder.EvidenceEncoder`, and per-format executor
caches — so callers (``ProbLP``, the CLI, the experiment harnesses, a
future network service) pay compilation once and evaluation cost per
query only.

Format dispatch is automatic: quantized batches run on the exact
vectorized executors whenever the format qualifies (fixed point with
``2·(I+F) ≤ 62``, float with ``M ≤ 30, E ≤ 32``) and fall back to the
scalar big-int tape evaluator — bit-identical either way — for wider
formats.

Backend dispatch is a runtime policy: ``backend="auto"`` (the default,
overridable via ``PROBLP_BACKEND``) compiles the tape's fused C kernels
(:mod:`repro.engine.native`) at first use and serves float64 and
int64-fixed-point sweeps from them, falling back to the numpy executors
whenever the native toolchain is unavailable; ``backend="numpy"`` pins
the numpy executors; ``backend="native"`` insists but still degrades
gracefully (the fallback reason is kept on
:attr:`InferenceSession.backend_fallback_reason`). Results are
bit-identical across backends — the numpy executors stay the
differential oracle.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointBackend, FixedPointFormat
from ..arith.floatingpoint import FloatBackend, FloatFormat
from .analysis import TapeAnalysis, tape_analysis_for
from .encoder import EvidenceEncoder
from .executors import (
    FixedPointBatchExecutor,
    FloatBatchExecutor,
    QuantizedTapeEvaluator,
    execute_batch,
    execute_partials,
    execute_partials_batch,
    execute_real,
    execute_values,
)
from ..obs.metrics import REGISTRY
from .marginals import MarginalIndex, describe_evidence
from .memo import KeyedMemo
from .tape import Tape, tape_for
from .theta import align_theta, normalize_theta, theta_param_matrix

AnyFormat = FixedPointFormat | FloatFormat

#: Valid backend policies: "auto" prefers native and falls back,
#: "native" insists (still degrading gracefully), "numpy" pins numpy.
BACKEND_CHOICES = ("auto", "native", "numpy")

_DISPATCH_TOTAL = REGISTRY.counter(
    "problp_backend_dispatch_total",
    "Inference dispatches by effective execution backend.",
    labelnames=("backend",),
)
_FALLBACK_TOTAL = REGISTRY.counter(
    "problp_backend_fallback_total",
    "Dispatches that left native despite it being requested, by short "
    "reason code (toolchain, wide_format, legacy_module).",
    labelnames=("reason",),
)


def requested_backend(backend: str | None = None) -> str:
    """Resolve and validate a backend request (arg > env > "auto")."""
    requested = backend or os.environ.get("PROBLP_BACKEND") or "auto"
    if requested not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {requested!r}; expected one of "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    return requested


class _NativeState:
    """Resolved native-kernel state: the kernels or the fallback reason."""

    __slots__ = ("kernels", "reason")

    def __init__(self, kernels: Any, reason: str | None) -> None:
        self.kernels = kernels
        self.reason = reason


def backend_for_format(fmt: AnyFormat):
    """The scalar big-int backend matching a format."""
    if isinstance(fmt, FixedPointFormat):
        return FixedPointBackend(fmt)
    if isinstance(fmt, FloatFormat):
        return FloatBackend(fmt)
    raise TypeError(f"unsupported format type {type(fmt).__name__}")


class InferenceSession:
    """Compiled-tape inference service for one circuit.

    Example
    -------
    >>> from repro.bn.networks import sprinkler_network
    >>> from repro.compile import compile_network
    >>> from repro.ac.transform import binarize
    >>> from repro.engine import InferenceSession
    >>> from repro.arith import FixedPointFormat
    >>> binary = binarize(compile_network(sprinkler_network()).circuit).circuit
    >>> session = InferenceSession(binary)
    >>> batch = [{"Rain": 1}, {"Rain": 0}, {}]
    >>> exact = session.evaluate_batch(batch)
    >>> quantized = session.evaluate_quantized_batch(
    ...     FixedPointFormat(1, 12), batch
    ... )
    >>> (abs(exact - quantized) < 2**-8).all()
    True
    """

    def __init__(
        self, circuit: ArithmeticCircuit, backend: str | None = None
    ) -> None:
        self.circuit = circuit
        self.tape: Tape = tape_for(circuit)
        self.encoder = EvidenceEncoder.for_tape(self.tape)
        # Backend policy: explicit argument beats $PROBLP_BACKEND beats
        # "auto". Native kernels compile lazily on first dispatch.
        self._requested_backend = requested_backend(backend)
        # One session serves many threads (the serve layer runs batch
        # flushes and optimize/hw work on a thread pool): every compiled
        # artifact lives in a KeyedMemo, so each executor/backend is
        # built exactly once and execution itself stays lock-free —
        # executors keep no per-call mutable state. The scalar quantized
        # evaluator (built on first quantized call: quantized evaluation
        # demands a binary circuit, exact float64 serving works on any
        # tape) and the marginal index share the singleton memo.
        self._fixed_batch: KeyedMemo = KeyedMemo()
        self._float_batch: KeyedMemo = KeyedMemo()
        self._backends: KeyedMemo = KeyedMemo()
        self._singletons: KeyedMemo = KeyedMemo()
        # The most recent dispatch that had to leave native despite it
        # being requested records why here (wide formats only, now that
        # the kernels read parameter tables from runtime pointers);
        # surfaced via backend_fallback_reason.
        self._last_fallback_reason: str | None = None
        # Fallback reasons already surfaced by fallback_note(): callers
        # that log the note (the CLI) do so once per (session, reason);
        # repeats are only counted in problp_backend_fallback_total.
        self._noted_fallbacks: set[str] = set()

    @property
    def _scalar_quantized(self) -> QuantizedTapeEvaluator:
        return self._singletons.get(
            "scalar_quantized",
            lambda: QuantizedTapeEvaluator(self.tape, self.encoder),
        )

    # -- backend policy --------------------------------------------------
    def _resolve_native(self) -> _NativeState:
        try:
            from .native import native_kernels_for

            return _NativeState(
                native_kernels_for(self.tape, self.encoder), None
            )
        except Exception as error:  # toolchain/codegen failure → numpy
            return _NativeState(None, f"{type(error).__name__}: {error}")

    @property
    def _native(self):
        """The tape's native kernels, or ``None`` on the numpy backend."""
        if self._requested_backend == "numpy":
            return None
        return self._singletons.get("native_state", self._resolve_native).kernels

    @property
    def backend(self) -> str:
        """The *effective* execution backend: ``"native"`` or ``"numpy"``."""
        return "native" if self._native is not None else "numpy"

    @property
    def backend_requested(self) -> str:
        """The requested backend policy (``auto``/``native``/``numpy``)."""
        return self._requested_backend

    @property
    def backend_fallback_reason(self) -> str | None:
        """Why the latest dispatch left native despite it being requested.

        ``None`` while native serves every request (or the numpy backend
        was pinned). A toolchain/codegen failure keeps its own reason;
        otherwise the most recent dispatch that genuinely could not run
        native (a format too wide for the int64 word kernels) records
        why, and the next fully-native dispatch clears it again.
        """
        if self._requested_backend == "numpy":
            return None
        state = self._singletons.get("native_state", self._resolve_native)
        if state.kernels is None:
            return state.reason
        return self._last_fallback_reason

    def _route(self, fmt: AnyFormat | None = None, theta: bool = False):
        """``(native_kernels | None, reason | None, code | None)``.

        Pure lookup — no state is mutated, so the serve layer can use it
        (via :meth:`dispatch_plan`) to *predict* routing. The dispatch
        methods record the returned reason on
        :attr:`backend_fallback_reason` themselves. ``code`` is the
        short label for ``problp_backend_fallback_total{reason=…}`` —
        the prose ``reason`` would explode label cardinality.
        """
        if self._requested_backend == "numpy":
            return None, None, None
        state = self._singletons.get("native_state", self._resolve_native)
        if state.kernels is None:
            return None, state.reason, "toolchain"
        if fmt is not None and not state.kernels.supports_format(fmt):
            return None, (
                f"{fmt.describe()} is outside the native kernels' int64 "
                f"word range; served by the numpy/big-int executors"
            ), "wide_format"
        if theta and not state.kernels.supports_theta():
            return None, (
                "this native module predates runtime-parameter kernels; "
                "theta batches run on the numpy executors"
            ), "legacy_module"
        return state.kernels, None, None

    def _dispatch(
        self, fmt: AnyFormat | None = None, theta: bool = False
    ):
        """Route one call, recording the fallback reason (or clearing it)."""
        native, reason, code = self._route(fmt=fmt, theta=theta)
        self._last_fallback_reason = reason
        _DISPATCH_TOTAL.labels("native" if native is not None
                               else "numpy").inc()
        if code is not None:
            _FALLBACK_TOTAL.labels(code).inc()
        return native

    def dispatch_plan(
        self, fmt: AnyFormat | None = None, theta: bool = False
    ) -> tuple[str, str | None]:
        """``(backend, fallback_reason)`` a call with these traits gets.

        Side-effect free — the serve layer reports per-request backends
        from this without racing concurrent dispatches.
        """
        native, reason, _ = self._route(fmt=fmt, theta=theta)
        return ("native" if native is not None else "numpy"), reason

    def fallback_note(self) -> str | None:
        """The current fallback reason, once per (session, reason).

        The first call after a dispatch falls back returns the prose
        reason so callers (the CLI) can print one ``# fallback: …``
        note; subsequent calls for the same reason return ``None`` —
        repeats are visible only as
        ``problp_backend_fallback_total{reason=…}`` increments.
        """
        reason = self.backend_fallback_reason
        if reason is None or reason in self._noted_fallbacks:
            return None
        self._noted_fallbacks.add(reason)
        return reason

    @property
    def analysis(self) -> TapeAnalysis:
        """The cached precision-independent analysis of this tape.

        One vectorized :class:`~repro.engine.analysis.TapeAnalysis` per
        compiled tape, shared with :func:`repro.engine.analysis_for` —
        the optimizer's extreme values and factor counts are computed
        once per circuit and reused by every format search, exactly
        like the tape is reused by every evaluation.
        """
        return tape_analysis_for(self.tape)

    # -- exact float64 --------------------------------------------------
    def evaluate(self, evidence: Mapping[str, int] | None = None) -> float:
        """Exact float64 root value for one evidence assignment."""
        native = self._dispatch()
        if native is not None:
            return native.evaluate(evidence)
        return execute_real(self.tape, evidence, self.encoder)

    def evaluate_values(
        self, evidence: Mapping[str, int] | None = None
    ) -> list[float]:
        """Exact float64 value of every circuit node."""
        native = self._dispatch()
        if native is not None:
            return native.evaluate_values(evidence)
        return execute_values(self.tape, evidence, self.encoder)

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        theta: Any | None = None,
    ) -> np.ndarray:
        """Exact float64 root values for a whole evidence batch.

        ``strict=True`` rejects evidence on unknown variables instead of
        ignoring it (the seed batch behavior, kept as the default).
        ``theta`` adds the parameter batch axis: an
        ``(n_theta, n_params)`` matrix zipped row-for-row against the
        evidence batch (either side may have one row, which broadcasts);
        lane ``i`` then evaluates under ``theta[i]`` instead of the
        tape's own parameter table. θ batches ride the native kernels'
        runtime-parameter entry points under ``auto``/``native`` (see
        :attr:`backend_fallback_reason`).
        """
        if theta is not None:
            evidence_batch, matrix = align_theta(
                self.tape, theta, evidence_batch
            )
            param_matrix = theta_param_matrix(matrix)
            native = self._dispatch(theta=True)
            if native is not None:
                return native.evaluate_batch(
                    evidence_batch, strict=strict, param_matrix=param_matrix
                )
            return execute_batch(
                self.tape,
                evidence_batch,
                self.encoder,
                strict=strict,
                param_matrix=param_matrix,
            )
        native = self._dispatch()
        if native is not None:
            return native.evaluate_batch(evidence_batch, strict=strict)
        return execute_batch(
            self.tape, evidence_batch, self.encoder, strict=strict
        )

    def evaluate_theta_batch(
        self,
        theta: Any,
        evidence: Mapping[str, int] | None = None,
        strict: bool = True,
    ) -> np.ndarray:
        """Exact float64 root values over a θ batch, one shared evidence.

        Replays the tape once over an ``(n_theta, n_params)`` matrix of
        parameter instantiations — one struct-of-arrays sweep, one lane
        per θ row — and returns the ``(n_theta,)`` root values.
        Bit-identical to evaluating each row sequentially
        (:func:`repro.engine.reference.reference_theta_forward`), on
        either backend.
        """
        matrix = normalize_theta(self.tape, theta)
        evidence_batch = [evidence or {}] * matrix.shape[0]
        param_matrix = theta_param_matrix(matrix)
        native = self._dispatch(theta=True)
        if native is not None:
            return native.evaluate_batch(
                evidence_batch, strict=strict, param_matrix=param_matrix
            )
        return execute_batch(
            self.tape,
            evidence_batch,
            self.encoder,
            strict=strict,
            param_matrix=param_matrix,
        )

    # -- marginals (backward sweep) -------------------------------------
    @property
    def marginal_index(self) -> MarginalIndex:
        """Per-variable indicator-slot grouping (compiled lazily)."""
        return self._singletons.get(
            "marginal_index", lambda: MarginalIndex(self.tape)
        )

    def partials(
        self, evidence: Mapping[str, int] | None = None
    ) -> tuple[list[float], list[float]]:
        """Exact float64 ``(values, partials)`` per node (one up+down pass)."""
        native = self._dispatch()
        if native is not None:
            return native.partials(evidence)
        return execute_partials(self.tape, evidence, self.encoder)

    def partials_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        theta: Any | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``(values, partials)`` matrices, ``(num_nodes, batch)``.

        ``theta`` zips an ``(n_theta, n_params)`` parameter batch against
        the evidence batch (broadcast-one semantics, like
        :meth:`evaluate_batch`): both the forward values and the
        backward partials are computed per lane under that lane's θ row.
        """
        if theta is not None:
            evidence_batch, matrix = align_theta(
                self.tape, theta, evidence_batch
            )
            param_matrix = theta_param_matrix(matrix)
            native = self._dispatch(theta=True)
            if native is not None:
                return native.partials_batch(
                    evidence_batch, strict=strict, param_matrix=param_matrix
                )
            return execute_partials_batch(
                self.tape,
                evidence_batch,
                self.encoder,
                strict=strict,
                param_matrix=param_matrix,
            )
        native = self._dispatch()
        if native is not None:
            return native.partials_batch(evidence_batch, strict=strict)
        return execute_partials_batch(
            self.tape, evidence_batch, self.encoder, strict=strict
        )

    def marginals(
        self,
        evidence: Mapping[str, int] | None = None,
        joint: bool = False,
    ) -> dict[str, np.ndarray]:
        """All marginals of one query: ``Pr(X | e)`` for every variable.

        One upward plus one downward tape replay yields the joint of
        every state of every variable (the paper's footnote-2 query
        style); normalization turns them into posteriors. ``joint=True``
        returns the unnormalized ``Pr(x, e \\ X)`` arrays instead.
        Raises :class:`~repro.errors.ZeroEvidenceError` when the
        evidence has probability zero (posteriors only).
        """
        native = self._dispatch()
        if native is not None:
            # Skip the list round-trip: the marginal index consumes the
            # kernel's 1-D partials vector directly.
            _, partials = native.partials_arrays(evidence)
        else:
            _, partials = self.partials(evidence)
        index = self.marginal_index
        if joint:
            return index.joints(partials)
        return index.posteriors(
            partials, context=f" under evidence {describe_evidence(evidence)}"
        )

    def marginals_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        joint: bool = False,
        theta: Any | None = None,
    ) -> dict[str, np.ndarray]:
        """All marginals of a whole evidence batch at batch throughput.

        Returns ``{variable: (card, batch) array}`` — every posterior of
        every instance from exactly two batched tape replays, instead of
        one circuit walk per query. ``theta`` zips a parameter batch
        against the evidence batch; a zero-probability evidence lane
        raises :class:`~repro.errors.ZeroEvidenceError` naming exactly
        the offending lane(s), θ-batched or not.
        """
        _, partials = self.partials_batch(
            evidence_batch, strict=strict, theta=theta
        )
        index = self.marginal_index
        if joint:
            return index.joints(partials)
        return index.posteriors(partials)

    def quantized_marginals_batch(
        self,
        fmt: AnyFormat,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        joint: bool = False,
        theta: Any | None = None,
    ) -> dict[str, np.ndarray]:
        """All marginals of a batch, computed in quantized arithmetic.

        Both sweeps — upward values and downward partials — run with the
        format's §3.1 operator semantics (one rounding per two-input
        operator), on the exact vectorized executors whenever the format
        qualifies and the bit-identical scalar big-int path otherwise;
        the final normalizing division happens in float64, mirroring the
        paper's "followed with a division". ``joint=True`` skips the
        division and returns the quantized joints. ``theta`` zips an
        ``(n_theta, n_params)`` parameter batch against the evidence
        batch — each lane quantizes *its own* parameter table (per-row
        quantized tables on the vectorized fixed-point path, per-row
        scalar re-quantization otherwise).
        """
        quantized_partials = self._quantized_partials_matrix(
            fmt, evidence_batch, strict, theta=theta
        )
        index = self.marginal_index
        if joint:
            return index.joints(quantized_partials)
        return index.posteriors(
            quantized_partials, context=f" in {fmt.describe()}"
        )

    def _quantized_partials_matrix(
        self,
        fmt: AnyFormat,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool,
        theta: Any | None = None,
    ) -> np.ndarray:
        """Float64 matrix of quantized partials, ``(num_nodes, batch)``."""
        if theta is not None:
            evidence_batch, matrix = align_theta(
                self.tape, theta, evidence_batch
            )
            native = self._dispatch(fmt=fmt, theta=True)
            if native is not None:
                _, partials = native.quantized_partials_batch(
                    fmt,
                    evidence_batch,
                    strict=strict,
                    param_words=native.encode_theta(fmt, matrix),
                )
                return partials
            if self.supports_vectorized(fmt):
                executor = self._vector_executor(fmt)
                _, partials = executor.partials_batch(
                    evidence_batch,
                    strict=strict,
                    param_words=executor.encode_theta(matrix),
                )
                return partials
            backend = self._backend(fmt)
            evaluator = self._scalar_quantized
            columns = []
            for evidence, row in zip(evidence_batch, matrix):
                _, adjoints = evaluator.partials(
                    backend, evidence, strict=strict, param_values=row
                )
                columns.append(
                    [backend.to_real(value) for value in adjoints]
                )
            if not columns:
                return np.empty((self.tape.num_nodes, 0))
            return np.asarray(columns).T
        native = self._dispatch(fmt=fmt)
        if native is not None:
            _, partials = native.quantized_partials_batch(
                fmt, evidence_batch, strict=strict
            )
            return partials
        if self.supports_vectorized(fmt):
            _, partials = self._vector_executor(fmt).partials_batch(
                evidence_batch, strict=strict
            )
            return partials
        backend = self._backend(fmt)
        evaluator = self._scalar_quantized
        columns = []
        for evidence in evidence_batch:
            _, adjoints = evaluator.partials(backend, evidence, strict=strict)
            columns.append([backend.to_real(value) for value in adjoints])
        if not columns:
            return np.empty((self.tape.num_nodes, 0))
        return np.asarray(columns).T

    # -- quantized ------------------------------------------------------
    def supports_vectorized(self, fmt: AnyFormat) -> bool:
        """True when the format runs on an exact vectorized executor."""
        if isinstance(fmt, (FixedPointFormat, FloatFormat)):
            return fmt.fits_int64_products
        return False

    def _vector_executor(self, fmt: AnyFormat):
        # KeyedMemo builds outside its lock (construction encodes the
        # whole parameter table) so first touches of different formats
        # build in parallel; same-format racers converge on one install.
        if isinstance(fmt, FixedPointFormat):
            return self._fixed_batch.get(
                fmt,
                lambda: FixedPointBatchExecutor(self.tape, fmt, self.encoder),
            )
        return self._float_batch.get(
            fmt, lambda: FloatBatchExecutor(self.tape, fmt, self.encoder)
        )

    def evaluate_quantized(
        self,
        fmt_or_backend: AnyFormat | Any,
        evidence: Mapping[str, int] | None = None,
    ) -> float:
        """Quantized root value for one evidence assignment.

        Accepts a format (a matching backend is built) or any
        :class:`~repro.ac.evaluate.QuantizedBackend` instance.
        """
        if isinstance(fmt_or_backend, (FixedPointFormat, FloatFormat)):
            native = self._dispatch(fmt=fmt_or_backend)
            if native is not None:
                return native.evaluate_quantized(fmt_or_backend, evidence)
            backend = self._backend(fmt_or_backend)
        else:
            backend = fmt_or_backend
        return self._scalar_quantized.evaluate(backend, evidence)

    def evaluate_quantized_batch(
        self,
        fmt: AnyFormat,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        theta: Any | None = None,
    ) -> np.ndarray:
        """Quantized root values for a whole batch, as float64.

        Dispatches to the exact vectorized executor when the format
        qualifies, otherwise runs the scalar big-int tape evaluator per
        instance — results are bit-identical either way, including the
        batch-lenient evidence handling (``strict=False`` default).
        ``theta`` zips an ``(n_theta, n_params)`` parameter batch
        against the evidence batch; each lane evaluates under its own
        per-row quantized parameter table, bit-identical to the frozen
        per-θ oracles
        (:func:`repro.engine.reference.reference_theta_fixed_words`,
        :func:`repro.engine.reference.reference_theta_float_words`).
        """
        if theta is not None:
            evidence_batch, matrix = align_theta(
                self.tape, theta, evidence_batch
            )
            native = self._dispatch(fmt=fmt, theta=True)
            if native is not None:
                return native.evaluate_quantized_batch(
                    fmt,
                    evidence_batch,
                    strict=strict,
                    param_words=native.encode_theta(fmt, matrix),
                )
            if self.supports_vectorized(fmt):
                executor = self._vector_executor(fmt)
                return executor.evaluate_batch(
                    evidence_batch,
                    strict=strict,
                    param_words=executor.encode_theta(matrix),
                )
            backend = self._backend(fmt)
            evaluator = self._scalar_quantized
            return np.asarray(
                [
                    evaluator.evaluate(
                        backend, evidence, strict=strict, param_values=row
                    )
                    for evidence, row in zip(evidence_batch, matrix)
                ]
            )
        native = self._dispatch(fmt=fmt)
        if native is not None:
            return native.evaluate_quantized_batch(
                fmt, evidence_batch, strict=strict
            )
        if self.supports_vectorized(fmt):
            return self._vector_executor(fmt).evaluate_batch(
                evidence_batch, strict=strict
            )
        backend = self._backend(fmt)
        return np.asarray(
            [
                self._scalar_quantized.evaluate(
                    backend, evidence, strict=strict
                )
                for evidence in evidence_batch
            ]
        )

    def _backend(self, fmt: AnyFormat):
        return self._backends.get(fmt, lambda: backend_for_format(fmt))

    def __repr__(self) -> str:
        return f"InferenceSession({self.tape.describe()})"


#: Per-circuit session cache (sessions are cheap, but callers like the
#: experiment harnesses construct them in loops). Weak so a session dies
#: with its circuit.
_SESSION_MEMO: KeyedMemo = KeyedMemo(weak=True, name="session")


def _fresh_session(
    session: InferenceSession | None, circuit: ArithmeticCircuit
) -> bool:
    from .tape import _fresh_tape

    # One staleness rule for tape and session caches: a session is
    # fresh exactly when its tape still matches the circuit.
    return session is not None and _fresh_tape(session.tape, circuit)


def session_for(circuit: ArithmeticCircuit) -> InferenceSession:
    """A cached :class:`InferenceSession` for the circuit (thread-safe).

    Reuses the session while the underlying tape stays fresh; a circuit
    that grew or was re-rooted gets a new session (same staleness rule
    as :func:`repro.engine.tape.tape_for`). Backed by
    :class:`~repro.engine.memo.KeyedMemo`: construction runs outside the
    cache lock so concurrent first touches of different circuits proceed
    in parallel; same-circuit racers converge on the first installed
    session.
    """
    return _SESSION_MEMO.get(
        circuit,
        lambda: InferenceSession(circuit),
        fresh=lambda session: _fresh_session(session, circuit),
    )
