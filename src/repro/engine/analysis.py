"""Tape-native, vectorized precision-independent analysis (PR 3).

Every precision-independent analysis the optimizer needs — max/min-value
extremes (§3.1.4), forward (1±ε) factor counts (§3.1.3) and the adjoint
factor counts of the backward sweep — is a replay of the compiled
:class:`~repro.engine.tape.Tape`. Before this module each replay was a
pure-Python loop over ``tape.op_tuples`` with per-op dispatch; here the
op stream is scheduled **once** into dependency levels and every sweep
runs as a handful of numpy gather/compute/scatter calls per
``(level, opcode)`` segment instead of one Python iteration per op.

Scheduling is sound because the tape writes every slot exactly once and
each op only reads slots written at strictly lower levels, so all ops of
one level are independent: executing them element-wise under fancy
indexing computes bit-for-bit the same per-op arithmetic as the
sequential loop.

The **adjoint** (backward) sweep is harder: adjoint accumulation folds
contributions into a slot in reversed-stream order, and the float-count
adder ``max(a, b) + 1`` is order-*dependent*. The fold has a closed
form, though: for contributions ``c_1 .. c_k`` arriving in order, the
folded count is ``max(c_1 + k - 1, max_{i>=2}(c_i + k - i + 1))`` — the
position weights are structural, so the whole backward analysis
precompiles into flat contribution arrays (sorted by adjoint level,
slot, and stream position) that replay with ``np.maximum.reduceat``.

:class:`TapeAnalysis` bundles the schedules and lazily-computed results
and is cached per tape (:func:`tape_analysis_for`) and per circuit
(:func:`analysis_for`); :class:`~repro.engine.session.InferenceSession`
exposes it as ``session.analysis`` next to the tape itself. The frozen
sequential implementations live in :mod:`repro.engine.reference` as the
differential-test oracles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from .memo import KeyedMemo
from .tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, Tape, tape_for

#: log2 marker for "identically zero" in max analysis.
NEG_INF = float("-inf")
#: log2 marker for "never non-zero" in min analysis.
POS_INF = float("inf")


def _slot_levels(tape: Tape) -> list[int]:
    """Dependency level of every slot (leaves are level 0)."""
    levels = [0] * tape.num_slots
    for _opcode, dest, left, right in tape.op_tuples:
        left_level = levels[left]
        right_level = levels[right]
        levels[dest] = (
            left_level if left_level >= right_level else right_level
        ) + 1
    return levels


def schedule_segments(
    opcodes: np.ndarray,
    dests: np.ndarray,
    lefts: np.ndarray,
    rights: np.ndarray,
    op_levels: np.ndarray,
) -> tuple[tuple[int, np.ndarray, np.ndarray, np.ndarray], ...]:
    """Group an op stream into level-major ``(level, opcode)`` segments.

    Shared by :class:`ForwardSchedule` (tape analysis sweeps) and the
    hardware layer's :class:`~repro.hw.program.DatapathProgram` (the
    vectorized stream simulator) — one scheduling implementation for
    every batched replay of a single-assignment op stream. Ops inside a
    segment are mutually independent (each op reads only strictly lower
    levels), so replaying segments in order is equivalent to the
    sequential stream.
    """
    n_ops = len(opcodes)
    if n_ops == 0:
        return ()
    order = np.lexsort((np.arange(n_ops), opcodes, op_levels))
    opcodes = opcodes[order]
    dests = dests[order]
    lefts = lefts[order]
    rights = rights[order]
    keys_change = np.flatnonzero(
        (np.diff(op_levels[order]) != 0) | (np.diff(opcodes) != 0)
    )
    starts = np.concatenate(([0], keys_change + 1))
    ends = np.concatenate((keys_change + 1, [n_ops]))
    return tuple(
        (
            int(opcodes[start]),
            dests[start:end],
            lefts[start:end],
            rights[start:end],
        )
        for start, end in zip(starts, ends)
    )


@dataclass(frozen=True, eq=False)
class ForwardSchedule:
    """The forward op stream grouped into ``(level, opcode)`` segments.

    Each segment holds pre-gathered dest/left/right slot arrays whose ops
    are mutually independent; replaying segments in order is equivalent
    to the sequential stream. :attr:`levels` — the per-slot dependency
    level the grouping derives from — is exposed because it is exactly
    the stage assignment a fully pipelined hardware mapping needs:
    :mod:`repro.hw.pipeline` consumes it as the one source of
    levelization truth shared by analysis, netlist and Verilog.
    """

    #: ``(opcode, dests, lefts, rights)`` per segment, level-major.
    segments: tuple[tuple[int, np.ndarray, np.ndarray, np.ndarray], ...]
    #: ``(num_slots,)`` int32 dependency level of every slot (leaves 0).
    levels: np.ndarray

    @classmethod
    def of(cls, tape: Tape) -> "ForwardSchedule":
        levels = np.asarray(_slot_levels(tape), dtype=np.int32)
        if tape.num_operations == 0:
            return cls(segments=(), levels=levels)
        return cls(
            segments=schedule_segments(
                tape.opcodes,
                tape.dests,
                tape.lefts,
                tape.rights,
                levels[tape.dests],
            ),
            levels=levels,
        )


@dataclass(frozen=True, eq=False)
class AdjointSchedule:
    """The backward sweep compiled to flat contribution arrays.

    Walking the cached :class:`~repro.engine.tape.BackwardProgram`, each
    op whose destination is inside the root cone contributes to its
    children's adjoints. Contributions are stored sorted by (adjoint
    level of the receiving slot, slot, stream position) so each adjoint
    level replays as one gather plus one ``np.maximum.reduceat``; the
    order-dependent ``max(a, b) + 1`` fold is folded into the
    precomputed per-contribution ``bonus`` (sibling factor count plus
    closed-form position weight, see module docstring).
    """

    num_slots: int
    #: Slots with a non-zero-seeded adjoint (the root cone), bool mask.
    reachable: np.ndarray
    #: Receiving slots, one entry per adjoint level group, concatenated.
    slots: np.ndarray
    #: Start of each slot's contribution run inside the contrib arrays.
    slot_starts: np.ndarray
    #: ``[start, end)`` index pairs into :attr:`slots` per adjoint level.
    group_bounds: tuple[tuple[int, int], ...]
    #: Per contribution: the contributing op's destination slot.
    contrib_dests: np.ndarray
    #: Per contribution: sibling count + multiplier/fold-weight bonus.
    contrib_bonus: np.ndarray

    @classmethod
    def of(cls, tape: Tape, forward_counts: np.ndarray) -> "AdjointSchedule":
        root = tape.require_root()
        num_slots = tape.num_slots
        backward = tape.backward.op_tuples

        reachable = np.zeros(num_slots, dtype=bool)
        reachable[root] = True
        alevel = [0] * num_slots
        reachable_list = reachable.tolist()
        for opcode, dest, left, right in backward:
            if not reachable_list[dest]:
                continue
            reachable_list[left] = True
            child_level = alevel[dest] + 1
            if child_level > alevel[left]:
                alevel[left] = child_level
            if opcode != OP_COPY:
                reachable_list[right] = True
                if child_level > alevel[right]:
                    alevel[right] = child_level
        reachable = np.asarray(reachable_list, dtype=bool)
        alevel_arr = np.asarray(alevel, dtype=np.int64)

        opcodes = tape.backward.opcodes
        dests = tape.backward.dests
        lefts = tape.backward.lefts
        rights = tape.backward.rights
        n_ops = len(opcodes)
        live = reachable[dests]
        positions = np.arange(n_ops, dtype=np.int64)
        is_product = opcodes == OP_PRODUCT
        # A product contribution is one rounded multiply with the
        # sibling's forward value: seed + counts[sibling] + 1. Sums and
        # copies forward the seed unrounded.
        left_valid = live
        right_valid = live & (opcodes != OP_COPY)
        targets = np.concatenate((lefts[left_valid], rights[right_valid]))
        sources = np.concatenate((dests[left_valid], dests[right_valid]))
        mul_bonus = np.concatenate(
            (
                np.where(
                    is_product[left_valid],
                    forward_counts[rights[left_valid]] + 1,
                    0,
                ),
                np.where(
                    is_product[right_valid],
                    forward_counts[lefts[right_valid]] + 1,
                    0,
                ),
            )
        )
        stream_pos = np.concatenate(
            (2 * positions[left_valid], 2 * positions[right_valid] + 1)
        )

        order = np.lexsort((stream_pos, targets, alevel_arr[targets]))
        targets = targets[order]
        sources = sources[order]
        mul_bonus = mul_bonus[order]

        if len(targets) == 0:
            return cls(
                num_slots=num_slots,
                reachable=reachable,
                slots=np.empty(0, dtype=np.int64),
                slot_starts=np.empty(0, dtype=np.int64),
                group_bounds=(),
                contrib_dests=sources,
                contrib_bonus=mul_bonus,
            )

        slot_change = np.flatnonzero(np.diff(targets) != 0)
        slot_starts = np.concatenate(([0], slot_change + 1))
        slots = targets[slot_starts]
        run_lengths = np.diff(np.concatenate((slot_starts, [len(targets)])))
        # Closed-form fold weights: contribution i (1-based) of a run of
        # length k carries weight k - i + 1, except the first (which
        # seeds the adjoint without an adder rounding) carrying k - 1.
        index_in_run = (
            np.arange(len(targets), dtype=np.int64)
            - np.repeat(slot_starts, run_lengths)
        )
        run_k = np.repeat(run_lengths, run_lengths)
        weights = np.where(index_in_run == 0, run_k - 1, run_k - index_in_run)

        slot_levels = alevel_arr[slots]
        level_change = np.flatnonzero(np.diff(slot_levels) != 0)
        group_starts = np.concatenate(([0], level_change + 1))
        group_ends = np.concatenate((level_change + 1, [len(slots)]))
        return cls(
            num_slots=num_slots,
            reachable=reachable,
            slots=slots,
            slot_starts=slot_starts,
            group_bounds=tuple(zip(group_starts, group_ends)),
            contrib_dests=sources,
            contrib_bonus=mul_bonus + weights,
        )

    def replay(self) -> np.ndarray:
        """Adjoint (1±ε) factor counts of every slot (root cone only)."""
        adjoints = np.zeros(self.num_slots, dtype=np.int64)
        total = len(self.contrib_dests)
        for start, end in self.group_bounds:
            contrib_start = self.slot_starts[start]
            contrib_end = (
                self.slot_starts[end] if end < len(self.slots) else total
            )
            values = (
                adjoints[self.contrib_dests[contrib_start:contrib_end]]
                + self.contrib_bonus[contrib_start:contrib_end]
            )
            adjoints[self.slots[start:end]] = np.maximum.reduceat(
                values, self.slot_starts[start:end] - contrib_start
            )
        return adjoints


def _param_log2(tape: Tape, zero_marker: float) -> np.ndarray:
    """log₂ of the deduplicated θ table (``zero_marker`` for zeros).

    Computed with :func:`math.log2` per unique value so the leaf logs are
    bit-identical to the sequential reference walkers (numpy's SIMD
    ``log2`` can differ from libm in the last ulp).
    """
    return np.asarray(
        [
            math.log2(value) if value > 0.0 else zero_marker
            for value in tape.param_values
        ],
        dtype=np.float64,
    )


def sweep_max_log2(
    tape: Tape, schedule: ForwardSchedule, param_log2: np.ndarray
) -> np.ndarray:
    """Scheduled max-value sweep with caller-provided θ log₂ seeds.

    The §3.1.4 sweep body shared by :attr:`TapeAnalysis.max_log2` (which
    seeds with the tape's own parameter table) and the θ-sweep envelope
    analysis (:func:`repro.engine.theta.theta_envelope_max_values`,
    which seeds with column-wise maxima over a whole θ batch).
    ``param_log2`` has one entry per deduplicated parameter value
    (``NEG_INF`` marks identically-zero θ).
    """
    values = np.full(tape.num_slots, NEG_INF)
    values[tape.indicator_slots] = 0.0
    values[tape.param_slots] = param_log2[tape.param_ids]
    # The errstate guard covers -inf − -inf = nan inside identically
    # zero sums; the nan rows are re-marked -inf below.
    with np.errstate(invalid="ignore"):
        for opcode, dests, lefts, rights in schedule.segments:
            left = values[lefts]
            right = values[rights]
            if opcode == OP_SUM:
                peak = np.maximum(left, right)
                result = peak + np.log2(
                    np.exp2(left - peak) + np.exp2(right - peak)
                )
                values[dests] = np.where(peak == NEG_INF, NEG_INF, result)
            elif opcode == OP_PRODUCT:
                # -inf + inf never occurs (no +inf in the max domain).
                values[dests] = left + right
            elif opcode == OP_MAX:
                values[dests] = np.maximum(left, right)
            else:  # OP_COPY
                values[dests] = left
    return values


class TapeAnalysis:
    """Vectorized precision-independent analysis of one compiled tape.

    Results are numpy arrays over *slots* (scratch slots included);
    circuit-node views are the first ``tape.num_nodes`` entries. All
    sweeps are lazy and cached — construct once per tape (see
    :func:`tape_analysis_for`) and reuse across every query, exactly
    like the tape itself.
    """

    def __init__(self, tape: Tape) -> None:
        self.tape = tape
        self.schedule = ForwardSchedule.of(tape)
        self._max_log2: np.ndarray | None = None
        self._min_log2: np.ndarray | None = None
        self._forward_counts: np.ndarray | None = None
        self._adjoint_schedule: AdjointSchedule | None = None
        self._adjoint_counts: np.ndarray | None = None

    # -- extremes -------------------------------------------------------
    @property
    def max_log2(self) -> np.ndarray:
        """Per-slot log₂ of the maximum attainable value (λ=1 sweep)."""
        if self._max_log2 is None:
            self._max_log2 = self._sweep_max()
        return self._max_log2

    @property
    def min_log2(self) -> np.ndarray:
        """Per-slot log₂ lower bound of the minimum non-zero value."""
        if self._min_log2 is None:
            self._min_log2 = self._sweep_min()
        return self._min_log2

    def _sweep_max(self) -> np.ndarray:
        return sweep_max_log2(
            self.tape, self.schedule, _param_log2(self.tape, NEG_INF)
        )

    def _sweep_min(self) -> np.ndarray:
        tape = self.tape
        values = np.full(tape.num_slots, POS_INF)
        values[tape.indicator_slots] = 0.0
        values[tape.param_slots] = _param_log2(tape, POS_INF)[tape.param_ids]
        for opcode, dests, lefts, rights in self.schedule.segments:
            left = values[lefts]
            right = values[rights]
            if opcode == OP_PRODUCT:
                # The min domain holds no -inf, so an identically-zero
                # (+inf) factor poisons the product through plain
                # addition, exactly like the sequential walker.
                values[dests] = left + right
            elif opcode == OP_COPY:
                values[dests] = left
            else:  # SUM and MAX both take the smallest non-zero child
                values[dests] = np.minimum(left, right)
        return values

    # -- float factor counts -------------------------------------------
    @property
    def forward_counts(self) -> np.ndarray:
        """Per-slot (1±ε) factor counts of the upward pass (int64)."""
        if self._forward_counts is None:
            self._forward_counts = self._sweep_forward_counts()
        return self._forward_counts

    def _sweep_forward_counts(self) -> np.ndarray:
        tape = self.tape
        counts = np.zeros(tape.num_slots, dtype=np.int64)
        counts[tape.param_slots] = 1  # one conversion rounding per θ
        for opcode, dests, lefts, rights in self.schedule.segments:
            left = counts[lefts]
            right = counts[rights]
            if opcode == OP_SUM:
                counts[dests] = np.maximum(left, right) + 1
            elif opcode == OP_PRODUCT:
                counts[dests] = left + right + 1
            elif opcode == OP_MAX:
                counts[dests] = np.maximum(left, right)
            else:  # OP_COPY
                counts[dests] = left
        return counts

    @property
    def adjoint_counts(self) -> np.ndarray:
        """Per-slot (1±ε) factor counts of the downward (adjoint) sweep.

        Counts of slots outside the root cone are 0, mirroring the
        sequential walker's ``None``-to-0 projection. Raises for MAX
        (MPE) tapes and rootless tapes like the backward executors do.
        """
        if self._adjoint_counts is None:
            self.tape.require_differentiable()
            if self._adjoint_schedule is None:
                self._adjoint_schedule = AdjointSchedule.of(
                    self.tape, self.forward_counts
                )
            self._adjoint_counts = self._adjoint_schedule.replay()
        return self._adjoint_counts

    @property
    def indicator_adjoint_counts(self) -> dict[tuple[str, int], int]:
        """Adjoint counts projected onto the λ leaves (joint marginals)."""
        counts = self.adjoint_counts
        return {
            key: int(counts[slot])
            for slot, key in zip(
                self.tape.indicator_slots, self.tape.indicator_keys
            )
        }

    # -- fixed-point absolute-error deltas ------------------------------
    def fixed_deltas(
        self,
        rounding_errors: np.ndarray,
        max_values: np.ndarray,
    ) -> np.ndarray:
        """Fixed-point error deltas for a whole batch of precisions.

        ``rounding_errors`` is the per-format per-operation rounding
        constant (``ulp_fraction · 2^-F``, shape ``(n_formats,)``);
        ``max_values`` the per-slot linear-domain max-value clamp from
        extreme analysis. Returns ``(num_slots, n_formats)`` deltas —
        one §3.1.3 propagation per format, all from a single scheduled
        replay. Element-wise arithmetic matches the sequential walker's
        association order, so each column is bit-identical to a scalar
        propagation at that format.
        """
        tape = self.tape
        rounding_errors = np.atleast_1d(
            np.asarray(rounding_errors, dtype=np.float64)
        )
        deltas = np.zeros((tape.num_slots, len(rounding_errors)))
        deltas[tape.param_slots] = rounding_errors
        for opcode, dests, lefts, rights in self.schedule.segments:
            left = deltas[lefts]
            right = deltas[rights]
            if opcode == OP_SUM:
                deltas[dests] = left + right
            elif opcode == OP_PRODUCT:
                # In-place accumulation in the sequential walker's
                # association order, so every column stays bit-identical.
                result = max_values[lefts, None] * right
                result += max_values[rights, None] * left
                result += left * right
                result += rounding_errors
                deltas[dests] = result
            elif opcode == OP_MAX:
                deltas[dests] = np.maximum(left, right)
            else:  # OP_COPY
                deltas[dests] = left
        return deltas


#: Per-tape analysis cache; an analysis dies with its tape (and the tape
#: with its circuit), so long-lived services never leak. Construction
#: runs outside the memo's lock so different tapes analyze in parallel.
_ANALYSIS_MEMO: KeyedMemo = KeyedMemo(weak=True, name="analysis")


def tape_analysis_for(tape: Tape) -> TapeAnalysis:
    """The cached :class:`TapeAnalysis` of a compiled tape (thread-safe)."""
    return _ANALYSIS_MEMO.get(tape, lambda: TapeAnalysis(tape))


def analysis_for(circuit: ArithmeticCircuit) -> TapeAnalysis:
    """The cached analysis of a circuit's tape (recompiles when stale)."""
    return tape_analysis_for(tape_for(circuit))
