"""Tape executors: every sweep variant, one shared IR.

All executors replay the same :class:`~repro.engine.tape.Tape`:

* :func:`execute_values` / :func:`execute_real` — scalar float64, the
  reference semantics (bit-identical to the seed per-node loop);
* :func:`execute_batch` — numpy float64 over a whole evidence batch, one
  vector op per tape op (bit-identical to the scalar pass, since both
  fold left-to-right in IEEE doubles);
* :class:`QuantizedTapeEvaluator` — scalar sweep with any
  :class:`~repro.ac.evaluate.QuantizedBackend` (the tape-backed
  replacement for the legacy ``fastpath.Program`` inner loop);
* :class:`FixedPointBatchExecutor` — exact int64-mantissa fixed point
  over a batch, bit-identical to
  :class:`~repro.arith.fixedpoint.FixedPointBackend`;
* :class:`FloatBatchExecutor` — exact (mantissa, exponent) float
  emulation over a batch, bit-identical to
  :class:`~repro.arith.floatingpoint.FloatBackend`. This is new: the
  seed had no vectorized float path, so float sweeps paid the scalar
  big-int loop for every instance.

Vectorized exactness contracts: the fixed executor needs products to fit
in int64 (``2·(I+F) ≤ 62``); the float executor needs mantissa products
to fit (``2·(M+1) ≤ 62``) and bounded exponents (``E ≤ 32``). Wider
formats must use the scalar big-int paths — constructors raise
``ValueError`` so callers can fall back.
"""

from __future__ import annotations

import weakref
from typing import Any, Mapping, Sequence

import numpy as np

from ..arith.fixedpoint import (
    FixedPointBackend,
    FixedPointFormat,
    FixedPointOverflowError,
)
from ..arith.floatingpoint import (
    FloatBackend,
    FloatFormat,
    FloatOverflowError,
    FloatUnderflowError,
)
from ..arith.rounding import RoundingMode
from .encoder import EvidenceEncoder
from .tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, Tape


# ----------------------------------------------------------------------
# Real (float64) execution
# ----------------------------------------------------------------------
def execute_values(
    tape: Tape,
    evidence: Mapping[str, int] | None = None,
    encoder: EvidenceEncoder | None = None,
) -> list[float]:
    """Float64 value of every circuit node under the given evidence.

    Returns ``num_nodes`` values aligned with circuit node indices
    (scratch slots are dropped).
    """
    if encoder is None:
        encoder = EvidenceEncoder.for_tape(tape)
    active = encoder.encode_one(evidence, strict=True)
    slots = [0.0] * tape.num_slots
    for slot, value_id in zip(tape.param_slots, tape.param_ids):
        slots[slot] = float(tape.param_values[value_id])
    for position, slot in enumerate(tape.indicator_slots):
        slots[slot] = 1.0 if active[position] else 0.0
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            slots[dest] = slots[left] + slots[right]
        elif opcode == OP_PRODUCT:
            slots[dest] = slots[left] * slots[right]
        elif opcode == OP_MAX:
            left_value, right_value = slots[left], slots[right]
            slots[dest] = left_value if left_value >= right_value else right_value
        else:  # OP_COPY
            slots[dest] = slots[left]
    return slots[: tape.num_nodes]


def execute_real(
    tape: Tape,
    evidence: Mapping[str, int] | None = None,
    encoder: EvidenceEncoder | None = None,
) -> float:
    """Float64 value of the root under the given evidence."""
    root = tape.require_root()
    return execute_values(tape, evidence, encoder)[root]


def execute_batch(
    tape: Tape,
    evidence_batch: Sequence[Mapping[str, int]],
    encoder: EvidenceEncoder | None = None,
    node_values: bool = False,
    strict: bool = False,
) -> np.ndarray:
    """Float64 root values for a whole evidence batch.

    One numpy operation per tape op. With ``node_values=True`` returns
    the full ``(num_nodes, batch)`` value matrix instead of the root
    row. ``strict=True`` rejects evidence on unknown variables (the
    scalar paths' behavior); the default ignores it like the seed batch
    evaluator.
    """
    root = tape.require_root()
    batch = len(evidence_batch)
    if batch == 0:
        return (
            np.empty((tape.num_nodes, 0)) if node_values else np.empty(0)
        )
    if encoder is None:
        encoder = EvidenceEncoder.for_tape(tape)
    active = encoder.encode(evidence_batch, strict=strict)
    slots = np.empty((tape.num_slots, batch))
    slots[tape.param_slots] = tape.param_values[tape.param_ids][:, None]
    slots[tape.indicator_slots] = active
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            np.add(slots[left], slots[right], out=slots[dest])
        elif opcode == OP_PRODUCT:
            np.multiply(slots[left], slots[right], out=slots[dest])
        elif opcode == OP_MAX:
            np.maximum(slots[left], slots[right], out=slots[dest])
        else:  # OP_COPY
            slots[dest] = slots[left]
    if node_values:
        return slots[: tape.num_nodes].copy()
    return slots[root].copy()


def _require_binary_tape(tape: Tape) -> None:
    """Quantized semantics demand one rounding per two-input operator.

    A tape compiled from an n-ary circuit would evaluate the left-fold
    decomposition — numerically plausible but silently uncovered by the
    error analysis and different from the generated hardware, exactly
    what the legacy quantized evaluators guarded against.
    """
    if not tape.source_is_binary:
        raise ValueError(
            "quantized evaluation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )


# ----------------------------------------------------------------------
# Generic quantized execution (any backend, scalar)
# ----------------------------------------------------------------------
class QuantizedTapeEvaluator:
    """Scalar quantized sweep over a tape with any arithmetic backend.

    Pre-quantizes the deduplicated parameter table per backend and keeps
    the inner loop free of per-node attribute dispatch. Bit-identical to
    :func:`repro.ac.evaluate.evaluate_quantized` on binary circuits.
    """

    def __init__(self, tape: Tape, encoder: EvidenceEncoder | None = None):
        _require_binary_tape(tape)
        self.tape = tape
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        # Keyed by backend identity; weak so cached tables die with the
        # backend instead of pinning it (and ids are never recycled).
        self._param_cache: "weakref.WeakKeyDictionary[Any, list[Any]]" = (
            weakref.WeakKeyDictionary()
        )

    def _quantized_parameters(self, backend) -> list[Any]:
        cached = self._param_cache.get(backend)
        if cached is None:
            cached = self._param_cache[backend] = [
                backend.from_real(float(value))
                for value in self.tape.param_values
            ]
        return cached

    def evaluate(
        self,
        backend,
        evidence: Mapping[str, int] | None = None,
        strict: bool = True,
    ) -> float:
        """Quantized root value, converted back to float64."""
        tape = self.tape
        root = tape.require_root()
        quantized = self._quantized_parameters(backend)
        active = self.encoder.encode_one(evidence, strict=strict)
        slots: list[Any] = [None] * tape.num_slots
        for slot, value_id in zip(tape.param_slots, tape.param_ids):
            slots[slot] = quantized[value_id]
        one, zero = backend.one(), backend.zero()
        for position, slot in enumerate(tape.indicator_slots):
            slots[slot] = one if active[position] else zero
        add, multiply, maximum = backend.add, backend.multiply, backend.maximum
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                slots[dest] = add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[dest] = multiply(slots[left], slots[right])
            elif opcode == OP_MAX:
                slots[dest] = maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
        return backend.to_real(slots[root])


# ----------------------------------------------------------------------
# Vectorized fixed point
# ----------------------------------------------------------------------
class FixedPointBatchExecutor:
    """Exact batched fixed-point evaluation on numpy int64 mantissas.

    Bit-identical to the scalar big-int backend for every format with
    ``2·(I+F) ≤ 62`` (so 2F-fraction products stay exact in int64),
    including ``F = 0`` formats, every rounding mode, and the
    overflow-raising semantics.
    """

    def __init__(
        self,
        tape: Tape,
        fmt: FixedPointFormat,
        encoder: EvidenceEncoder | None = None,
    ) -> None:
        _require_binary_tape(tape)
        if not fmt.fits_int64_products:
            raise ValueError(
                f"vectorized fixed point needs 2·(I+F) ≤ 62 bits to stay "
                f"exact in int64; {fmt.describe()} has {fmt.total_bits} "
                f"total bits — use the big-int backend instead"
            )
        self.tape = tape
        self.fmt = fmt
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        self._max_mantissa = fmt.max_mantissa
        backend = FixedPointBackend(fmt)
        # Quantize the deduplicated parameter table once, exactly.
        self._param_words = np.asarray(
            [backend.from_real(float(v)).mantissa for v in tape.param_values],
            dtype=np.int64,
        )
        self._one_word = backend.one().mantissa

    def _round_products(self, products: np.ndarray) -> np.ndarray:
        """Vectorized rounding of 2F-fraction products back to F bits."""
        fraction_bits = self.fmt.fraction_bits
        if fraction_bits == 0:
            # Integer formats: products carry no extra fraction bits, so
            # there is nothing to round (1 << (F-1) below would be
            # ill-defined).
            return products
        quotient = products >> fraction_bits
        remainder = products & ((1 << fraction_bits) - 1)
        mode = self.fmt.rounding
        if mode is RoundingMode.TRUNCATE:
            return quotient
        half = 1 << (fraction_bits - 1)
        if mode is RoundingMode.NEAREST_UP:
            return quotient + (remainder >= half)
        round_up = (remainder > half) | (
            (remainder == half) & ((quotient & 1) == 1)
        )
        return quotient + round_up

    def evaluate_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Root mantissa words, shape ``(batch,)`` int64.

        Raises :class:`FixedPointOverflowError` if any intermediate
        exceeds the representable range, exactly like the scalar backend.
        """
        tape = self.tape
        root = tape.require_root()
        batch = len(evidence_batch)
        if batch == 0:
            return np.empty(0, dtype=np.int64)
        active = self.encoder.encode(evidence_batch, strict=strict)
        slots = np.zeros((tape.num_slots, batch), dtype=np.int64)
        slots[tape.param_slots] = self._param_words[tape.param_ids][:, None]
        slots[tape.indicator_slots] = np.where(active, self._one_word, 0)
        max_mantissa = self._max_mantissa
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                result = slots[left] + slots[right]
            elif opcode == OP_PRODUCT:
                result = self._round_products(slots[left] * slots[right])
            elif opcode == OP_MAX:
                result = np.maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
                continue
            if result.max(initial=0) > max_mantissa:
                raise FixedPointOverflowError(
                    f"overflow at slot {dest} in {self.fmt.describe()}"
                )
            slots[dest] = result
        return slots[root].copy()

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Float64 values of the root word for a whole batch."""
        words = self.evaluate_batch_words(evidence_batch, strict=strict)
        return words * 2.0 ** (-self.fmt.fraction_bits)


# ----------------------------------------------------------------------
# Vectorized floating point (new in the engine)
# ----------------------------------------------------------------------
class FloatBatchExecutor:
    """Exact batched float emulation on (mantissa, exponent) int64 pairs.

    Implements §3.1.2 operator semantics — exact integer-mantissa
    arithmetic with exactly one rounding per operator — vectorized with
    numpy, bit-identical to :class:`FloatBackend` (differentially
    tested). Alignment in addition uses the classic guard/round/sticky
    compression: shifted-out addend bits collapse into one sticky bit at
    least two positions below the rounding point, which preserves the
    `>half` / `=half` / `<half` distinctions every rounding mode needs,
    so the compressed sum rounds exactly like the exact big-int sum.

    Zeros are (0, 0) pairs, masked through every operator like the
    scalar backend's ``is_zero`` short-circuits.
    """

    #: Guard window for addition alignment (≥ 2 keeps sticky sound; 3
    #: mirrors hardware guard/round/sticky).
    _GUARD_BITS = 3

    def __init__(
        self,
        tape: Tape,
        fmt: FloatFormat,
        encoder: EvidenceEncoder | None = None,
    ) -> None:
        _require_binary_tape(tape)
        if not fmt.fits_int64_products:
            raise ValueError(
                f"vectorized float needs 2·(M+1) ≤ 62 bits (and E ≤ 32) "
                f"to keep mantissa arithmetic exact in int64; "
                f"{fmt.describe()} — use the big-int backend instead"
            )
        self.tape = tape
        self.fmt = fmt
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        backend = FloatBackend(fmt)
        params = [backend.from_real(float(v)) for v in tape.param_values]
        self._param_mantissas = np.asarray(
            [p.mantissa for p in params], dtype=np.int64
        )
        self._param_exponents = np.asarray(
            [p.exponent for p in params], dtype=np.int64
        )
        one = backend.one()
        self._one = (np.int64(one.mantissa), np.int64(one.exponent))

    # -- rounding core --------------------------------------------------
    def _round_shift(
        self, value: np.ndarray, shift: np.ndarray
    ) -> np.ndarray:
        """Vectorized :func:`repro.arith.rounding.round_shift`, shift ≥ 0."""
        quotient = value >> shift
        mode = self.fmt.rounding
        if mode is RoundingMode.TRUNCATE:
            return quotient
        remainder = value - (quotient << shift)
        # For shift == 0 lanes remainder is 0, so the (arbitrary) half
        # value never triggers a round-up there.
        half = np.int64(1) << (np.maximum(shift, 1) - 1)
        if mode is RoundingMode.NEAREST_UP:
            return quotient + (remainder >= half)
        round_up = (remainder > half) | (
            (remainder == half) & ((quotient & 1) == 1)
        )
        return quotient + round_up

    def _normalize(
        self,
        value: np.ndarray,
        scale: np.ndarray,
        excess_no_carry,
        live,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round ``value · 2^scale`` to the format (one rounding).

        ``value`` is known to have either ``M+1+excess_no_carry`` or one
        more significant bits (unsigned add/multiply never cancels);
        ``excess_no_carry`` may be a scalar or a per-lane array. ``live``
        marks lanes whose result is genuinely used (scalar True when all
        are); only live lanes can raise overflow/underflow.
        """
        mantissa_bits = self.fmt.mantissa_bits
        target = mantissa_bits + 1
        carry = value >= (np.int64(1) << (target + excess_no_carry))
        shift = excess_no_carry + carry
        rounded = self._round_shift(value, shift)
        scale = scale + shift
        # Rounding may carry into a new MSB (all-ones mantissa); the
        # result is then a power of two, so halving is exact.
        overflowed = rounded >> target > 0
        rounded = np.where(overflowed, rounded >> 1, rounded)
        scale = scale + overflowed
        exponent = scale + mantissa_bits
        if bool((live & (exponent > self.fmt.max_exponent)).any()):
            raise FloatOverflowError(
                f"overflow in {self.fmt.describe()}: exponent exceeds "
                f"{self.fmt.max_exponent}; increase exponent bits"
            )
        if bool((live & (exponent < self.fmt.min_exponent)).any()):
            raise FloatUnderflowError(
                f"underflow in {self.fmt.describe()}: exponent below "
                f"{self.fmt.min_exponent}; min-value analysis should pick "
                f"E large enough"
            )
        return rounded, exponent

    # -- operators ------------------------------------------------------
    def _add(self, ma, ea, mb, eb):
        zero_a, zero_b = ma == 0, mb == 0
        any_zero = bool(zero_a.any()) or bool(zero_b.any())
        if any_zero:
            # Dummy-substitute zero lanes so the shared path stays in
            # range (1+1 can neither overflow nor underflow any format).
            one_m, one_e = self._one
            MA = np.where(zero_a, one_m, ma)
            EA = np.where(zero_a, one_e, ea)
            MB = np.where(zero_b, one_m, mb)
            EB = np.where(zero_b, one_e, eb)
            live = ~(zero_a | zero_b)
        else:
            MA, EA, MB, EB = ma, ea, mb, eb
            live = True
        swap = EB > EA
        hi_m, lo_m = np.where(swap, MB, MA), np.where(swap, MA, MB)
        hi_e, lo_e = np.where(swap, EB, EA), np.where(swap, EA, EB)
        distance = hi_e - lo_e
        window = np.minimum(distance, self._GUARD_BITS)
        shift = distance - window
        # Compress the shifted-out addend bits into a sticky LSB.
        mantissa_bits = self.fmt.mantissa_bits
        capped = np.minimum(shift, mantissa_bits + 1)
        sticky = (lo_m & ((np.int64(1) << capped) - 1)) != 0
        lo_c = (lo_m >> capped) | sticky
        total = (hi_m << window) + lo_c
        scale = lo_e - mantissa_bits + shift
        res_m, res_e = self._normalize(total, scale, window, live)
        if any_zero:
            res_m = np.where(zero_a, mb, np.where(zero_b, ma, res_m))
            res_e = np.where(zero_a, eb, np.where(zero_b, ea, res_e))
        return res_m, res_e

    def _multiply(self, ma, ea, mb, eb):
        zero = (ma == 0) | (mb == 0)
        any_zero = bool(zero.any())
        mantissa_bits = self.fmt.mantissa_bits
        if any_zero:
            one_m, one_e = self._one
            product = np.where(zero, one_m, ma) * np.where(zero, one_m, mb)
            scale = (
                np.where(zero, one_e, ea)
                + np.where(zero, one_e, eb)
                - 2 * mantissa_bits
            )
            live = ~zero
        else:
            product = ma * mb
            scale = ea + eb - 2 * mantissa_bits
            live = True
        # excess_no_carry is the scalar M for every multiply lane.
        res_m, res_e = self._normalize(product, scale, mantissa_bits, live)
        if any_zero:
            res_m = np.where(zero, 0, res_m)
            res_e = np.where(zero, 0, res_e)
        return res_m, res_e

    def _maximum(self, ma, ea, mb, eb):
        zero_a, zero_b = ma == 0, mb == 0
        a_wins = ~zero_a & (
            zero_b | (ea > eb) | ((ea == eb) & (ma >= mb))
        )
        return np.where(a_wins, ma, mb), np.where(a_wins, ea, eb)

    # -- evaluation -----------------------------------------------------
    def evaluate_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Root ``(mantissas, exponents)`` pairs, each shape ``(batch,)``."""
        tape = self.tape
        root = tape.require_root()
        batch = len(evidence_batch)
        if batch == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        active = self.encoder.encode(evidence_batch, strict=strict)
        mantissas = np.zeros((tape.num_slots, batch), dtype=np.int64)
        exponents = np.zeros((tape.num_slots, batch), dtype=np.int64)
        mantissas[tape.param_slots] = self._param_mantissas[tape.param_ids][
            :, None
        ]
        exponents[tape.param_slots] = self._param_exponents[tape.param_ids][
            :, None
        ]
        one_m, one_e = self._one
        mantissas[tape.indicator_slots] = np.where(active, one_m, 0)
        exponents[tape.indicator_slots] = np.where(active, one_e, 0)
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                m, e = self._add(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            elif opcode == OP_PRODUCT:
                m, e = self._multiply(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            elif opcode == OP_MAX:
                m, e = self._maximum(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            else:  # OP_COPY
                m, e = mantissas[left], exponents[left]
            mantissas[dest] = m
            exponents[dest] = e
        return mantissas[root].copy(), exponents[root].copy()

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
    ) -> np.ndarray:
        """Float64 values of the root for a whole batch."""
        mantissas, exponents = self.evaluate_batch_words(
            evidence_batch, strict=strict
        )
        return np.ldexp(
            mantissas.astype(np.float64),
            (exponents - self.fmt.mantissa_bits).astype(np.int32),
        )
