"""Tape executors: every sweep variant, one shared IR.

All executors replay the same :class:`~repro.engine.tape.Tape`:

* :func:`execute_values` / :func:`execute_real` — scalar float64, the
  reference semantics (bit-identical to the seed per-node loop);
* :func:`execute_batch` — numpy float64 over a whole evidence batch, one
  vector op per tape op (bit-identical to the scalar pass, since both
  fold left-to-right in IEEE doubles);
* :class:`QuantizedTapeEvaluator` — scalar sweep with any
  :class:`~repro.ac.evaluate.QuantizedBackend` (the tape-backed
  replacement for the legacy ``fastpath.Program`` inner loop);
* :class:`FixedPointBatchExecutor` — exact int64-mantissa fixed point
  over a batch, bit-identical to
  :class:`~repro.arith.fixedpoint.FixedPointBackend`;
* :class:`FloatBatchExecutor` — exact (mantissa, exponent) float
  emulation over a batch, bit-identical to
  :class:`~repro.arith.floatingpoint.FloatBackend`. This is new: the
  seed had no vectorized float path, so float sweeps paid the scalar
  big-int loop for every instance.

Vectorized exactness contracts: the fixed executor needs products to fit
in int64 (``2·(I+F) ≤ 62``); the float executor needs mantissa products
to fit (``2·(M+1) ≤ 62``) and bounded exponents (``E ≤ 32``). Wider
formats must use the scalar big-int paths — constructors raise
``ValueError`` so callers can fall back.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..arith.fixedpoint import (
    FixedPointBackend,
    FixedPointFormat,
    FixedPointOverflowError,
)
from ..arith.floatingpoint import (
    FloatBackend,
    FloatFormat,
    FloatOverflowError,
    FloatUnderflowError,
)
from ..arith.rounding import RoundingMode
from .encoder import EvidenceEncoder
from .memo import KeyedMemo
from .tape import OP_MAX, OP_PRODUCT, OP_SUM, Tape


# ----------------------------------------------------------------------
# Real (float64) execution
# ----------------------------------------------------------------------
def _forward_slots(
    tape: Tape,
    evidence: Mapping[str, int] | None,
    encoder: EvidenceEncoder | None,
) -> list[float]:
    """Scalar float64 forward sweep over *all* slots (scratch included)."""
    if encoder is None:
        encoder = EvidenceEncoder.for_tape(tape)
    active = encoder.encode_one(evidence, strict=True)
    slots = [0.0] * tape.num_slots
    for slot, value_id in zip(tape.param_slots, tape.param_ids):
        slots[slot] = float(tape.param_values[value_id])
    for position, slot in enumerate(tape.indicator_slots):
        slots[slot] = 1.0 if active[position] else 0.0
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            slots[dest] = slots[left] + slots[right]
        elif opcode == OP_PRODUCT:
            slots[dest] = slots[left] * slots[right]
        elif opcode == OP_MAX:
            left_value, right_value = slots[left], slots[right]
            slots[dest] = left_value if left_value >= right_value else right_value
        else:  # OP_COPY
            slots[dest] = slots[left]
    return slots


def execute_values(
    tape: Tape,
    evidence: Mapping[str, int] | None = None,
    encoder: EvidenceEncoder | None = None,
) -> list[float]:
    """Float64 value of every circuit node under the given evidence.

    Returns ``num_nodes`` values aligned with circuit node indices
    (scratch slots are dropped).
    """
    return _forward_slots(tape, evidence, encoder)[: tape.num_nodes]


def execute_real(
    tape: Tape,
    evidence: Mapping[str, int] | None = None,
    encoder: EvidenceEncoder | None = None,
) -> float:
    """Float64 value of the root under the given evidence."""
    root = tape.require_root()
    return execute_values(tape, evidence, encoder)[root]


def execute_batch(
    tape: Tape,
    evidence_batch: Sequence[Mapping[str, int]],
    encoder: EvidenceEncoder | None = None,
    node_values: bool = False,
    strict: bool = False,
    param_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Float64 root values for a whole evidence batch.

    One numpy operation per tape op. With ``node_values=True`` returns
    the full ``(num_nodes, batch)`` value matrix instead of the root
    row. ``strict=True`` rejects evidence on unknown variables (the
    scalar paths' behavior); the default ignores it like the seed batch
    evaluator. ``param_matrix`` replaces the tape's parameter table with
    per-lane values — a lane-major ``(n_params, batch)`` float64 matrix
    (see :func:`repro.engine.theta.theta_param_matrix`) turning the
    sweep into a θ-batch replay.
    """
    root = tape.require_root()
    batch = len(evidence_batch)
    if batch == 0:
        return (
            np.empty((tape.num_nodes, 0)) if node_values else np.empty(0)
        )
    slots = _forward_slots_batch(
        tape, evidence_batch, encoder, strict, param_matrix
    )
    if node_values:
        return slots[: tape.num_nodes].copy()
    return slots[root].copy()


def _forward_slots_batch(
    tape: Tape,
    evidence_batch: Sequence[Mapping[str, int]],
    encoder: EvidenceEncoder | None,
    strict: bool,
    param_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Batched float64 forward sweep over *all* slots (scratch included)."""
    if encoder is None:
        encoder = EvidenceEncoder.for_tape(tape)
    active = encoder.encode(evidence_batch, strict=strict)
    slots = np.empty((tape.num_slots, len(evidence_batch)))
    if param_matrix is None:
        slots[tape.param_slots] = tape.param_values[tape.param_ids][:, None]
    else:
        slots[tape.param_slots] = param_matrix[tape.param_ids]
    slots[tape.indicator_slots] = active
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            np.add(slots[left], slots[right], out=slots[dest])
        elif opcode == OP_PRODUCT:
            np.multiply(slots[left], slots[right], out=slots[dest])
        elif opcode == OP_MAX:
            np.maximum(slots[left], slots[right], out=slots[dest])
        else:  # OP_COPY
            slots[dest] = slots[left]
    return slots


# ----------------------------------------------------------------------
# Real (float64) backward (derivative) execution
# ----------------------------------------------------------------------
def execute_partials(
    tape: Tape,
    evidence: Mapping[str, int] | None = None,
    encoder: EvidenceEncoder | None = None,
) -> tuple[list[float], list[float]]:
    """Upward values and downward partials ``∂f/∂v_i`` for every node.

    One forward replay plus one backward replay of the cached
    :class:`~repro.engine.tape.BackwardProgram`. Returns
    ``(values, partials)`` aligned with circuit node indices;
    bit-identical to the frozen node-walking oracle
    (:func:`repro.engine.reference.reference_partial_derivatives`) —
    the binary fold chains apply exactly its prefix/suffix product rule.
    Rejects MAX circuits (derivatives are undefined there).
    """
    tape.require_differentiable()
    root = tape.require_root()
    slots = _forward_slots(tape, evidence, encoder)
    partials = [0.0] * tape.num_slots
    partials[root] = 1.0
    for opcode, dest, left, right in tape.backward.op_tuples:
        seed = partials[dest]
        if seed == 0.0:
            continue  # zero contributions are exact no-ops
        if opcode == OP_SUM:
            partials[left] += seed
            partials[right] += seed
        elif opcode == OP_PRODUCT:
            partials[left] += seed * slots[right]
            partials[right] += seed * slots[left]
        else:  # OP_COPY
            partials[left] += seed
    return slots[: tape.num_nodes], partials[: tape.num_nodes]


def execute_partials_batch(
    tape: Tape,
    evidence_batch: Sequence[Mapping[str, int]],
    encoder: EvidenceEncoder | None = None,
    strict: bool = False,
    param_matrix: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched upward values and downward partials for every node.

    Returns ``(values, partials)``, each of shape
    ``(num_nodes, batch)`` — the joint of *every* state of *every*
    variable for a whole evidence batch in two tape replays (one numpy
    op per tape op per direction). Row-for-row bit-identical to
    :func:`execute_partials`. ``param_matrix`` seeds per-lane parameter
    values (lane-major ``(n_params, batch)``) for θ-batch replays; the
    backward sweep needs no further change — the product rule reads the
    per-lane forward slots.
    """
    tape.require_differentiable()
    root = tape.require_root()
    batch = len(evidence_batch)
    if batch == 0:
        empty = np.empty((tape.num_nodes, 0))
        return empty, empty.copy()
    slots = _forward_slots_batch(
        tape, evidence_batch, encoder, strict, param_matrix
    )
    partials = np.zeros((tape.num_slots, batch))
    partials[root] = 1.0
    for opcode, dest, left, right in tape.backward.op_tuples:
        seed = partials[dest]
        if opcode == OP_SUM:
            partials[left] += seed
            partials[right] += seed
        elif opcode == OP_PRODUCT:
            partials[left] += seed * slots[right]
            partials[right] += seed * slots[left]
        else:  # OP_COPY
            partials[left] += seed
    return slots[: tape.num_nodes].copy(), partials[: tape.num_nodes].copy()


def _require_binary_tape(tape: Tape) -> None:
    """Quantized semantics demand one rounding per two-input operator.

    A tape compiled from an n-ary circuit would evaluate the left-fold
    decomposition — numerically plausible but silently uncovered by the
    error analysis and different from the generated hardware, exactly
    what the legacy quantized evaluators guarded against.
    """
    if not tape.source_is_binary:
        raise ValueError(
            "quantized evaluation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )


# ----------------------------------------------------------------------
# Generic quantized execution (any backend, scalar)
# ----------------------------------------------------------------------
class QuantizedTapeEvaluator:
    """Scalar quantized sweep over a tape with any arithmetic backend.

    Pre-quantizes the deduplicated parameter table per backend and keeps
    the inner loop free of per-node attribute dispatch. Bit-identical to
    :func:`repro.ac.evaluate.evaluate_quantized` on binary circuits.
    """

    def __init__(self, tape: Tape, encoder: EvidenceEncoder | None = None):
        _require_binary_tape(tape)
        self.tape = tape
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        # Keyed by backend identity; weak so cached tables die with the
        # backend instead of pinning it. Quantizing the table is the
        # slow part — KeyedMemo builds outside its lock, so different
        # backends never serialize each other.
        self._param_memo = KeyedMemo(weak=True)

    def _quantized_parameters(self, backend) -> list[Any]:
        return self._param_memo.get(
            backend,
            lambda: [
                backend.from_real(float(value))
                for value in self.tape.param_values
            ],
        )

    def _forward_slots(
        self,
        backend,
        evidence: Mapping[str, int] | None,
        strict: bool,
        param_values: Sequence[float] | None = None,
    ) -> list[Any]:
        """Quantized forward sweep over all slots (scratch included).

        ``param_values`` overrides the tape's deduplicated parameter
        table for this sweep (one float per table entry, quantized
        per call, uncached) — the scalar per-θ path behind θ batches on
        formats too wide for the vectorized executors.
        """
        tape = self.tape
        if param_values is None:
            quantized = self._quantized_parameters(backend)
        else:
            quantized = [
                backend.from_real(float(value)) for value in param_values
            ]
        active = self.encoder.encode_one(evidence, strict=strict)
        slots: list[Any] = [None] * tape.num_slots
        for slot, value_id in zip(tape.param_slots, tape.param_ids):
            slots[slot] = quantized[value_id]
        one, zero = backend.one(), backend.zero()
        for position, slot in enumerate(tape.indicator_slots):
            slots[slot] = one if active[position] else zero
        add, multiply, maximum = backend.add, backend.multiply, backend.maximum
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                slots[dest] = add(slots[left], slots[right])
            elif opcode == OP_PRODUCT:
                slots[dest] = multiply(slots[left], slots[right])
            elif opcode == OP_MAX:
                slots[dest] = maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
        return slots

    def evaluate(
        self,
        backend,
        evidence: Mapping[str, int] | None = None,
        strict: bool = True,
        param_values: Sequence[float] | None = None,
    ) -> float:
        """Quantized root value, converted back to float64."""
        root = self.tape.require_root()
        slots = self._forward_slots(backend, evidence, strict, param_values)
        return backend.to_real(slots[root])

    def partials(
        self,
        backend,
        evidence: Mapping[str, int] | None = None,
        strict: bool = True,
        param_values: Sequence[float] | None = None,
    ) -> tuple[list[Any], list[Any]]:
        """Quantized upward values and downward partials per node.

        The quantized differential approach: the backward sweep runs in
        the *same* number system as the forward sweep — every adjoint
        addition and product-rule multiplication is one rounded backend
        operation, exactly what a hardware downward pass would do. With
        a big-int backend this is the golden reference the vectorized
        backward executors are differentially tested against.

        Returns ``(values, partials)`` as backend values aligned with
        circuit node indices.
        """
        tape = self.tape
        tape.require_differentiable()
        root = tape.require_root()
        slots = self._forward_slots(backend, evidence, strict, param_values)
        add, multiply = backend.add, backend.multiply
        adjoints: list[Any] = [backend.zero()] * tape.num_slots
        adjoints[root] = backend.one()
        for opcode, dest, left, right in tape.backward.op_tuples:
            seed = adjoints[dest]
            if opcode == OP_SUM:
                adjoints[left] = add(adjoints[left], seed)
                adjoints[right] = add(adjoints[right], seed)
            elif opcode == OP_PRODUCT:
                adjoints[left] = add(
                    adjoints[left], multiply(seed, slots[right])
                )
                adjoints[right] = add(
                    adjoints[right], multiply(seed, slots[left])
                )
            else:  # OP_COPY
                adjoints[left] = add(adjoints[left], seed)
        return slots[: tape.num_nodes], adjoints[: tape.num_nodes]


# ----------------------------------------------------------------------
# Vectorized fixed point
# ----------------------------------------------------------------------
class FixedWordKernel:
    """Bit-exact vectorized fixed-point operator semantics on int64 words.

    The operator core shared by :class:`FixedPointBatchExecutor` (tape
    sweeps) and the hardware stream simulator
    (:class:`repro.hw.stream.StreamSimulator`): exact 2F-fraction
    products rounded back to F bits, exact sums, and the scalar
    backend's overflow-raising semantics. Valid for every format with
    ``2·(I+F) ≤ 62`` so products stay exact in int64 lanes.
    """

    def __init__(self, fmt: FixedPointFormat) -> None:
        if not fmt.fits_int64_products:
            raise ValueError(
                f"vectorized fixed point needs 2·(I+F) ≤ 62 bits to stay "
                f"exact in int64; {fmt.describe()} has {fmt.total_bits} "
                f"total bits — use the big-int backend instead"
            )
        self.fmt = fmt
        self.max_mantissa = fmt.max_mantissa
        self.one_word = np.int64(FixedPointBackend(fmt).one().mantissa)

    def encode_params(self, values: Sequence[float]) -> np.ndarray:
        """Quantize real parameter values to int64 mantissa words."""
        backend = FixedPointBackend(self.fmt)
        return np.asarray(
            [backend.from_real(float(v)).mantissa for v in values],
            dtype=np.int64,
        )

    def encode_param_matrix(self, theta: np.ndarray) -> np.ndarray:
        """Quantize an ``(n_theta, n_params)`` θ batch, one row at a time.

        Returns the lane-major ``(n_params, n_theta)`` int64 word matrix
        the executors seed their parameter slots from — each row of the
        batch quantized exactly like :meth:`encode_params` quantizes the
        static table, so per-row sweeps stay bit-identical to a
        re-quantized scalar run.
        """
        backend = FixedPointBackend(self.fmt)
        words = np.asarray(
            [
                [backend.from_real(float(v)).mantissa for v in row]
                for row in np.asarray(theta, dtype=np.float64)
            ],
            dtype=np.int64,
        )
        return np.ascontiguousarray(words.T)

    def round_products(self, products: np.ndarray) -> np.ndarray:
        """Vectorized rounding of 2F-fraction products back to F bits."""
        fraction_bits = self.fmt.fraction_bits
        if fraction_bits == 0:
            # Integer formats: products carry no extra fraction bits, so
            # there is nothing to round (1 << (F-1) below would be
            # ill-defined).
            return products
        quotient = products >> fraction_bits
        remainder = products & ((1 << fraction_bits) - 1)
        mode = self.fmt.rounding
        if mode is RoundingMode.TRUNCATE:
            return quotient
        half = 1 << (fraction_bits - 1)
        if mode is RoundingMode.NEAREST_UP:
            return quotient + (remainder >= half)
        round_up = (remainder > half) | (
            (remainder == half) & ((quotient & 1) == 1)
        )
        return quotient + round_up

    def check(self, result: np.ndarray, where: str = "operator") -> np.ndarray:
        """Overflow-check an op result, like the scalar backend raises."""
        if result.max(initial=0) > self.max_mantissa:
            raise FixedPointOverflowError(
                f"overflow at {where} in {self.fmt.describe()}"
            )
        return result

    # Composite checked operators (one rounding per two-input operator).
    def add(self, a: np.ndarray, b: np.ndarray, where: str = "adder"):
        return self.check(a + b, where)

    def multiply(self, a: np.ndarray, b: np.ndarray, where: str = "multiplier"):
        return self.check(self.round_products(a * b), where)

    def maximum(self, a: np.ndarray, b: np.ndarray, where: str = "max"):
        return self.check(np.maximum(a, b), where)

    def to_real(self, words: np.ndarray) -> np.ndarray:
        """Float64 values of mantissa words."""
        return words * 2.0 ** (-self.fmt.fraction_bits)


class FixedPointBatchExecutor:
    """Exact batched fixed-point evaluation on numpy int64 mantissas.

    Bit-identical to the scalar big-int backend for every format with
    ``2·(I+F) ≤ 62`` (so 2F-fraction products stay exact in int64),
    including ``F = 0`` formats, every rounding mode, and the
    overflow-raising semantics. Operator semantics live in the shared
    :class:`FixedWordKernel`.
    """

    def __init__(
        self,
        tape: Tape,
        fmt: FixedPointFormat,
        encoder: EvidenceEncoder | None = None,
    ) -> None:
        _require_binary_tape(tape)
        self._kernel = FixedWordKernel(fmt)
        self.tape = tape
        self.fmt = fmt
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        # Quantize the deduplicated parameter table once, exactly.
        self._param_words = self._kernel.encode_params(tape.param_values)
        self._one_word = self._kernel.one_word

    def _round_products(self, products: np.ndarray) -> np.ndarray:
        return self._kernel.round_products(products)

    def _checked(self, result: np.ndarray, dest: int) -> np.ndarray:
        return self._kernel.check(result, f"slot {dest}")

    def encode_theta(self, theta: np.ndarray) -> np.ndarray:
        """Per-row quantized parameter tables for a θ batch.

        Returns the lane-major ``(n_params, n_theta)`` int64 word matrix
        to pass as ``param_words`` — quantized once per batch, reusable
        across forward and backward sweeps.
        """
        return self._kernel.encode_param_matrix(theta)

    def _forward_slot_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool,
        param_words: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mantissa words of *all* slots, shape ``(num_slots, batch)``."""
        tape = self.tape
        active = self.encoder.encode(evidence_batch, strict=strict)
        slots = np.zeros((tape.num_slots, len(evidence_batch)), dtype=np.int64)
        if param_words is None:
            slots[tape.param_slots] = self._param_words[tape.param_ids][:, None]
        else:
            slots[tape.param_slots] = param_words[tape.param_ids]
        slots[tape.indicator_slots] = np.where(active, self._one_word, 0)
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                result = slots[left] + slots[right]
            elif opcode == OP_PRODUCT:
                result = self._round_products(slots[left] * slots[right])
            elif opcode == OP_MAX:
                result = np.maximum(slots[left], slots[right])
            else:  # OP_COPY
                slots[dest] = slots[left]
                continue
            slots[dest] = self._checked(result, dest)
        return slots

    def evaluate_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: np.ndarray | None = None,
    ) -> np.ndarray:
        """Root mantissa words, shape ``(batch,)`` int64.

        Raises :class:`FixedPointOverflowError` if any intermediate
        exceeds the representable range, exactly like the scalar backend.
        ``param_words`` (from :meth:`encode_theta`) seeds per-lane
        quantized parameter tables for θ-batch replays.
        """
        root = self.tape.require_root()
        batch = len(evidence_batch)
        if batch == 0:
            return np.empty(0, dtype=np.int64)
        return self._forward_slot_words(
            evidence_batch, strict, param_words
        )[root].copy()

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: np.ndarray | None = None,
    ) -> np.ndarray:
        """Float64 values of the root word for a whole batch."""
        words = self.evaluate_batch_words(
            evidence_batch, strict=strict, param_words=param_words
        )
        return words * 2.0 ** (-self.fmt.fraction_bits)

    # -- backward (derivative) sweep ------------------------------------
    def partials_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantized ``(values, partials)`` mantissa words per node.

        Both arrays have shape ``(num_nodes, batch)``. The backward
        sweep applies the product rule in the emulated fixed-point
        arithmetic — one rounded multiply and one checked add per
        adjoint contribution — bit-identical to replaying
        :meth:`QuantizedTapeEvaluator.partials` with the big-int
        :class:`~repro.arith.fixedpoint.FixedPointBackend`.
        ``param_words`` (from :meth:`encode_theta`) seeds per-lane
        quantized parameter tables for θ-batch replays.
        """
        tape = self.tape
        tape.require_differentiable()
        root = tape.require_root()
        batch = len(evidence_batch)
        if batch == 0:
            empty = np.empty((tape.num_nodes, 0), dtype=np.int64)
            return empty, empty.copy()
        slots = self._forward_slot_words(evidence_batch, strict, param_words)
        adjoints = np.zeros((tape.num_slots, batch), dtype=np.int64)
        adjoints[root] = self._one_word
        for opcode, dest, left, right in tape.backward.op_tuples:
            seed = adjoints[dest]
            if opcode == OP_SUM:
                adjoints[left] = self._checked(adjoints[left] + seed, left)
                adjoints[right] = self._checked(adjoints[right] + seed, right)
            elif opcode == OP_PRODUCT:
                contribution = self._checked(
                    self._round_products(seed * slots[right]), left
                )
                adjoints[left] = self._checked(
                    adjoints[left] + contribution, left
                )
                contribution = self._checked(
                    self._round_products(seed * slots[left]), right
                )
                adjoints[right] = self._checked(
                    adjoints[right] + contribution, right
                )
            else:  # OP_COPY
                adjoints[left] = self._checked(adjoints[left] + seed, left)
        return (
            slots[: tape.num_nodes].copy(),
            adjoints[: tape.num_nodes].copy(),
        )

    def partials_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Float64 ``(values, partials)`` per node for a whole batch."""
        values, partials = self.partials_batch_words(
            evidence_batch, strict=strict, param_words=param_words
        )
        scale = 2.0 ** (-self.fmt.fraction_bits)
        return values * scale, partials * scale


# ----------------------------------------------------------------------
# Vectorized floating point (new in the engine)
# ----------------------------------------------------------------------
class FloatWordKernel:
    """Bit-exact vectorized float operator semantics on (m, e) pairs.

    The operator core shared by :class:`FloatBatchExecutor` (tape
    sweeps) and the hardware stream simulator
    (:class:`repro.hw.stream.StreamSimulator`). Implements §3.1.2
    operator semantics — exact integer-mantissa arithmetic with exactly
    one rounding per operator — vectorized with numpy, bit-identical to
    :class:`FloatBackend` (differentially tested). Alignment in addition
    uses the classic guard/round/sticky compression: shifted-out addend
    bits collapse into one sticky bit at least two positions below the
    rounding point, which preserves the `>half` / `=half` / `<half`
    distinctions every rounding mode needs, so the compressed sum rounds
    exactly like the exact big-int sum.

    Zeros are (0, 0) pairs, masked through every operator like the
    scalar backend's ``is_zero`` short-circuits.
    """

    #: Guard window for addition alignment (≥ 2 keeps sticky sound; 3
    #: mirrors hardware guard/round/sticky).
    _GUARD_BITS = 3

    def __init__(self, fmt: FloatFormat) -> None:
        if not fmt.fits_int64_products:
            raise ValueError(
                f"vectorized float needs 2·(M+1) ≤ 62 bits (and E ≤ 32) "
                f"to keep mantissa arithmetic exact in int64; "
                f"{fmt.describe()} — use the big-int backend instead"
            )
        self.fmt = fmt
        one = FloatBackend(fmt).one()
        self.one = (np.int64(one.mantissa), np.int64(one.exponent))

    def encode_params(
        self, values: Sequence[float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantize real parameter values to (mantissa, exponent) arrays."""
        backend = FloatBackend(self.fmt)
        params = [backend.from_real(float(v)) for v in values]
        return (
            np.asarray([p.mantissa for p in params], dtype=np.int64),
            np.asarray([p.exponent for p in params], dtype=np.int64),
        )

    def encode_param_matrix(
        self, theta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantize an ``(n_theta, n_params)`` θ batch, one row at a time.

        Returns lane-major ``(n_params, n_theta)`` int64 ``(m, e)`` word
        matrices — the ``param_words`` the executors seed their
        parameter slots from, each row quantized exactly like
        :meth:`encode_params` quantizes the static table, so per-lane
        sweeps stay bit-identical to a re-quantized scalar run.
        """
        backend = FloatBackend(self.fmt)
        rows = [
            [backend.from_real(float(v)) for v in row]
            for row in np.asarray(theta, dtype=np.float64)
        ]
        mantissas = np.asarray(
            [[p.mantissa for p in row] for row in rows], dtype=np.int64
        )
        exponents = np.asarray(
            [[p.exponent for p in row] for row in rows], dtype=np.int64
        )
        return (
            np.ascontiguousarray(mantissas.T),
            np.ascontiguousarray(exponents.T),
        )

    # -- rounding core --------------------------------------------------
    def _round_shift(
        self, value: np.ndarray, shift: np.ndarray
    ) -> np.ndarray:
        """Vectorized :func:`repro.arith.rounding.round_shift`, shift ≥ 0."""
        quotient = value >> shift
        mode = self.fmt.rounding
        if mode is RoundingMode.TRUNCATE:
            return quotient
        remainder = value - (quotient << shift)
        # For shift == 0 lanes remainder is 0, so the (arbitrary) half
        # value never triggers a round-up there.
        half = np.int64(1) << (np.maximum(shift, 1) - 1)
        if mode is RoundingMode.NEAREST_UP:
            return quotient + (remainder >= half)
        round_up = (remainder > half) | (
            (remainder == half) & ((quotient & 1) == 1)
        )
        return quotient + round_up

    def _normalize(
        self,
        value: np.ndarray,
        scale: np.ndarray,
        excess_no_carry,
        live,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Round ``value · 2^scale`` to the format (one rounding).

        ``value`` is known to have either ``M+1+excess_no_carry`` or one
        more significant bits (unsigned add/multiply never cancels);
        ``excess_no_carry`` may be a scalar or a per-lane array. ``live``
        marks lanes whose result is genuinely used (scalar True when all
        are); only live lanes can raise overflow/underflow.
        """
        mantissa_bits = self.fmt.mantissa_bits
        target = mantissa_bits + 1
        carry = value >= (np.int64(1) << (target + excess_no_carry))
        shift = excess_no_carry + carry
        rounded = self._round_shift(value, shift)
        scale = scale + shift
        # Rounding may carry into a new MSB (all-ones mantissa); the
        # result is then a power of two, so halving is exact.
        overflowed = rounded >> target > 0
        rounded = np.where(overflowed, rounded >> 1, rounded)
        scale = scale + overflowed
        exponent = scale + mantissa_bits
        if bool((live & (exponent > self.fmt.max_exponent)).any()):
            raise FloatOverflowError(
                f"overflow in {self.fmt.describe()}: exponent exceeds "
                f"{self.fmt.max_exponent}; increase exponent bits"
            )
        if bool((live & (exponent < self.fmt.min_exponent)).any()):
            raise FloatUnderflowError(
                f"underflow in {self.fmt.describe()}: exponent below "
                f"{self.fmt.min_exponent}; min-value analysis should pick "
                f"E large enough"
            )
        return rounded, exponent

    # -- operators ------------------------------------------------------
    def add(self, ma, ea, mb, eb):
        zero_a, zero_b = ma == 0, mb == 0
        any_zero = bool(zero_a.any()) or bool(zero_b.any())
        if any_zero:
            # Dummy-substitute zero lanes so the shared path stays in
            # range (1+1 can neither overflow nor underflow any format).
            one_m, one_e = self.one
            MA = np.where(zero_a, one_m, ma)
            EA = np.where(zero_a, one_e, ea)
            MB = np.where(zero_b, one_m, mb)
            EB = np.where(zero_b, one_e, eb)
            live = ~(zero_a | zero_b)
        else:
            MA, EA, MB, EB = ma, ea, mb, eb
            live = True
        swap = EB > EA
        hi_m, lo_m = np.where(swap, MB, MA), np.where(swap, MA, MB)
        hi_e, lo_e = np.where(swap, EB, EA), np.where(swap, EA, EB)
        distance = hi_e - lo_e
        window = np.minimum(distance, self._GUARD_BITS)
        shift = distance - window
        # Compress the shifted-out addend bits into a sticky LSB.
        mantissa_bits = self.fmt.mantissa_bits
        capped = np.minimum(shift, mantissa_bits + 1)
        sticky = (lo_m & ((np.int64(1) << capped) - 1)) != 0
        lo_c = (lo_m >> capped) | sticky
        total = (hi_m << window) + lo_c
        scale = lo_e - mantissa_bits + shift
        res_m, res_e = self._normalize(total, scale, window, live)
        if any_zero:
            res_m = np.where(zero_a, mb, np.where(zero_b, ma, res_m))
            res_e = np.where(zero_a, eb, np.where(zero_b, ea, res_e))
        return res_m, res_e

    def multiply(self, ma, ea, mb, eb):
        zero = (ma == 0) | (mb == 0)
        any_zero = bool(zero.any())
        mantissa_bits = self.fmt.mantissa_bits
        if any_zero:
            one_m, one_e = self.one
            product = np.where(zero, one_m, ma) * np.where(zero, one_m, mb)
            scale = (
                np.where(zero, one_e, ea)
                + np.where(zero, one_e, eb)
                - 2 * mantissa_bits
            )
            live = ~zero
        else:
            product = ma * mb
            scale = ea + eb - 2 * mantissa_bits
            live = True
        # excess_no_carry is the scalar M for every multiply lane.
        res_m, res_e = self._normalize(product, scale, mantissa_bits, live)
        if any_zero:
            res_m = np.where(zero, 0, res_m)
            res_e = np.where(zero, 0, res_e)
        return res_m, res_e

    def maximum(self, ma, ea, mb, eb):
        zero_a, zero_b = ma == 0, mb == 0
        a_wins = ~zero_a & (
            zero_b | (ea > eb) | ((ea == eb) & (ma >= mb))
        )
        return np.where(a_wins, ma, mb), np.where(a_wins, ea, eb)

    # -- conversions ----------------------------------------------------
    def pack(self, mantissas: np.ndarray, exponents: np.ndarray) -> np.ndarray:
        """Pack (m, e) pairs into (E|M) storage words, zero → 0.

        Vectorized :func:`repro.hw.netlist.pack_float_word`: biased
        exponent in the high E bits (0 encodes zero), hidden-bit-stripped
        fraction in the low M bits.
        """
        mantissa_bits = self.fmt.mantissa_bits
        biased = exponents + self.fmt.bias
        fraction = mantissas - (np.int64(1) << mantissa_bits)
        return np.where(
            mantissas == 0, 0, (biased << mantissa_bits) | fraction
        )

    def to_real(self, mantissas: np.ndarray, exponents: np.ndarray):
        """Float64 values of (m, e) pairs."""
        return np.ldexp(
            mantissas.astype(np.float64),
            (exponents - self.fmt.mantissa_bits).astype(np.int32),
        )


class FloatBatchExecutor:
    """Exact batched float emulation on (mantissa, exponent) int64 pairs.

    The tape-sweep front end of :class:`FloatWordKernel` (see its
    docstring for the operator semantics and exactness argument); this
    is new in the engine — the seed had no vectorized float path, so
    float sweeps paid the scalar big-int loop for every instance.
    """

    def __init__(
        self,
        tape: Tape,
        fmt: FloatFormat,
        encoder: EvidenceEncoder | None = None,
    ) -> None:
        _require_binary_tape(tape)
        kernel = FloatWordKernel(fmt)
        self._kernel = kernel
        self.tape = tape
        self.fmt = fmt
        self.encoder = encoder or EvidenceEncoder.for_tape(tape)
        self._param_mantissas, self._param_exponents = kernel.encode_params(
            tape.param_values
        )
        self._one = kernel.one
        self._add = kernel.add
        self._multiply = kernel.multiply
        self._maximum = kernel.maximum

    def encode_theta(
        self, theta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row quantized parameter tables for a θ batch.

        Returns the lane-major ``(n_params, n_theta)`` int64 ``(m, e)``
        word matrix pair to pass as ``param_words`` — quantized once per
        batch, reusable across forward and backward sweeps.
        """
        return self._kernel.encode_param_matrix(theta)

    # -- evaluation -----------------------------------------------------
    def _forward_word_slots(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool,
        param_words: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mantissas, exponents)`` of all slots, ``(num_slots, batch)``."""
        tape = self.tape
        active = self.encoder.encode(evidence_batch, strict=strict)
        batch = len(evidence_batch)
        mantissas = np.zeros((tape.num_slots, batch), dtype=np.int64)
        exponents = np.zeros((tape.num_slots, batch), dtype=np.int64)
        if param_words is None:
            mantissas[tape.param_slots] = self._param_mantissas[
                tape.param_ids
            ][:, None]
            exponents[tape.param_slots] = self._param_exponents[
                tape.param_ids
            ][:, None]
        else:
            word_m, word_e = param_words
            mantissas[tape.param_slots] = word_m[tape.param_ids]
            exponents[tape.param_slots] = word_e[tape.param_ids]
        one_m, one_e = self._one
        mantissas[tape.indicator_slots] = np.where(active, one_m, 0)
        exponents[tape.indicator_slots] = np.where(active, one_e, 0)
        for opcode, dest, left, right in tape.op_tuples:
            if opcode == OP_SUM:
                m, e = self._add(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            elif opcode == OP_PRODUCT:
                m, e = self._multiply(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            elif opcode == OP_MAX:
                m, e = self._maximum(
                    mantissas[left], exponents[left],
                    mantissas[right], exponents[right],
                )
            else:  # OP_COPY
                m, e = mantissas[left], exponents[left]
            mantissas[dest] = m
            exponents[dest] = e
        return mantissas, exponents

    def evaluate_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Root ``(mantissas, exponents)`` pairs, each shape ``(batch,)``.

        ``param_words`` (from :meth:`encode_theta`) seeds per-lane
        quantized parameter tables for θ-batch replays.
        """
        root = self.tape.require_root()
        if len(evidence_batch) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        mantissas, exponents = self._forward_word_slots(
            evidence_batch, strict, param_words
        )
        return mantissas[root].copy(), exponents[root].copy()

    # -- backward (derivative) sweep ------------------------------------
    def partials_batch_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[
        tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]
    ]:
        """Quantized values and partials as ``(mantissa, exponent)`` pairs.

        Returns ``((value_m, value_e), (partial_m, partial_e))``, each
        array of shape ``(num_nodes, batch)``. The backward sweep runs
        entirely in the emulated float arithmetic — one rounded multiply
        plus one rounded add per adjoint contribution — bit-identical to
        :meth:`QuantizedTapeEvaluator.partials` with the big-int
        :class:`~repro.arith.floatingpoint.FloatBackend`.
        ``param_words`` (from :meth:`encode_theta`) seeds per-lane
        quantized parameter tables for θ-batch replays.
        """
        tape = self.tape
        tape.require_differentiable()
        root = tape.require_root()
        batch = len(evidence_batch)
        if batch == 0:
            empty = np.empty((tape.num_nodes, 0), dtype=np.int64)
            return (empty, empty.copy()), (empty.copy(), empty.copy())
        mantissas, exponents = self._forward_word_slots(
            evidence_batch, strict, param_words
        )
        adj_m = np.zeros((tape.num_slots, batch), dtype=np.int64)
        adj_e = np.zeros((tape.num_slots, batch), dtype=np.int64)
        one_m, one_e = self._one
        adj_m[root] = one_m
        adj_e[root] = one_e
        for opcode, dest, left, right in tape.backward.op_tuples:
            seed_m, seed_e = adj_m[dest], adj_e[dest]
            if opcode == OP_PRODUCT:
                contrib_m, contrib_e = self._multiply(
                    seed_m, seed_e, mantissas[right], exponents[right]
                )
                m, e = self._add(
                    adj_m[left], adj_e[left], contrib_m, contrib_e
                )
                adj_m[left], adj_e[left] = m, e
                contrib_m, contrib_e = self._multiply(
                    seed_m, seed_e, mantissas[left], exponents[left]
                )
                m, e = self._add(
                    adj_m[right], adj_e[right], contrib_m, contrib_e
                )
                adj_m[right], adj_e[right] = m, e
            else:  # OP_SUM / OP_COPY: adjoints flow through unscaled
                m, e = self._add(adj_m[left], adj_e[left], seed_m, seed_e)
                adj_m[left], adj_e[left] = m, e
                if opcode == OP_SUM:
                    m, e = self._add(
                        adj_m[right], adj_e[right], seed_m, seed_e
                    )
                    adj_m[right], adj_e[right] = m, e
        n = tape.num_nodes
        return (
            (mantissas[:n].copy(), exponents[:n].copy()),
            (adj_m[:n].copy(), adj_e[:n].copy()),
        )

    def partials_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Float64 ``(values, partials)`` per node for a whole batch."""
        (value_m, value_e), (adj_m, adj_e) = self.partials_batch_words(
            evidence_batch, strict=strict, param_words=param_words
        )
        shift = self.fmt.mantissa_bits
        values = np.ldexp(
            value_m.astype(np.float64), (value_e - shift).astype(np.int32)
        )
        partials = np.ldexp(
            adj_m.astype(np.float64), (adj_e - shift).astype(np.int32)
        )
        return values, partials

    def evaluate_batch(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = False,
        param_words: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Float64 values of the root for a whole batch."""
        mantissas, exponents = self.evaluate_batch_words(
            evidence_batch, strict=strict, param_words=param_words
        )
        return np.ldexp(
            mantissas.astype(np.float64),
            (exponents - self.fmt.mantissa_bits).astype(np.int32),
        )
