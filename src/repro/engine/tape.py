"""The compiled-tape IR: a circuit linearized into flat numeric buffers.

Every analysis in this library — real evaluation, quantized emulation,
error-bound propagation, extreme-value analysis — is a single forward
sweep over the topologically ordered node arena of an
:class:`~repro.ac.circuit.ArithmeticCircuit`. Before this module each
sweep re-walked the arena of :class:`~repro.ac.nodes.Node` objects with
per-node attribute dispatch; a :class:`Tape` compiles that walk **once**
into struct-of-arrays numpy buffers that every executor (and every
evidence batch) can replay:

* ``opcodes`` / ``dests`` / ``lefts`` / ``rights`` — int32 arrays, one
  entry per two-input operation;
* a **deduplicated parameter table** (``param_slots`` / ``param_ids`` /
  ``param_values``) so each distinct θ is quantized exactly once;
* an **indicator table** (``indicator_slots`` / ``indicator_keys``)
  shared with :class:`~repro.engine.encoder.EvidenceEncoder`.

Slots ``0 .. num_nodes-1`` coincide with the circuit's node indices, so
per-node results (values, error bounds, extremes) read directly off the
slot array. N-ary operators are decomposed into left-fold chains through
extra *scratch* slots appended after the node slots; the final op of a
chain writes the node's own slot. Left folds are bit-identical to the
seed evaluators' ``sum()``/left-to-right products because folding in the
exact identity (0 for sums, 1 for products) is error-free in float64.

Use :func:`tape_for` to get the per-circuit cached tape; it recompiles
automatically if the circuit grew or was re-rooted since compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from .memo import KeyedMemo

# Opcodes of tape operations. SUM/PRODUCT/MAX intentionally match the
# legacy repro.ac.fastpath values; COPY forwards a slot unchanged (only
# emitted for degenerate fan-in-1 operators, which the circuit builder
# itself never produces).
OP_SUM, OP_PRODUCT, OP_MAX, OP_COPY = 0, 1, 2, 3

_OPCODE_OF = {OpType.SUM: OP_SUM, OpType.PRODUCT: OP_PRODUCT, OpType.MAX: OP_MAX}


@dataclass(frozen=True, eq=False)
class BackwardProgram:
    """The reverse-order replay program of a tape.

    Derivative sweeps visit operations parents-first; reversing the
    forward stream gives exactly that order (ops are emitted in node
    order, and scratch chains are contiguous). Because PR 1 decomposes
    n-ary operators into binary fold chains, replaying this program
    applies the product rule in O(k) multiplies per k-ary product — the
    chain's scratch values *are* the prefix products, and the adjoint
    flowing down the chain *is* the suffix-seeded product — instead of
    the seed sweep's O(k²) inner loop.
    """

    #: Reversed copies of the forward tape's op arrays.
    opcodes: np.ndarray
    dests: np.ndarray
    lefts: np.ndarray
    rights: np.ndarray
    _op_tuples: list[tuple[int, int, int, int]] | None = field(
        default=None, repr=False
    )

    @property
    def op_tuples(self) -> list[tuple[int, int, int, int]]:
        """The reversed operation stream as plain int tuples (cached)."""
        cached = self._op_tuples
        if cached is None:
            cached = [
                (int(o), int(d), int(l), int(r))
                for o, d, l, r in zip(
                    self.opcodes, self.dests, self.lefts, self.rights
                )
            ]
            object.__setattr__(self, "_op_tuples", cached)
        return cached


@dataclass(frozen=True, eq=False)
class Tape:
    """A circuit compiled to flat numeric buffers (see module docstring).

    Immutable; compile with :func:`compile_tape` or :func:`tape_for`.
    """

    name: str
    #: Number of circuit nodes; slots ``< num_nodes`` mirror node indices.
    num_nodes: int
    #: Total slots including scratch slots for n-ary decomposition.
    num_slots: int
    #: Slot of the circuit root, or ``None`` for rootless circuits.
    root: int | None
    #: ``(n_ops,)`` int32 — one of OP_SUM / OP_PRODUCT / OP_MAX / OP_COPY.
    opcodes: np.ndarray
    #: ``(n_ops,)`` int32 destination / left-input / right-input slots.
    dests: np.ndarray
    lefts: np.ndarray
    rights: np.ndarray
    #: ``(n_params,)`` int32 slot of every θ leaf.
    param_slots: np.ndarray
    #: ``(n_params,)`` int32 index into :attr:`param_values` per θ leaf.
    param_ids: np.ndarray
    #: ``(n_unique,)`` float64 deduplicated parameter values.
    param_values: np.ndarray
    #: ``(n_indicators,)`` int32 slot of every λ leaf.
    indicator_slots: np.ndarray
    #: ``(variable, state)`` key per λ leaf, aligned with indicator_slots.
    indicator_keys: tuple[tuple[str, int], ...]
    #: True when the source circuit was binary (no scratch slots needed).
    source_is_binary: bool
    _op_tuples: list[tuple[int, int, int, int]] | None = field(
        default=None, repr=False
    )
    _backward: BackwardProgram | None = field(default=None, repr=False)

    @property
    def num_operations(self) -> int:
        return len(self.opcodes)

    @property
    def has_max(self) -> bool:
        """True when the circuit contains MAX operators."""
        return bool((self.opcodes == OP_MAX).any())

    @property
    def backward(self) -> BackwardProgram:
        """The cached reverse-order program for derivative sweeps."""
        cached = self._backward
        if cached is None:
            cached = BackwardProgram(
                opcodes=self.opcodes[::-1].copy(),
                dests=self.dests[::-1].copy(),
                lefts=self.lefts[::-1].copy(),
                rights=self.rights[::-1].copy(),
            )
            object.__setattr__(self, "_backward", cached)
        return cached

    def require_differentiable(self) -> None:
        """Reject tapes of MPE (max) circuits for derivative sweeps."""
        if self.has_max:
            raise ValueError(
                "derivative passes are undefined for MAX nodes; "
                "use a sum-product circuit"
            )

    @property
    def op_tuples(self) -> list[tuple[int, int, int, int]]:
        """The operation stream as plain int tuples.

        Cached; scalar (pure-Python) executors iterate this instead of the
        numpy arrays — tuple unpacking beats per-element ndarray indexing.
        """
        cached = self._op_tuples
        if cached is None:
            cached = [
                (int(o), int(d), int(l), int(r))
                for o, d, l, r in zip(
                    self.opcodes, self.dests, self.lefts, self.rights
                )
            ]
            object.__setattr__(self, "_op_tuples", cached)
        return cached

    def require_root(self) -> int:
        if self.root is None:
            raise ValueError(f"circuit {self.name!r} has no root set")
        return self.root

    def describe(self) -> str:
        return (
            f"Tape({self.name!r}: {self.num_operations} ops over "
            f"{self.num_slots} slots, {len(self.param_slots)}θ "
            f"({len(self.param_values)} unique), "
            f"{len(self.indicator_slots)}λ)"
        )


def compile_tape(circuit: ArithmeticCircuit) -> Tape:
    """Linearize a circuit into a :class:`Tape`.

    Works for any fan-in; n-ary operators become left-fold chains over
    scratch slots (bit-identical to the seed evaluators, see module
    docstring). For already-binary circuits the tape has exactly one op
    per operator node and no scratch slots.
    """
    opcodes: list[int] = []
    dests: list[int] = []
    lefts: list[int] = []
    rights: list[int] = []
    param_slots: list[int] = []
    param_ids: list[int] = []
    param_values: list[float] = []
    value_ids: dict[float, int] = {}
    indicator_slots: list[int] = []
    indicator_keys: list[tuple[str, int]] = []

    num_nodes = len(circuit)
    next_scratch = num_nodes

    def emit(opcode: int, dest: int, left: int, right: int) -> None:
        opcodes.append(opcode)
        dests.append(dest)
        lefts.append(left)
        rights.append(right)

    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            value = float(node.value)
            value_id = value_ids.get(value)
            if value_id is None:
                value_id = value_ids[value] = len(param_values)
                param_values.append(value)
            param_slots.append(index)
            param_ids.append(value_id)
        elif node.op is OpType.INDICATOR:
            indicator_slots.append(index)
            indicator_keys.append((node.variable, int(node.state)))
        else:
            opcode = _OPCODE_OF[node.op]
            children = node.children
            if len(children) == 1:
                emit(OP_COPY, index, children[0], children[0])
            elif len(children) == 2:
                emit(opcode, index, children[0], children[1])
            else:
                # Left fold through scratch slots; last op lands on the
                # node's own slot so per-node reads stay valid.
                accumulator = children[0]
                for child in children[1:-1]:
                    emit(opcode, next_scratch, accumulator, child)
                    accumulator = next_scratch
                    next_scratch += 1
                emit(opcode, index, accumulator, children[-1])

    return Tape(
        name=circuit.name,
        num_nodes=num_nodes,
        num_slots=next_scratch,
        root=circuit.root if circuit.has_root else None,
        opcodes=np.asarray(opcodes, dtype=np.int32),
        dests=np.asarray(dests, dtype=np.int32),
        lefts=np.asarray(lefts, dtype=np.int32),
        rights=np.asarray(rights, dtype=np.int32),
        param_slots=np.asarray(param_slots, dtype=np.int32),
        param_ids=np.asarray(param_ids, dtype=np.int32),
        param_values=np.asarray(param_values, dtype=np.float64),
        indicator_slots=np.asarray(indicator_slots, dtype=np.int32),
        indicator_keys=tuple(indicator_keys),
        source_is_binary=circuit.is_binary,
    )


#: Per-circuit tape cache. Keyed by circuit identity (circuits hash by
#: id); entries die with their circuit, so long-lived services never leak.
_TAPE_MEMO: KeyedMemo = KeyedMemo(weak=True, name="tape")


def _fresh_tape(tape: Tape | None, circuit: ArithmeticCircuit) -> bool:
    current_root = circuit.root if circuit.has_root else None
    return (
        tape is not None
        and tape.num_nodes == len(circuit)
        and tape.root == current_root
    )


def tape_for(circuit: ArithmeticCircuit) -> Tape:
    """The cached tape of a circuit, recompiling if the circuit changed.

    Staleness is detected from node count and root: circuits are
    append-only arenas, so any structural change grows ``len(circuit)``
    or moves the root. Thread-safe via :class:`~repro.engine.memo.KeyedMemo`:
    same-circuit racers converge on one cached instance, while different
    circuits compile in parallel.
    """
    return _TAPE_MEMO.get(
        circuit,
        lambda: compile_tape(circuit),
        fresh=lambda tape: _fresh_tape(tape, circuit),
    )
