"""From partial derivatives to (posterior) marginals.

The differential approach (Darwiche; the paper's footnote 2) reads
``Pr(x, e \\ X)`` for *every* state of *every* variable straight off the
downward pass: it is the partial derivative at that state's λ leaf. This
module holds the tape-level bookkeeping that turns a partials array into
per-variable joint arrays and normalized posteriors — shared by
:class:`~repro.engine.session.InferenceSession`, the ``ac`` derivative
wrappers and the ``bn`` posterior front end.

Works on scalars and batches alike: a ``(num_nodes,)`` partials vector
yields ``(card,)`` joints per variable; a ``(num_nodes, batch)`` matrix
yields ``(card, batch)`` — all queries of a whole serving batch in one
grouping pass.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ZeroEvidenceError

__all__ = ["MarginalIndex", "ZeroEvidenceError"]


class MarginalIndex:
    """Per-variable view of a tape's indicator slots.

    Compiled once per tape: for each indicator variable, the int array
    of its λ slots and the state each slot testifies for. Variables keep
    the first-appearance order of the circuit's indicator table, like
    the legacy ``joint_marginals`` dict did.
    """

    def __init__(self, tape) -> None:
        groups: dict[str, tuple[list[int], list[int]]] = {}
        for slot, (variable, state) in zip(
            tape.indicator_slots, tape.indicator_keys
        ):
            slots, states = groups.setdefault(variable, ([], []))
            slots.append(int(slot))
            states.append(int(state))
        # Each group is sorted by state so the flattened-normalization
        # path below sums contributions in exactly the state-ascending
        # order the per-variable ``joint.sum(axis=0)`` used — keeping
        # posteriors bit-identical to the original per-variable loop.
        self._groups: dict[str, tuple[np.ndarray, np.ndarray, int]] = {}
        for variable, (slots, states) in groups.items():
            order = np.argsort(np.asarray(states), kind="stable")
            self._groups[variable] = (
                np.asarray(slots, dtype=np.intp)[order],
                np.asarray(states, dtype=np.intp)[order],
                max(states) + 1,
            )
        # Flattened views for the one-gather posteriors fast path: the
        # per-query marginals cost must stay negligible next to the
        # native tape sweeps.
        self._all_slots = (
            np.concatenate([g[0] for g in self._groups.values()])
            if self._groups
            else np.empty(0, dtype=np.intp)
        )
        counts = np.asarray(
            [len(g[0]) for g in self._groups.values()], dtype=np.intp
        )
        self._counts = counts
        self._starts = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(
            np.intp
        )
        self._flat_groups = [
            (
                variable,
                states,
                card,
                int(start),
                int(start + count),
                bool(
                    count == card and (states == np.arange(card)).all()
                ),
            )
            for (variable, (slots, states, card)), start, count in zip(
                self._groups.items(), self._starts, counts
            )
        ]

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._groups)

    def joints(self, partials) -> dict[str, np.ndarray]:
        """Group a partials array into per-variable joint arrays.

        ``partials`` is ``(num_nodes,)`` or ``(num_nodes, batch)``;
        each value of the result has shape ``(card,)`` respectively
        ``(card, batch)``, indexed by state.
        """
        partials = np.asarray(partials)
        joints: dict[str, np.ndarray] = {}
        for variable, (slots, states, card) in self._groups.items():
            joint = np.zeros((card,) + partials.shape[1:])
            joint[states] = partials[slots]
            joints[variable] = joint
        return joints

    def posteriors(
        self, partials, context: str = ""
    ) -> dict[str, np.ndarray]:
        """Normalized ``Pr(X | e)`` per variable (same shapes as joints).

        Raises :class:`ZeroEvidenceError` when any instance's evidence
        has probability zero; ``context`` is appended to the message so
        front ends can name the offending query/instance.
        """
        partials = np.asarray(partials)
        if not self._flat_groups:
            return {}
        values = partials[self._all_slots]
        # Segment sums in state-ascending order — bit-identical to the
        # per-variable ``joint.sum(axis=0)`` (missing states added 0.0,
        # which is exact on the non-negative partials domain).
        totals = np.add.reduceat(values, self._starts, axis=0)
        zero = totals == 0.0
        if zero.any():
            for index, (variable, *_rest) in enumerate(self._flat_groups):
                row_zero = zero[index]
                if np.any(row_zero):
                    where = ""
                    if np.ndim(row_zero) > 0:
                        lanes = np.flatnonzero(row_zero).tolist()
                        where = f" (batch instance(s) {lanes})"
                    raise ZeroEvidenceError(
                        f"evidence has probability zero; cannot condition "
                        f"{variable!r}{where}{context}"
                    )
        normalized = values / np.repeat(totals, self._counts, axis=0)
        posteriors: dict[str, np.ndarray] = {}
        for variable, states, card, start, end, contiguous in self._flat_groups:
            chunk = normalized[start:end]
            if contiguous:
                # States are exactly 0..card-1 (sorted above): the chunk
                # already is the posterior array.
                posteriors[variable] = chunk
            else:
                joint = np.zeros((card,) + chunk.shape[1:])
                joint[states] = chunk
                posteriors[variable] = joint
        return posteriors


def describe_evidence(evidence: Mapping[str, int] | None) -> str:
    """A short evidence rendering for error messages."""
    if not evidence:
        return "{}"
    return "{" + ", ".join(f"{k}={v}" for k, v in evidence.items()) + "}"
