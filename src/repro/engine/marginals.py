"""From partial derivatives to (posterior) marginals.

The differential approach (Darwiche; the paper's footnote 2) reads
``Pr(x, e \\ X)`` for *every* state of *every* variable straight off the
downward pass: it is the partial derivative at that state's λ leaf. This
module holds the tape-level bookkeeping that turns a partials array into
per-variable joint arrays and normalized posteriors — shared by
:class:`~repro.engine.session.InferenceSession`, the ``ac`` derivative
wrappers and the ``bn`` posterior front end.

Works on scalars and batches alike: a ``(num_nodes,)`` partials vector
yields ``(card,)`` joints per variable; a ``(num_nodes, batch)`` matrix
yields ``(card, batch)`` — all queries of a whole serving batch in one
grouping pass.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ZeroEvidenceError

__all__ = ["MarginalIndex", "ZeroEvidenceError"]


class MarginalIndex:
    """Per-variable view of a tape's indicator slots.

    Compiled once per tape: for each indicator variable, the int array
    of its λ slots and the state each slot testifies for. Variables keep
    the first-appearance order of the circuit's indicator table, like
    the legacy ``joint_marginals`` dict did.
    """

    def __init__(self, tape) -> None:
        groups: dict[str, tuple[list[int], list[int]]] = {}
        for slot, (variable, state) in zip(
            tape.indicator_slots, tape.indicator_keys
        ):
            slots, states = groups.setdefault(variable, ([], []))
            slots.append(int(slot))
            states.append(int(state))
        self._groups: dict[str, tuple[np.ndarray, np.ndarray, int]] = {
            variable: (
                np.asarray(slots, dtype=np.intp),
                np.asarray(states, dtype=np.intp),
                max(states) + 1,
            )
            for variable, (slots, states) in groups.items()
        }

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._groups)

    def joints(self, partials) -> dict[str, np.ndarray]:
        """Group a partials array into per-variable joint arrays.

        ``partials`` is ``(num_nodes,)`` or ``(num_nodes, batch)``;
        each value of the result has shape ``(card,)`` respectively
        ``(card, batch)``, indexed by state.
        """
        partials = np.asarray(partials)
        joints: dict[str, np.ndarray] = {}
        for variable, (slots, states, card) in self._groups.items():
            joint = np.zeros((card,) + partials.shape[1:])
            joint[states] = partials[slots]
            joints[variable] = joint
        return joints

    def posteriors(
        self, partials, context: str = ""
    ) -> dict[str, np.ndarray]:
        """Normalized ``Pr(X | e)`` per variable (same shapes as joints).

        Raises :class:`ZeroEvidenceError` when any instance's evidence
        has probability zero; ``context`` is appended to the message so
        front ends can name the offending query/instance.
        """
        posteriors: dict[str, np.ndarray] = {}
        for variable, joint in self.joints(partials).items():
            total = joint.sum(axis=0)
            zero = total == 0.0
            if np.any(zero):
                where = ""
                if np.ndim(total) > 0:
                    lanes = np.flatnonzero(zero).tolist()
                    where = f" (batch instance(s) {lanes})"
                raise ZeroEvidenceError(
                    f"evidence has probability zero; cannot condition "
                    f"{variable!r}{where}{context}"
                )
            posteriors[variable] = joint / total
        return posteriors


def describe_evidence(evidence: Mapping[str, int] | None) -> str:
    """A short evidence rendering for error messages."""
    if not evidence:
        return "{}"
    return "{" + ", ".join(f"{k}={v}" for k, v in evidence.items()) + "}"
