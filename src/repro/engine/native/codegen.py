"""C source generation for one compiled tape.

The generated translation unit bakes the whole tape — forward and
reversed op streams, the parameter/indicator tables, float64 parameter
values as C99 hex literals — into ``static const`` arrays and exposes
four fused kernels over a row-major ``(num_slots, batch)`` slot matrix:

* ``f64_forward`` / ``f64_backward`` — IEEE float64 replay, bit-identical
  to the numpy executors because both apply the same ops in the same
  order (the build pins ``-ffp-contract=off`` so no FMA contraction can
  change a single rounding);
* ``fixed_forward`` / ``fixed_backward`` — exact int64-mantissa
  fixed-point replay with the scalar backend's rounding and
  overflow-raising semantics. Quantized parameter words are passed in at
  call time (they depend on the format), so one compiled module serves
  every fixed-point format of the tape; the rounding mode is a runtime
  switch (perfectly predicted — it never changes inside a sweep).

Overflow reporting matches the numpy executors' exception attribution:
the kernels return the destination slot of the first overflowing
operation in stream order (phases within an op in the numpy check
order), or ``-1`` on success.

Bit-identity of the fixed path needs arithmetic right shifts and
two's-complement masking for (theoretical) negative words — both are
what gcc/clang do on every target we build for, matching Python's and
numpy's floor-shift semantics.
"""

from __future__ import annotations

import numpy as np

from ..tape import Tape

#: Bump when kernel semantics change — part of the build cache key.
CODEGEN_VERSION = 1

#: The cffi declarations of every generated tape module.
KERNEL_CDEF = """
void f64_forward(const uint8_t *active, double *slots, int64_t batch);
void f64_backward(const uint8_t *active, double *slots, double *partials,
                  int64_t batch);
int64_t fixed_forward(const int64_t *params, const uint8_t *active,
                      int64_t batch, int32_t frac_bits, int64_t max_word,
                      int64_t one_word, int32_t rounding, int64_t *slots);
int64_t fixed_backward(const int64_t *params, const uint8_t *active,
                       int64_t batch, int32_t frac_bits, int64_t max_word,
                       int64_t one_word, int32_t rounding, int64_t *slots,
                       int64_t *adjoints);
"""

#: Runtime rounding selectors (see ``fx_round`` in the template).
ROUND_TRUNCATE, ROUND_NEAREST_UP, ROUND_NEAREST_EVEN = 0, 1, 2


def _c_int_array(name: str, values: np.ndarray | list[int]) -> str:
    items = [str(int(v)) for v in values]
    if not items:
        # C forbids zero-length arrays; the matching N_* constant is 0,
        # so the dummy entry is never read.
        items = ["0"]
    body = _wrap(items)
    return f"static const int32_t {name}[] = {{\n{body}\n}};"


def _c_double_array(name: str, values: np.ndarray) -> str:
    items = []
    for value in values:
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(
                f"non-finite parameter value {value!r} cannot be lowered "
                f"to a C literal"
            )
        # C99 hex float literals reproduce the double bit-for-bit.
        items.append(value.hex())
    if not items:
        items = ["0x0.0p+0"]
    body = _wrap(items)
    return f"static const double {name}[] = {{\n{body}\n}};"


def _wrap(items: list[str], per_line: int = 12) -> str:
    lines = []
    for start in range(0, len(items), per_line):
        lines.append("    " + ", ".join(items[start : start + per_line]) + ",")
    return "\n".join(lines)


def generate_source(tape: Tape) -> str:
    """The complete C translation unit for one tape."""
    backward = tape.backward
    root = tape.require_root() if tape.root is not None else -1
    parts = [
        "#include <stdint.h>",
        "#include <string.h>",
        "",
        f"/* tape {tape.name!r}: {tape.num_operations} ops, "
        f"{tape.num_slots} slots (codegen v{CODEGEN_VERSION}) */",
        f"#define N_OPS {tape.num_operations}",
        f"#define N_PARAMS {len(tape.param_slots)}",
        f"#define N_INDICATORS {len(tape.indicator_slots)}",
        f"#define NUM_SLOTS {tape.num_slots}",
        f"#define ROOT {root}",
        "",
        _c_int_array("OPC", tape.opcodes),
        _c_int_array("DST", tape.dests),
        _c_int_array("LFT", tape.lefts),
        _c_int_array("RGT", tape.rights),
        _c_int_array("BOPC", backward.opcodes),
        _c_int_array("BDST", backward.dests),
        _c_int_array("BLFT", backward.lefts),
        _c_int_array("BRGT", backward.rights),
        _c_int_array("PSLOT", tape.param_slots),
        _c_int_array("PID", tape.param_ids),
        _c_double_array("PVAL", tape.param_values),
        _c_int_array("ISLOT", tape.indicator_slots),
        _KERNEL_TEMPLATE,
    ]
    return "\n".join(parts)


_KERNEL_TEMPLATE = r"""
/* ------------------------------------------------------------------ */
/* float64 kernels                                                     */
/* ------------------------------------------------------------------ */
static void seed_f64(const uint8_t *active, double *slots, int64_t batch)
{
    for (int32_t i = 0; i < N_PARAMS; i++) {
        const double value = PVAL[PID[i]];
        double *row = slots + (int64_t)PSLOT[i] * batch;
        for (int64_t j = 0; j < batch; j++) row[j] = value;
    }
    for (int32_t i = 0; i < N_INDICATORS; i++) {
        const uint8_t *lane = active + (int64_t)i * batch;
        double *row = slots + (int64_t)ISLOT[i] * batch;
        for (int64_t j = 0; j < batch; j++) row[j] = lane[j] ? 1.0 : 0.0;
    }
}

void f64_forward(const uint8_t *active, double *slots, int64_t batch)
{
    seed_f64(active, slots, batch);
    for (int32_t op = 0; op < N_OPS; op++) {
        const double *L = slots + (int64_t)LFT[op] * batch;
        const double *R = slots + (int64_t)RGT[op] * batch;
        double *D = slots + (int64_t)DST[op] * batch;
        switch (OPC[op]) {
        case 0: /* SUM */
            for (int64_t j = 0; j < batch; j++) D[j] = L[j] + R[j];
            break;
        case 1: /* PRODUCT */
            for (int64_t j = 0; j < batch; j++) D[j] = L[j] * R[j];
            break;
        case 2: /* MAX */
            for (int64_t j = 0; j < batch; j++)
                D[j] = L[j] >= R[j] ? L[j] : R[j];
            break;
        default: /* COPY */
            memcpy(D, L, (size_t)batch * sizeof(double));
            break;
        }
    }
}

void f64_backward(const uint8_t *active, double *slots, double *partials,
                  int64_t batch)
{
    f64_forward(active, slots, batch);
    memset(partials, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(double));
    {
        double *root_row = partials + (int64_t)ROOT * batch;
        for (int64_t j = 0; j < batch; j++) root_row[j] = 1.0;
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const double *S = partials + (int64_t)BDST[op] * batch;
        double *PL = partials + (int64_t)BLFT[op] * batch;
        double *PR = partials + (int64_t)BRGT[op] * batch;
        switch (BOPC[op]) {
        case 0: /* SUM: adjoints flow through unscaled */
            for (int64_t j = 0; j < batch; j++) PL[j] += S[j];
            for (int64_t j = 0; j < batch; j++) PR[j] += S[j];
            break;
        case 1: { /* PRODUCT: product rule with the forward siblings */
            const double *VL = slots + (int64_t)BLFT[op] * batch;
            const double *VR = slots + (int64_t)BRGT[op] * batch;
            for (int64_t j = 0; j < batch; j++) PL[j] += S[j] * VR[j];
            for (int64_t j = 0; j < batch; j++) PR[j] += S[j] * VL[j];
            break;
        }
        default: /* COPY */
            for (int64_t j = 0; j < batch; j++) PL[j] += S[j];
            break;
        }
    }
}

/* ------------------------------------------------------------------ */
/* fixed-point kernels (int64 mantissa words)                          */
/* ------------------------------------------------------------------ */
static int64_t fx_round(int64_t product, int32_t frac_bits, int32_t rounding)
{
    int64_t quotient, remainder, half;
    if (frac_bits == 0) return product;
    quotient = product >> frac_bits;
    if (rounding == 0) return quotient; /* TRUNCATE */
    remainder = product & (((int64_t)1 << frac_bits) - 1);
    half = (int64_t)1 << (frac_bits - 1);
    if (rounding == 1) return quotient + (remainder >= half); /* NEAREST_UP */
    return quotient
        + ((remainder > half) || (remainder == half && (quotient & 1)));
}

static int64_t fixed_forward_sweep(const int64_t *params,
                                   const uint8_t *active, int64_t batch,
                                   int32_t frac_bits, int64_t max_word,
                                   int64_t one_word, int32_t rounding,
                                   int64_t *slots)
{
    for (int32_t i = 0; i < N_PARAMS; i++) {
        const int64_t value = params[PID[i]];
        int64_t *row = slots + (int64_t)PSLOT[i] * batch;
        for (int64_t j = 0; j < batch; j++) row[j] = value;
    }
    for (int32_t i = 0; i < N_INDICATORS; i++) {
        const uint8_t *lane = active + (int64_t)i * batch;
        int64_t *row = slots + (int64_t)ISLOT[i] * batch;
        for (int64_t j = 0; j < batch; j++) row[j] = lane[j] ? one_word : 0;
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *L = slots + (int64_t)LFT[op] * batch;
        const int64_t *R = slots + (int64_t)RGT[op] * batch;
        int64_t *D = slots + (int64_t)DST[op] * batch;
        switch (OPC[op]) {
        case 0: /* SUM: exact adder, checked */
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = L[j] + R[j];
                if (v > max_word) return DST[op];
                D[j] = v;
            }
            break;
        case 1: /* PRODUCT: exact 2F product rounded back to F, checked */
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = fx_round(L[j] * R[j], frac_bits, rounding);
                if (v > max_word) return DST[op];
                D[j] = v;
            }
            break;
        case 2: /* MAX */
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = L[j] >= R[j] ? L[j] : R[j];
                if (v > max_word) return DST[op];
                D[j] = v;
            }
            break;
        default: /* COPY */
            memcpy(D, L, (size_t)batch * sizeof(int64_t));
            break;
        }
    }
    return -1;
}

int64_t fixed_forward(const int64_t *params, const uint8_t *active,
                      int64_t batch, int32_t frac_bits, int64_t max_word,
                      int64_t one_word, int32_t rounding, int64_t *slots)
{
    return fixed_forward_sweep(params, active, batch, frac_bits, max_word,
                               one_word, rounding, slots);
}

int64_t fixed_backward(const int64_t *params, const uint8_t *active,
                       int64_t batch, int32_t frac_bits, int64_t max_word,
                       int64_t one_word, int32_t rounding, int64_t *slots,
                       int64_t *adjoints)
{
    const int64_t status = fixed_forward_sweep(params, active, batch,
                                               frac_bits, max_word, one_word,
                                               rounding, slots);
    if (status >= 0) return status;
    memset(adjoints, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(int64_t));
    {
        int64_t *root_row = adjoints + (int64_t)ROOT * batch;
        for (int64_t j = 0; j < batch; j++) root_row[j] = one_word;
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *S = adjoints + (int64_t)BDST[op] * batch;
        int64_t *AL = adjoints + (int64_t)BLFT[op] * batch;
        int64_t *AR = adjoints + (int64_t)BRGT[op] * batch;
        switch (BOPC[op]) {
        case 0: /* SUM: left phase then right phase, like the numpy path */
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = AL[j] + S[j];
                if (v > max_word) return BLFT[op];
                AL[j] = v;
            }
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = AR[j] + S[j];
                if (v > max_word) return BRGT[op];
                AR[j] = v;
            }
            break;
        case 1: { /* PRODUCT: rounded contribution, checked add, per side */
            const int64_t *VL = slots + (int64_t)BLFT[op] * batch;
            const int64_t *VR = slots + (int64_t)BRGT[op] * batch;
            for (int64_t j = 0; j < batch; j++) {
                const int64_t c = fx_round(S[j] * VR[j], frac_bits, rounding);
                int64_t v;
                if (c > max_word) return BLFT[op];
                v = AL[j] + c;
                if (v > max_word) return BLFT[op];
                AL[j] = v;
            }
            for (int64_t j = 0; j < batch; j++) {
                const int64_t c = fx_round(S[j] * VL[j], frac_bits, rounding);
                int64_t v;
                if (c > max_word) return BRGT[op];
                v = AR[j] + c;
                if (v > max_word) return BRGT[op];
                AR[j] = v;
            }
            break;
        }
        default: /* COPY */
            for (int64_t j = 0; j < batch; j++) {
                const int64_t v = AL[j] + S[j];
                if (v > max_word) return BLFT[op];
                AL[j] = v;
            }
            break;
        }
    }
    return -1;
}
"""
