"""C source generation for one compiled tape.

The generated translation unit bakes the whole tape — forward and
reversed op streams, the parameter/indicator tables, float64 parameter
values as C99 hex literals — into ``static const`` arrays and exposes
six fused kernels over row-major ``(num_slots, batch)`` slot matrices:

* ``f64_forward`` / ``f64_backward`` — IEEE float64 replay, bit-identical
  to the numpy executors because both apply the same ops in the same
  order (the build pins ``-ffp-contract=off`` so no FMA contraction can
  change a single rounding). The sweeps are *lane-blocked*: lanes are
  processed ``LANE_BLOCK`` at a time so the live slot working set stays
  cache-resident, and every inner loop is a stride-1 ``#pragma GCC
  ivdep`` loop over contiguous lanes (each iteration touches only its
  own lane index, so the assertion is sound even when a destination row
  aliases a source row) — gcc's cost model then vectorizes them without
  runtime alias versioning.
* ``fixed_forward`` / ``fixed_backward`` — exact int64-mantissa
  fixed-point replay with the scalar backend's rounding and
  overflow-raising semantics.
* ``flt_forward`` / ``flt_backward`` — §3.1.2 float emulation on
  (mantissa, exponent) int64 word pairs: exact integer mantissa
  arithmetic with exactly one rounding per two-input operator,
  guard/round/sticky alignment in addition (a ``FLT_GUARD``-bit window
  plus a sticky LSB, mirroring :class:`FloatWordKernel` lane for lane),
  zero short-circuits as (0, 0) pairs, and overflow-before-underflow
  error ordering per operator.

**Runtime parameters.** Every kernel reads its deduplicated parameter
table through a runtime pointer: passing NULL (float64 only) falls back
to the baked ``PVAL`` constants, passing ``per_lane=0`` broadcasts one
table across the batch, and ``per_lane=1`` reads a lane-major
``(n_params, batch)`` matrix — one parameter table per lane — which is
what routes θ-sweeps (``evaluate_theta_batch`` and friends) through the
native backend. One compiled module serves both modes.

Error-attribution parity pins the loop structure: the numpy executors
compute a whole op row, then check it (``.max()`` / ``.any()``), so the
first *operation in stream order* with any failing lane raises — never
the first failing lane. The checked kernels therefore run each op over
the full batch, OR-accumulate failure flags in-loop (keeping the loops
vectorizable), and test the flags only between ops; the fused float64
kernels, which cannot fail, are the only lane-blocked ones. Fixed
kernels return the destination slot of the first overflowing operation
(phases within an op in the numpy check order) or ``-1`` on success;
float kernels return ``FLT_OK`` / ``FLT_OVERFLOW`` / ``FLT_UNDERFLOW``
and the Python wrapper rebuilds the numpy executors' messages.

Bit-identity of the word paths needs arithmetic right shifts on int64 —
what gcc/clang do on every target we build for, matching Python's and
numpy's floor-shift semantics.
"""

from __future__ import annotations

import numpy as np

from ..tape import Tape

#: Bump when kernel semantics change — part of the build cache key.
#: v2: runtime-parameter entry points, float-emulation kernels,
#: lane-blocked float64 sweeps.
CODEGEN_VERSION = 2

#: The cffi declarations of every generated tape module.
KERNEL_CDEF = """
void f64_forward(const double *params, int64_t per_lane,
                 const uint8_t *active, double *slots, int64_t batch);
void f64_backward(const double *params, int64_t per_lane,
                  const uint8_t *active, double *slots, double *partials,
                  int64_t batch);
int64_t fixed_forward(const int64_t *params, int64_t per_lane,
                      const uint8_t *active, int64_t batch,
                      int32_t frac_bits, int64_t max_word, int64_t one_word,
                      int32_t rounding, int64_t *slots);
int64_t fixed_backward(const int64_t *params, int64_t per_lane,
                       const uint8_t *active, int64_t batch,
                       int32_t frac_bits, int64_t max_word, int64_t one_word,
                       int32_t rounding, int64_t *slots, int64_t *adjoints);
int64_t flt_forward(const int64_t *param_m, const int64_t *param_e,
                    int64_t per_lane, const uint8_t *active, int64_t batch,
                    int32_t mantissa_bits, int64_t min_exponent,
                    int64_t max_exponent, int64_t one_m, int64_t one_e,
                    int32_t rounding, int64_t *m_slots, int64_t *e_slots);
int64_t flt_backward(const int64_t *param_m, const int64_t *param_e,
                     int64_t per_lane, const uint8_t *active, int64_t batch,
                     int32_t mantissa_bits, int64_t min_exponent,
                     int64_t max_exponent, int64_t one_m, int64_t one_e,
                     int32_t rounding, int64_t *m_slots, int64_t *e_slots,
                     int64_t *adj_m, int64_t *adj_e,
                     int64_t *scratch_m, int64_t *scratch_e);
"""

#: Runtime rounding selectors (see ``FXR_*`` / ``flt_round_shift``).
ROUND_TRUNCATE, ROUND_NEAREST_UP, ROUND_NEAREST_EVEN = 0, 1, 2

#: Float-kernel status codes (``flt_forward`` / ``flt_backward``).
FLT_OK, FLT_OVERFLOW, FLT_UNDERFLOW = -1, 1, 2


def _c_int_array(name: str, values: np.ndarray | list[int]) -> str:
    items = [str(int(v)) for v in values]
    if not items:
        # C forbids zero-length arrays; the matching N_* constant is 0,
        # so the dummy entry is never read.
        items = ["0"]
    body = _wrap(items)
    return f"static const int32_t {name}[] = {{\n{body}\n}};"


def _c_double_array(name: str, values: np.ndarray) -> str:
    items = []
    for value in values:
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(
                f"non-finite parameter value {value!r} cannot be lowered "
                f"to a C literal"
            )
        # C99 hex float literals reproduce the double bit-for-bit.
        items.append(value.hex())
    if not items:
        items = ["0x0.0p+0"]
    body = _wrap(items)
    return f"static const double {name}[] = {{\n{body}\n}};"


def _wrap(items: list[str], per_line: int = 12) -> str:
    lines = []
    for start in range(0, len(items), per_line):
        lines.append("    " + ", ".join(items[start : start + per_line]) + ",")
    return "\n".join(lines)


def generate_source(tape: Tape) -> str:
    """The complete C translation unit for one tape."""
    backward = tape.backward
    root = tape.require_root() if tape.root is not None else -1
    parts = [
        "#include <stdint.h>",
        "#include <string.h>",
        "",
        f"/* tape {tape.name!r}: {tape.num_operations} ops, "
        f"{tape.num_slots} slots (codegen v{CODEGEN_VERSION}) */",
        f"#define N_OPS {tape.num_operations}",
        f"#define N_PARAMS {len(tape.param_slots)}",
        f"#define N_INDICATORS {len(tape.indicator_slots)}",
        f"#define NUM_SLOTS {tape.num_slots}",
        f"#define ROOT {root}",
        "",
        _c_int_array("OPC", tape.opcodes),
        _c_int_array("DST", tape.dests),
        _c_int_array("LFT", tape.lefts),
        _c_int_array("RGT", tape.rights),
        _c_int_array("BOPC", backward.opcodes),
        _c_int_array("BDST", backward.dests),
        _c_int_array("BLFT", backward.lefts),
        _c_int_array("BRGT", backward.rights),
        _c_int_array("PSLOT", tape.param_slots),
        _c_int_array("PID", tape.param_ids),
        _c_double_array("PVAL", tape.param_values),
        _c_int_array("ISLOT", tape.indicator_slots),
        _KERNEL_TEMPLATE,
    ]
    return "\n".join(parts)


_KERNEL_TEMPLATE = r"""
/* ------------------------------------------------------------------ */
/* float64 kernels (lane-blocked, vectorizable)                        */
/* ------------------------------------------------------------------ */
/* Lanes per block: 64 doubles = one 512-byte row segment, keeping the
 * whole live slot working set L1/L2-resident for real tapes while
 * leaving full-width SIMD lanes to the vectorizer. */
#define LANE_BLOCK 64

static void seed_f64(const double *params, int64_t per_lane,
                     const uint8_t *active, double *slots, int64_t batch,
                     int64_t j0, int64_t j1)
{
    for (int32_t i = 0; i < N_PARAMS; i++) {
        double *row = slots + (int64_t)PSLOT[i] * batch;
        if (per_lane) {
            const double *src = params + (int64_t)PID[i] * batch;
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++) row[j] = src[j];
        } else {
            const double value = params[PID[i]];
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++) row[j] = value;
        }
    }
    for (int32_t i = 0; i < N_INDICATORS; i++) {
        const uint8_t *lane = active + (int64_t)i * batch;
        double *row = slots + (int64_t)ISLOT[i] * batch;
        #pragma GCC ivdep
        for (int64_t j = j0; j < j1; j++) row[j] = lane[j] ? 1.0 : 0.0;
    }
}

static void f64_forward_block(double *slots, int64_t batch, int64_t j0,
                              int64_t j1)
{
    for (int32_t op = 0; op < N_OPS; op++) {
        const double *L = slots + (int64_t)LFT[op] * batch;
        const double *R = slots + (int64_t)RGT[op] * batch;
        double *D = slots + (int64_t)DST[op] * batch;
        switch (OPC[op]) {
        case 0: /* SUM */
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++) D[j] = L[j] + R[j];
            break;
        case 1: /* PRODUCT */
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++) D[j] = L[j] * R[j];
            break;
        case 2: /* MAX */
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++)
                D[j] = L[j] >= R[j] ? L[j] : R[j];
            break;
        default: /* COPY */
            memcpy(D + j0, L + j0, (size_t)(j1 - j0) * sizeof(double));
            break;
        }
    }
}

void f64_forward(const double *params, int64_t per_lane,
                 const uint8_t *active, double *slots, int64_t batch)
{
    const double *table = params ? params : PVAL;
    for (int64_t j0 = 0; j0 < batch; j0 += LANE_BLOCK) {
        const int64_t j1 =
            batch - j0 < LANE_BLOCK ? batch : j0 + LANE_BLOCK;
        seed_f64(table, per_lane, active, slots, batch, j0, j1);
        f64_forward_block(slots, batch, j0, j1);
    }
}

void f64_backward(const double *params, int64_t per_lane,
                  const uint8_t *active, double *slots, double *partials,
                  int64_t batch)
{
    const double *table = params ? params : PVAL;
    memset(partials, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(double));
    for (int64_t j0 = 0; j0 < batch; j0 += LANE_BLOCK) {
        const int64_t j1 =
            batch - j0 < LANE_BLOCK ? batch : j0 + LANE_BLOCK;
        seed_f64(table, per_lane, active, slots, batch, j0, j1);
        f64_forward_block(slots, batch, j0, j1);
        {
            double *root_row = partials + (int64_t)ROOT * batch;
            #pragma GCC ivdep
            for (int64_t j = j0; j < j1; j++) root_row[j] = 1.0;
        }
        for (int32_t op = 0; op < N_OPS; op++) {
            const double *S = partials + (int64_t)BDST[op] * batch;
            double *PL = partials + (int64_t)BLFT[op] * batch;
            double *PR = partials + (int64_t)BRGT[op] * batch;
            switch (BOPC[op]) {
            case 0: /* SUM: adjoints flow through unscaled */
                #pragma GCC ivdep
                for (int64_t j = j0; j < j1; j++) PL[j] += S[j];
                #pragma GCC ivdep
                for (int64_t j = j0; j < j1; j++) PR[j] += S[j];
                break;
            case 1: { /* PRODUCT: product rule with the forward siblings */
                const double *VL = slots + (int64_t)BLFT[op] * batch;
                const double *VR = slots + (int64_t)BRGT[op] * batch;
                #pragma GCC ivdep
                for (int64_t j = j0; j < j1; j++) PL[j] += S[j] * VR[j];
                #pragma GCC ivdep
                for (int64_t j = j0; j < j1; j++) PR[j] += S[j] * VL[j];
                break;
            }
            default: /* COPY */
                #pragma GCC ivdep
                for (int64_t j = j0; j < j1; j++) PL[j] += S[j];
                break;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* fixed-point kernels (int64 mantissa words)                          */
/* ------------------------------------------------------------------ */
/* Rounding of 2F-fraction products back to F bits, as expressions so
 * the per-mode loops below stay branch-free and vectorizable. Only
 * meaningful for frac_bits > 0 (integer formats skip rounding). */
#define FXR_Q(p) ((p) >> frac_bits)
#define FXR_REM(p) ((p) & frac_mask)
#define FXR_TRUNC(p) FXR_Q(p)
#define FXR_UP(p) (FXR_Q(p) + (FXR_REM(p) >= half))
#define FXR_EVEN(p)                                                     \
    (FXR_Q(p)                                                           \
     + ((FXR_REM(p) > half)                                             \
        | ((FXR_REM(p) == half) & (FXR_Q(p) & 1))))

/* One checked forward op row: compute the whole row, OR-accumulate the
 * overflow flag (keeping the loop vectorizable), test between ops —
 * exactly the numpy executors' compute-then-check attribution. */
#define FX_OP_ROW(VEXPR)                                                \
    do {                                                                \
        int64_t bad = 0;                                                \
        _Pragma("GCC ivdep")                                            \
        for (int64_t j = 0; j < batch; j++) {                           \
            const int64_t v = (VEXPR);                                  \
            bad |= v > max_word;                                        \
            D[j] = v;                                                   \
        }                                                               \
        if (bad) return DST[op];                                        \
    } while (0)

/* One checked adjoint accumulation row: contribution check before add
 * check, like the numpy backward phases (both report the same dest). */
#define FX_ADJ_ROW(A, CEXPR, DEST)                                     \
    do {                                                                \
        int64_t bad = 0;                                                \
        _Pragma("GCC ivdep")                                            \
        for (int64_t j = 0; j < batch; j++) {                           \
            const int64_t c = (CEXPR);                                  \
            const int64_t v = A[j] + c;                                 \
            bad |= (c > max_word) | (v > max_word);                     \
            A[j] = v;                                                   \
        }                                                               \
        if (bad) return (DEST);                                         \
    } while (0)

static void seed_fixed(const int64_t *params, int64_t per_lane,
                       const uint8_t *active, int64_t batch,
                       int64_t one_word, int64_t *slots)
{
    for (int32_t i = 0; i < N_PARAMS; i++) {
        int64_t *row = slots + (int64_t)PSLOT[i] * batch;
        if (per_lane) {
            const int64_t *src = params + (int64_t)PID[i] * batch;
            #pragma GCC ivdep
            for (int64_t j = 0; j < batch; j++) row[j] = src[j];
        } else {
            const int64_t value = params[PID[i]];
            #pragma GCC ivdep
            for (int64_t j = 0; j < batch; j++) row[j] = value;
        }
    }
    for (int32_t i = 0; i < N_INDICATORS; i++) {
        const uint8_t *lane = active + (int64_t)i * batch;
        int64_t *row = slots + (int64_t)ISLOT[i] * batch;
        #pragma GCC ivdep
        for (int64_t j = 0; j < batch; j++) row[j] = lane[j] ? one_word : 0;
    }
}

static int64_t fixed_forward_sweep(const int64_t *params, int64_t per_lane,
                                   const uint8_t *active, int64_t batch,
                                   int32_t frac_bits, int64_t max_word,
                                   int64_t one_word, int32_t rounding,
                                   int64_t *slots)
{
    const int64_t frac_mask =
        frac_bits > 0 ? ((int64_t)1 << frac_bits) - 1 : 0;
    const int64_t half = frac_bits > 0 ? (int64_t)1 << (frac_bits - 1) : 0;
    seed_fixed(params, per_lane, active, batch, one_word, slots);
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *L = slots + (int64_t)LFT[op] * batch;
        const int64_t *R = slots + (int64_t)RGT[op] * batch;
        int64_t *D = slots + (int64_t)DST[op] * batch;
        switch (OPC[op]) {
        case 0: /* SUM: exact adder, checked */
            FX_OP_ROW(L[j] + R[j]);
            break;
        case 1: /* PRODUCT: exact 2F product rounded back to F, checked */
            if (frac_bits == 0) FX_OP_ROW(L[j] * R[j]);
            else if (rounding == 0) FX_OP_ROW(FXR_TRUNC(L[j] * R[j]));
            else if (rounding == 1) FX_OP_ROW(FXR_UP(L[j] * R[j]));
            else FX_OP_ROW(FXR_EVEN(L[j] * R[j]));
            break;
        case 2: /* MAX */
            FX_OP_ROW(L[j] >= R[j] ? L[j] : R[j]);
            break;
        default: /* COPY */
            memcpy(D, L, (size_t)batch * sizeof(int64_t));
            break;
        }
    }
    return -1;
}

int64_t fixed_forward(const int64_t *params, int64_t per_lane,
                      const uint8_t *active, int64_t batch,
                      int32_t frac_bits, int64_t max_word, int64_t one_word,
                      int32_t rounding, int64_t *slots)
{
    return fixed_forward_sweep(params, per_lane, active, batch, frac_bits,
                               max_word, one_word, rounding, slots);
}

int64_t fixed_backward(const int64_t *params, int64_t per_lane,
                       const uint8_t *active, int64_t batch,
                       int32_t frac_bits, int64_t max_word, int64_t one_word,
                       int32_t rounding, int64_t *slots, int64_t *adjoints)
{
    const int64_t frac_mask =
        frac_bits > 0 ? ((int64_t)1 << frac_bits) - 1 : 0;
    const int64_t half = frac_bits > 0 ? (int64_t)1 << (frac_bits - 1) : 0;
    const int64_t status =
        fixed_forward_sweep(params, per_lane, active, batch, frac_bits,
                            max_word, one_word, rounding, slots);
    if (status >= 0) return status;
    memset(adjoints, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(int64_t));
    {
        int64_t *root_row = adjoints + (int64_t)ROOT * batch;
        for (int64_t j = 0; j < batch; j++) root_row[j] = one_word;
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *S = adjoints + (int64_t)BDST[op] * batch;
        int64_t *AL = adjoints + (int64_t)BLFT[op] * batch;
        int64_t *AR = adjoints + (int64_t)BRGT[op] * batch;
        switch (BOPC[op]) {
        case 0: /* SUM: left phase then right phase, like the numpy path */
            FX_ADJ_ROW(AL, S[j], BLFT[op]);
            FX_ADJ_ROW(AR, S[j], BRGT[op]);
            break;
        case 1: { /* PRODUCT: rounded contribution, checked add, per side */
            const int64_t *VL = slots + (int64_t)BLFT[op] * batch;
            const int64_t *VR = slots + (int64_t)BRGT[op] * batch;
            if (frac_bits == 0) {
                FX_ADJ_ROW(AL, S[j] * VR[j], BLFT[op]);
                FX_ADJ_ROW(AR, S[j] * VL[j], BRGT[op]);
            } else if (rounding == 0) {
                FX_ADJ_ROW(AL, FXR_TRUNC(S[j] * VR[j]), BLFT[op]);
                FX_ADJ_ROW(AR, FXR_TRUNC(S[j] * VL[j]), BRGT[op]);
            } else if (rounding == 1) {
                FX_ADJ_ROW(AL, FXR_UP(S[j] * VR[j]), BLFT[op]);
                FX_ADJ_ROW(AR, FXR_UP(S[j] * VL[j]), BRGT[op]);
            } else {
                FX_ADJ_ROW(AL, FXR_EVEN(S[j] * VR[j]), BLFT[op]);
                FX_ADJ_ROW(AR, FXR_EVEN(S[j] * VL[j]), BRGT[op]);
            }
            break;
        }
        default: /* COPY */
            FX_ADJ_ROW(AL, S[j], BLFT[op]);
            break;
        }
    }
    return -1;
}

/* ------------------------------------------------------------------ */
/* float-emulation kernels ((mantissa, exponent) int64 word pairs)     */
/* ------------------------------------------------------------------ */
/* Guard window for addition alignment — must match FloatWordKernel's
 * _GUARD_BITS (>= 2 keeps the sticky compression sound; 3 mirrors
 * hardware guard/round/sticky). */
#define FLT_GUARD 3

/* Format parameters threaded through every float helper. */
typedef struct {
    int64_t mbits;
    int64_t min_e;
    int64_t max_e;
    int64_t one_m;
    int64_t one_e;
    int32_t rounding;
} flt_fmt;

static int64_t flt_round_shift(int64_t value, int64_t shift,
                               int32_t rounding)
{
    const int64_t q = value >> shift;
    int64_t rem, half;
    if (rounding == 0) return q; /* TRUNCATE */
    rem = value - (q << shift);
    /* shift == 0 lanes have rem == 0, so the (arbitrary) half value
     * never triggers a round-up there — same guard as the numpy core. */
    half = (int64_t)1 << ((shift > 1 ? shift : 1) - 1);
    if (rounding == 1) return q + (rem >= half); /* NEAREST_UP */
    return q + ((rem > half) || (rem == half && (q & 1)));
}

/* Round value · 2^scale to the format (exactly one rounding). The
 * value is known to have either mbits+1+excess or one more significant
 * bits (unsigned add/multiply never cancels). Overflow/underflow set
 * flags instead of raising — the caller tests them per operator, in
 * the numpy executors' overflow-before-underflow order. */
static void flt_normalize(const flt_fmt *F, int64_t value, int64_t scale,
                          int64_t excess, int64_t *rm, int64_t *re,
                          int64_t *ov, int64_t *un)
{
    const int64_t target = F->mbits + 1;
    const int64_t carry = value >= ((int64_t)1 << (target + excess));
    const int64_t shift = excess + carry;
    int64_t rounded = flt_round_shift(value, shift, F->rounding);
    int64_t exponent;
    scale += shift;
    /* Rounding may carry into a new MSB (all-ones mantissa); the
     * result is then a power of two, so halving is exact. */
    if (rounded >> target) {
        rounded >>= 1;
        scale += 1;
    }
    exponent = scale + F->mbits;
    *ov |= exponent > F->max_e;
    *un |= exponent < F->min_e;
    *rm = rounded;
    *re = exponent;
}

/* dm/de may alias am/ae (adjoint accumulation): every lane reads its
 * inputs into locals before writing index j, so in-place rows are
 * safe. Zero lanes ((0, 0) pairs) short-circuit exactly like the
 * scalar backend's is_zero checks. */
static void flt_add_rows(const flt_fmt *F, const int64_t *am,
                         const int64_t *ae, const int64_t *bm,
                         const int64_t *be, int64_t *dm, int64_t *de,
                         int64_t batch, int64_t *ov, int64_t *un)
{
    for (int64_t j = 0; j < batch; j++) {
        const int64_t ma = am[j], ea = ae[j], mb = bm[j], eb = be[j];
        int64_t hi_m, hi_e, lo_m, lo_e, distance, window, shift, capped;
        int64_t sticky, total;
        if (ma == 0) {
            dm[j] = mb;
            de[j] = eb;
            continue;
        }
        if (mb == 0) {
            dm[j] = ma;
            de[j] = ea;
            continue;
        }
        if (eb > ea) {
            hi_m = mb; hi_e = eb; lo_m = ma; lo_e = ea;
        } else {
            hi_m = ma; hi_e = ea; lo_m = mb; lo_e = eb;
        }
        distance = hi_e - lo_e;
        window = distance < FLT_GUARD ? distance : FLT_GUARD;
        shift = distance - window;
        /* Compress the shifted-out addend bits into a sticky LSB. */
        capped = shift < F->mbits + 1 ? shift : F->mbits + 1;
        sticky = (lo_m & (((int64_t)1 << capped) - 1)) != 0;
        total = (hi_m << window) + ((lo_m >> capped) | sticky);
        flt_normalize(F, total, lo_e - F->mbits + shift, window, dm + j,
                      de + j, ov, un);
    }
}

static void flt_mul_rows(const flt_fmt *F, const int64_t *am,
                         const int64_t *ae, const int64_t *bm,
                         const int64_t *be, int64_t *dm, int64_t *de,
                         int64_t batch, int64_t *ov, int64_t *un)
{
    for (int64_t j = 0; j < batch; j++) {
        const int64_t ma = am[j], ea = ae[j], mb = bm[j], eb = be[j];
        if (ma == 0 || mb == 0) {
            dm[j] = 0;
            de[j] = 0;
            continue;
        }
        /* excess_no_carry is mbits for every multiply lane. */
        flt_normalize(F, ma * mb, ea + eb - 2 * F->mbits, F->mbits, dm + j,
                      de + j, ov, un);
    }
}

static void flt_max_rows(const int64_t *am, const int64_t *ae,
                         const int64_t *bm, const int64_t *be, int64_t *dm,
                         int64_t *de, int64_t batch)
{
    #pragma GCC ivdep
    for (int64_t j = 0; j < batch; j++) {
        const int64_t ma = am[j], ea = ae[j], mb = bm[j], eb = be[j];
        const int64_t a_wins =
            ma != 0 && (mb == 0 || ea > eb || (ea == eb && ma >= mb));
        dm[j] = a_wins ? ma : mb;
        de[j] = a_wins ? ea : eb;
    }
}

/* Test the per-operator flags in the numpy order: any overflowing lane
 * raises overflow even when another lane underflowed in the same op. */
#define FLT_CHECK()                                                     \
    do {                                                                \
        if (ov) return 1;                                               \
        if (un) return 2;                                               \
        ov = un = 0;                                                    \
    } while (0)

static int64_t flt_forward_sweep(const flt_fmt *F, const int64_t *param_m,
                                 const int64_t *param_e, int64_t per_lane,
                                 const uint8_t *active, int64_t batch,
                                 int64_t *ms, int64_t *es)
{
    int64_t ov = 0, un = 0;
    for (int32_t i = 0; i < N_PARAMS; i++) {
        int64_t *mrow = ms + (int64_t)PSLOT[i] * batch;
        int64_t *erow = es + (int64_t)PSLOT[i] * batch;
        if (per_lane) {
            const int64_t *src_m = param_m + (int64_t)PID[i] * batch;
            const int64_t *src_e = param_e + (int64_t)PID[i] * batch;
            #pragma GCC ivdep
            for (int64_t j = 0; j < batch; j++) {
                mrow[j] = src_m[j];
                erow[j] = src_e[j];
            }
        } else {
            const int64_t vm = param_m[PID[i]];
            const int64_t ve = param_e[PID[i]];
            #pragma GCC ivdep
            for (int64_t j = 0; j < batch; j++) {
                mrow[j] = vm;
                erow[j] = ve;
            }
        }
    }
    for (int32_t i = 0; i < N_INDICATORS; i++) {
        const uint8_t *lane = active + (int64_t)i * batch;
        int64_t *mrow = ms + (int64_t)ISLOT[i] * batch;
        int64_t *erow = es + (int64_t)ISLOT[i] * batch;
        #pragma GCC ivdep
        for (int64_t j = 0; j < batch; j++) {
            mrow[j] = lane[j] ? F->one_m : 0;
            erow[j] = lane[j] ? F->one_e : 0;
        }
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *LM = ms + (int64_t)LFT[op] * batch;
        const int64_t *LE = es + (int64_t)LFT[op] * batch;
        const int64_t *RM = ms + (int64_t)RGT[op] * batch;
        const int64_t *RE = es + (int64_t)RGT[op] * batch;
        int64_t *DM = ms + (int64_t)DST[op] * batch;
        int64_t *DE = es + (int64_t)DST[op] * batch;
        switch (OPC[op]) {
        case 0: /* SUM */
            flt_add_rows(F, LM, LE, RM, RE, DM, DE, batch, &ov, &un);
            FLT_CHECK();
            break;
        case 1: /* PRODUCT */
            flt_mul_rows(F, LM, LE, RM, RE, DM, DE, batch, &ov, &un);
            FLT_CHECK();
            break;
        case 2: /* MAX */
            flt_max_rows(LM, LE, RM, RE, DM, DE, batch);
            break;
        default: /* COPY */
            memcpy(DM, LM, (size_t)batch * sizeof(int64_t));
            memcpy(DE, LE, (size_t)batch * sizeof(int64_t));
            break;
        }
    }
    return -1;
}

int64_t flt_forward(const int64_t *param_m, const int64_t *param_e,
                    int64_t per_lane, const uint8_t *active, int64_t batch,
                    int32_t mantissa_bits, int64_t min_exponent,
                    int64_t max_exponent, int64_t one_m, int64_t one_e,
                    int32_t rounding, int64_t *m_slots, int64_t *e_slots)
{
    const flt_fmt F = {mantissa_bits, min_exponent, max_exponent, one_m,
                       one_e, rounding};
    return flt_forward_sweep(&F, param_m, param_e, per_lane, active, batch,
                             m_slots, e_slots);
}

int64_t flt_backward(const int64_t *param_m, const int64_t *param_e,
                     int64_t per_lane, const uint8_t *active, int64_t batch,
                     int32_t mantissa_bits, int64_t min_exponent,
                     int64_t max_exponent, int64_t one_m, int64_t one_e,
                     int32_t rounding, int64_t *m_slots, int64_t *e_slots,
                     int64_t *adj_m, int64_t *adj_e, int64_t *scratch_m,
                     int64_t *scratch_e)
{
    const flt_fmt F = {mantissa_bits, min_exponent, max_exponent, one_m,
                       one_e, rounding};
    int64_t ov = 0, un = 0;
    const int64_t status = flt_forward_sweep(
        &F, param_m, param_e, per_lane, active, batch, m_slots, e_slots);
    if (status >= 0) return status;
    memset(adj_m, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(int64_t));
    memset(adj_e, 0, (size_t)NUM_SLOTS * (size_t)batch * sizeof(int64_t));
    {
        int64_t *mrow = adj_m + (int64_t)ROOT * batch;
        for (int64_t j = 0; j < batch; j++) mrow[j] = one_m;
        if (one_e != 0) {
            int64_t *erow = adj_e + (int64_t)ROOT * batch;
            for (int64_t j = 0; j < batch; j++) erow[j] = one_e;
        }
    }
    for (int32_t op = 0; op < N_OPS; op++) {
        const int64_t *SM = adj_m + (int64_t)BDST[op] * batch;
        const int64_t *SE = adj_e + (int64_t)BDST[op] * batch;
        int64_t *ALM = adj_m + (int64_t)BLFT[op] * batch;
        int64_t *ALE = adj_e + (int64_t)BLFT[op] * batch;
        int64_t *ARM = adj_m + (int64_t)BRGT[op] * batch;
        int64_t *ARE = adj_e + (int64_t)BRGT[op] * batch;
        switch (BOPC[op]) {
        case 1: { /* PRODUCT: rounded contribution, rounded add, per side */
            const int64_t *VLM = m_slots + (int64_t)BLFT[op] * batch;
            const int64_t *VLE = e_slots + (int64_t)BLFT[op] * batch;
            const int64_t *VRM = m_slots + (int64_t)BRGT[op] * batch;
            const int64_t *VRE = e_slots + (int64_t)BRGT[op] * batch;
            flt_mul_rows(&F, SM, SE, VRM, VRE, scratch_m, scratch_e, batch,
                         &ov, &un);
            FLT_CHECK();
            flt_add_rows(&F, ALM, ALE, scratch_m, scratch_e, ALM, ALE,
                         batch, &ov, &un);
            FLT_CHECK();
            flt_mul_rows(&F, SM, SE, VLM, VLE, scratch_m, scratch_e, batch,
                         &ov, &un);
            FLT_CHECK();
            flt_add_rows(&F, ARM, ARE, scratch_m, scratch_e, ARM, ARE,
                         batch, &ov, &un);
            FLT_CHECK();
            break;
        }
        default: /* SUM / COPY: adjoints flow through unscaled */
            flt_add_rows(&F, ALM, ALE, SM, SE, ALM, ALE, batch, &ov, &un);
            FLT_CHECK();
            if (BOPC[op] == 0) {
                flt_add_rows(&F, ARM, ARE, SM, SE, ARM, ARE, batch, &ov,
                             &un);
                FLT_CHECK();
            }
            break;
        }
    }
    return -1;
}
"""
