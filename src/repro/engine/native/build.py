"""cffi compilation and on-disk caching of generated tape kernels.

Modules are keyed by a content hash of the generated C source (which
itself encodes the whole tape) plus the cdef and codegen version, so a
tape recompiled in another process — or another CI step — reuses the
cached shared object instead of invoking the C compiler again. The
cache directory is ``$PROBLP_NATIVE_CACHE`` when set, else
``$XDG_CACHE_HOME/problp/native`` (defaulting under ``~/.cache``).

Builds are cross-process safe: each process compiles into its own
temporary subdirectory and atomically ``os.replace``s the finished
shared object into the cache, so racers simply overwrite each other
with identical artifacts.

Availability is probed by actually compiling a trivial module once per
process (the probe is disk-cached too, so only the very first run pays
the compiler): anything that breaks the toolchain — cffi missing, no C
compiler, unwritable cache — flips :func:`native_available` to False
with the reason preserved for diagnostics, and callers fall back to the
numpy executors.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Any

from ...obs.metrics import REGISTRY
from ..memo import KeyedMemo
from .codegen import CODEGEN_VERSION, KERNEL_CDEF

__all__ = [
    "NativeBuildError",
    "build_kernel_module",
    "cache_dir",
    "native_available",
    "native_unavailable_reason",
]

#: Compile flags that preserve bit-identity with the numpy oracle: -O2
#: without fast-math, and contraction off so no FMA merges a multiply
#: and an add into a single differently-rounded instruction. The
#: explicit vectorizer flags matter at -O2: gcc 12's default
#: "very-cheap" cost model refuses most of the generated lane loops,
#: and the ``#pragma GCC ivdep`` annotations in the codegen only lift
#: the aliasing half of that veto. SIMD reorders nothing the kernels
#: compute lane-wise, so vectorization cannot change a single rounding.
_COMPILE_ARGS = [
    "-O2",
    "-ftree-vectorize",
    "-fvect-cost-model=dynamic",
    "-ffp-contract=off",
]

_PROBE_CDEF = "int problp_native_probe(void);"
_PROBE_SOURCE = "int problp_native_probe(void) { return 42; }\n"

_BUILD_TOTAL = REGISTRY.counter(
    "problp_native_build_total",
    "Native kernel-module builds by outcome: disk_hit reused a cached "
    ".so, compiled invoked the C compiler, failed raised.",
    labelnames=("outcome",),
)
_CC_SECONDS = REGISTRY.histogram(
    "problp_native_cc_seconds",
    "Wall time of cffi compile+link for one kernel module.",
)


class NativeBuildError(RuntimeError):
    """Generating/compiling/loading a native kernel module failed."""


def cache_dir() -> str:
    """The directory generated kernels are compiled into and loaded from."""
    configured = os.environ.get("PROBLP_NATIVE_CACHE")
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "problp", "native")


def _module_name(source: str) -> str:
    digest = hashlib.sha256(
        f"v{CODEGEN_VERSION}\n{KERNEL_CDEF}\n{source}".encode()
    ).hexdigest()
    return f"_problp_tape_{digest[:16]}"


def _extension_suffix() -> str:
    import importlib.machinery

    return importlib.machinery.EXTENSION_SUFFIXES[0]


def _load_extension(name: str, path: str) -> Any:
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise NativeBuildError(f"cannot load native module at {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _compile_into_cache(name: str, cdef: str, source: str) -> str:
    """Compile one module into the cache dir; returns the .so path."""
    try:
        from cffi import FFI
    except ImportError as error:
        _BUILD_TOTAL.labels("failed").inc()
        raise NativeBuildError(f"cffi is not installed: {error}") from error

    directory = cache_dir()
    os.makedirs(directory, exist_ok=True)
    final_path = os.path.join(directory, name + _extension_suffix())
    if os.path.exists(final_path):
        _BUILD_TOTAL.labels("disk_hit").inc()
        return final_path
    workdir = tempfile.mkdtemp(prefix=name + ".", dir=directory)
    started = time.monotonic()
    try:
        ffi = FFI()
        ffi.cdef(cdef)
        ffi.set_source(name, source, extra_compile_args=_COMPILE_ARGS)
        built = ffi.compile(tmpdir=workdir)
        os.replace(built, final_path)
    except NativeBuildError:
        _BUILD_TOTAL.labels("failed").inc()
        raise
    except Exception as error:  # compiler/toolchain failures of any kind
        _BUILD_TOTAL.labels("failed").inc()
        raise NativeBuildError(
            f"native kernel build failed: {type(error).__name__}: {error}"
        ) from error
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    _CC_SECONDS.observe(time.monotonic() - started)
    _BUILD_TOTAL.labels("compiled").inc()
    return final_path


#: Per-process module cache: one load per source hash, builds outside
#: the lock so different tapes compile in parallel.
_MODULE_MEMO: KeyedMemo = KeyedMemo(name="native_module")

_AVAILABILITY_LOCK = threading.Lock()
_availability: bool | None = None
_unavailable_reason: str | None = None


def build_kernel_module(source: str) -> Any:
    """The compiled+loaded cffi module for a generated source (cached).

    Raises :class:`NativeBuildError` when the toolchain is unavailable
    or the build fails; callers treat that as "fall back to numpy".
    """
    name = _module_name(source)
    return _MODULE_MEMO.get(
        name,
        lambda: _load_extension(name, _compile_into_cache(name, KERNEL_CDEF, source)),
    )


def native_available() -> bool:
    """True when native kernels can be built (or loaded) in this process.

    Probes by compiling a trivial module once; the result (and the
    failure reason, see :func:`native_unavailable_reason`) is cached for
    the life of the process.
    """
    global _availability, _unavailable_reason
    with _AVAILABILITY_LOCK:
        if _availability is None:
            probe = f"_problp_probe_{sys.hexversion:x}"
            try:
                _load_extension(
                    probe, _compile_into_cache(probe, _PROBE_CDEF, _PROBE_SOURCE)
                )
                _availability = True
            except Exception as error:
                _availability = False
                _unavailable_reason = str(error)
        return _availability


def native_unavailable_reason() -> str | None:
    """Why native kernels are unavailable, or ``None`` when they work."""
    native_available()
    return _unavailable_reason
