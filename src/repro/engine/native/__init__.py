"""Native compiled-tape backend: fused C kernels for tape replay.

Lowers a compiled :class:`~repro.engine.tape.Tape` (and its
:class:`~repro.engine.tape.BackwardProgram`) to a single fused C
translation unit — float64 forward/backward with lane-blocked,
vectorizable batch loops, exact int64 fixed-point forward/backward, and
the emulated-float (mantissa, exponent) word sweeps with
guard/round/sticky rounding — built via cffi at first use and cached on
disk by content hash. Every kernel reads its parameter table from a
runtime pointer (shared or per-lane), so θ-sweeps replay natively
without recompiling. The numpy executors remain the semantic oracle:
every native kernel is differentially pinned bit-identical to them
(see ``tests/engine/test_native.py``).

The package degrades gracefully: when cffi or a C compiler is missing,
:func:`native_available` is False (with the reason kept) and
:class:`~repro.engine.session.InferenceSession` silently serves from
the numpy executors. Backend choice is a runtime policy — see the
``PROBLP_BACKEND`` environment variable, ``InferenceSession(backend=)``
and the CLI ``--backend`` flag.
"""

from .build import (
    NativeBuildError,
    build_kernel_module,
    cache_dir,
    native_available,
    native_unavailable_reason,
)
from .codegen import CODEGEN_VERSION, generate_source
from .kernels import NativeTapeKernels, native_kernels_for

__all__ = [
    "CODEGEN_VERSION",
    "NativeBuildError",
    "NativeTapeKernels",
    "build_kernel_module",
    "cache_dir",
    "generate_source",
    "native_available",
    "native_kernels_for",
    "native_unavailable_reason",
]
