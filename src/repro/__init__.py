"""ProbLP reproduction: low-precision probabilistic inference.

A from-scratch Python implementation of *ProbLP: A framework for
low-precision probabilistic inference* (Shah, Galindez Olascoaga, Meert,
Verhelst — DAC 2019): worst-case error bounds for arithmetic circuits
under fixed- and floating-point arithmetic, energy-driven representation
selection, and automatic generation of fully pipelined custom hardware —
plus every substrate the paper depends on (Bayesian networks, an AC
compiler, exact quantized arithmetic simulators, benchmark datasets).

Quick start::

    from repro import (
        ProbLP, QueryType, ErrorTolerance, compile_network,
    )
    from repro.bn.networks import alarm_network

    compiled = compile_network(alarm_network())
    framework = ProbLP(compiled, QueryType.MARGINAL,
                       ErrorTolerance.absolute(0.01))
    result = framework.analyze()
    print(result.summary())
    print(framework.generate_hardware(result=result).verilog())
"""

from .ac import ArithmeticCircuit, OpType, binarize
from .arith import (
    FixedPointBackend,
    FixedPointFormat,
    FloatBackend,
    FloatFormat,
)
from .bn import BayesianNetwork, CPT, NaiveBayesClassifier, Variable
from .compile import CompiledCircuit, compile_mpe, compile_network
from .core import (
    ErrorTolerance,
    ProbLP,
    ProbLPConfig,
    ProbLPResult,
    QueryType,
    ToleranceType,
    Workload,
)
from .energy import EnergyModel, PAPER_MODEL
from .engine import (
    InferenceSession,
    Tape,
    TapeAnalysis,
    analysis_for,
    compile_tape,
    session_for,
)
from .errors import (
    InfeasibleFormatError,
    NonBinaryCircuitError,
    ZeroEvidenceError,
)
from .hw import HardwareDesign, check_equivalence, generate_hardware

__version__ = "1.0.0"

__all__ = [
    "ArithmeticCircuit",
    "BayesianNetwork",
    "CPT",
    "CompiledCircuit",
    "EnergyModel",
    "ErrorTolerance",
    "FixedPointBackend",
    "FixedPointFormat",
    "FloatBackend",
    "FloatFormat",
    "HardwareDesign",
    "InfeasibleFormatError",
    "InferenceSession",
    "NaiveBayesClassifier",
    "NonBinaryCircuitError",
    "OpType",
    "Tape",
    "TapeAnalysis",
    "PAPER_MODEL",
    "ProbLP",
    "ProbLPConfig",
    "ProbLPResult",
    "QueryType",
    "ToleranceType",
    "Variable",
    "Workload",
    "ZeroEvidenceError",
    "analysis_for",
    "binarize",
    "check_equivalence",
    "compile_mpe",
    "compile_network",
    "compile_tape",
    "generate_hardware",
    "session_for",
    "__version__",
]
