"""Sum-product network (SPN) node types.

The paper notes that arithmetic circuits "can as well be ... trained
directly from data" — SPNs are exactly that family. An SPN here is a tree
over discrete variables:

* :class:`LeafNode` — a categorical distribution over one variable;
* :class:`ProductNode` — children over *disjoint* scopes (decomposable);
* :class:`SumNode` — weighted mixture of children over the *same* scope
  (smooth), weights on a probability simplex.

A valid SPN is a proper distribution: its λ=1 evaluation is 1, and
evidence evaluation yields marginal probabilities — precisely the AC
semantics ProbLP analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

SPNNode = Union["LeafNode", "ProductNode", "SumNode"]


@dataclass(frozen=True)
class LeafNode:
    """Smoothed categorical distribution over one variable."""

    variable: str
    distribution: tuple[float, ...]

    def __post_init__(self) -> None:
        total = sum(self.distribution)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"leaf over {self.variable!r} must be normalized, "
                f"sums to {total}"
            )
        if any(p < 0.0 for p in self.distribution):
            raise ValueError("leaf probabilities must be non-negative")

    @property
    def scope(self) -> frozenset[str]:
        return frozenset((self.variable,))

    def evaluate(self, evidence: Mapping[str, int]) -> float:
        if self.variable in evidence:
            return self.distribution[evidence[self.variable]]
        return 1.0  # marginalized: Σ_v θ_v λ_v with all λ = 1


@dataclass(frozen=True)
class ProductNode:
    """Decomposable product over disjoint child scopes."""

    children: tuple[SPNNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("product node needs at least two children")
        seen: set[str] = set()
        for child in self.children:
            overlap = child.scope & seen
            if overlap:
                raise ValueError(
                    f"product children share variables {sorted(overlap)}; "
                    f"SPN products must be decomposable"
                )
            seen |= child.scope

    @property
    def scope(self) -> frozenset[str]:
        scope: frozenset[str] = frozenset()
        for child in self.children:
            scope |= child.scope
        return scope

    def evaluate(self, evidence: Mapping[str, int]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.evaluate(evidence)
        return result


@dataclass(frozen=True)
class SumNode:
    """Smooth weighted mixture of same-scope children."""

    weights: tuple[float, ...]
    children: tuple[SPNNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("sum node needs at least two children")
        if len(self.weights) != len(self.children):
            raise ValueError("one weight per child required")
        if abs(sum(self.weights) - 1.0) > 1e-6:
            raise ValueError("sum-node weights must sum to 1")
        if any(w < 0.0 for w in self.weights):
            raise ValueError("sum-node weights must be non-negative")
        first = self.children[0].scope
        for child in self.children[1:]:
            if child.scope != first:
                raise ValueError(
                    "sum children must share one scope (smoothness)"
                )

    @property
    def scope(self) -> frozenset[str]:
        return self.children[0].scope

    def evaluate(self, evidence: Mapping[str, int]) -> float:
        return sum(
            weight * child.evaluate(evidence)
            for weight, child in zip(self.weights, self.children)
        )


def spn_size(node: SPNNode) -> int:
    """Total node count of an SPN tree."""
    if isinstance(node, LeafNode):
        return 1
    return 1 + sum(spn_size(child) for child in node.children)


def spn_depth(node: SPNNode) -> int:
    """Depth of an SPN tree (leaves are 0)."""
    if isinstance(node, LeafNode):
        return 0
    return 1 + max(spn_depth(child) for child in node.children)


def enumerate_scope_states(
    node: SPNNode, cardinalities: Mapping[str, int]
) -> float:
    """Σ over all complete assignments — 1.0 for a valid SPN (tests)."""
    from itertools import product as iter_product

    names = sorted(node.scope)
    cards = [cardinalities[name] for name in names]
    total = 0.0
    for assignment in iter_product(*(range(c) for c in cards)):
        total += node.evaluate(dict(zip(names, assignment)))
    return total
