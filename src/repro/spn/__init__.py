"""Sum-product networks learned directly from data (paper §1, [13]).

LearnSPN-style structure learning plus conversion to arithmetic circuits,
so data-learned models flow through the same ProbLP analysis as
BN-compiled ones.
"""

from .convert import spn_to_circuit
from .learnspn import LearnSPNConfig, g_statistic, learn_spn
from .nodes import (
    LeafNode,
    ProductNode,
    SumNode,
    enumerate_scope_states,
    spn_depth,
    spn_size,
)

__all__ = [
    "LeafNode",
    "LearnSPNConfig",
    "ProductNode",
    "SumNode",
    "enumerate_scope_states",
    "g_statistic",
    "learn_spn",
    "spn_depth",
    "spn_size",
    "spn_to_circuit",
]
