"""LearnSPN-style structure learning from discrete data.

A compact implementation of the Gens & Domingos recursion:

1. single variable → smoothed categorical leaf;
2. try to split the variables into independent groups (pairwise G-test
   against a chi-squared threshold; groups = connected components of the
   dependency graph) → **product node**;
3. otherwise cluster the rows (k-modes with Hamming distance) and recurse
   per cluster → **sum node** with empirical mixture weights;
4. tiny data slices fall back to a fully factorized product of leaves.

The learned SPN is smooth and decomposable by construction, converts to
an arithmetic circuit via :mod:`repro.spn.convert`, and flows through the
unchanged ProbLP analysis — demonstrating that the framework is not tied
to BN-compiled circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .nodes import LeafNode, ProductNode, SPNNode, SumNode


@dataclass(frozen=True)
class LearnSPNConfig:
    """Hyperparameters of the structure learner."""

    min_rows: int = 30  # below this, factorize fully
    independence_alpha: float = 0.001  # G-test significance level
    num_clusters: int = 2
    max_cluster_iterations: int = 10
    alpha: float = 0.5  # Laplace smoothing for leaves and weights
    seed: int = 0


def _smoothed_leaf(
    data: np.ndarray, column: int, variable: str, cardinality: int, alpha: float
) -> LeafNode:
    counts = np.bincount(data[:, column], minlength=cardinality) + alpha
    distribution = counts / counts.sum()
    return LeafNode(variable, tuple(float(p) for p in distribution))


def g_statistic(
    column_a: np.ndarray, column_b: np.ndarray, card_a: int, card_b: int
) -> tuple[float, int]:
    """G-test statistic and degrees of freedom for two discrete columns."""
    n = len(column_a)
    if n == 0:
        return 0.0, 1
    joint = np.zeros((card_a, card_b))
    np.add.at(joint, (column_a, column_b), 1.0)
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    expected = row @ col / n
    mask = joint > 0
    g = 2.0 * float((joint[mask] * np.log(joint[mask] / expected[mask])).sum())
    dof = max((card_a - 1) * (card_b - 1), 1)
    return g, dof


def _independent_groups(
    data: np.ndarray,
    columns: list[int],
    cardinalities: list[int],
    alpha: float,
) -> list[list[int]]:
    """Partition columns into G-test dependency components."""
    from scipy.stats import chi2

    graph = nx.Graph()
    graph.add_nodes_from(range(len(columns)))
    for i in range(len(columns)):
        for j in range(i + 1, len(columns)):
            g, dof = g_statistic(
                data[:, columns[i]],
                data[:, columns[j]],
                cardinalities[i],
                cardinalities[j],
            )
            threshold = chi2.ppf(1.0 - alpha, dof)
            if g > threshold:
                graph.add_edge(i, j)
    return [sorted(component) for component in nx.connected_components(graph)]


def _cluster_rows(
    data: np.ndarray,
    columns: list[int],
    config: LearnSPNConfig,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """k-modes clustering (Hamming distance) over the given columns."""
    view = data[:, columns]
    n = view.shape[0]
    # Initialize centers from *distinct* rows; identical centers would
    # degenerate into a single cluster regardless of the data.
    unique_rows = np.unique(view, axis=0)
    k = min(config.num_clusters, n, len(unique_rows))
    if k < 2:
        return [np.arange(n)]  # all rows identical: nothing to split
    center_rows = rng.choice(len(unique_rows), size=k, replace=False)
    centers = unique_rows[center_rows].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(config.max_cluster_iterations):
        distances = (view[:, None, :] != centers[None, :, :]).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if (new_assignment == assignment).all():
            break
        assignment = new_assignment
        for c in range(k):
            members = view[assignment == c]
            if len(members):
                for j in range(view.shape[1]):
                    values, counts = np.unique(
                        members[:, j], return_counts=True
                    )
                    centers[c, j] = values[counts.argmax()]
    groups = [np.flatnonzero(assignment == c) for c in range(k)]
    return [g for g in groups if len(g)]


def learn_spn(
    data: np.ndarray,
    variables: list[str],
    cardinalities: list[int],
    config: LearnSPNConfig | None = None,
) -> SPNNode:
    """Learn an SPN from a complete integer data matrix.

    Parameters
    ----------
    data:
        ``(n_rows, n_variables)`` integer states.
    variables / cardinalities:
        Names and state counts, aligned with the data columns.
    """
    data = np.asarray(data, dtype=np.int64)
    if data.ndim != 2 or data.shape[1] != len(variables):
        raise ValueError(
            f"data must be (n, {len(variables)}), got {data.shape}"
        )
    if len(variables) != len(cardinalities):
        raise ValueError("variables and cardinalities disagree")
    if data.shape[0] == 0:
        raise ValueError("cannot learn from an empty dataset")
    config = config or LearnSPNConfig()
    rng = np.random.default_rng(config.seed)
    columns = list(range(len(variables)))
    return _learn(data, columns, variables, cardinalities, config, rng)


def _learn(
    data: np.ndarray,
    columns: list[int],
    variables: list[str],
    cardinalities: list[int],
    config: LearnSPNConfig,
    rng: np.random.Generator,
) -> SPNNode:
    if len(columns) == 1:
        column = columns[0]
        return _smoothed_leaf(
            data, column, variables[column], cardinalities[column], config.alpha
        )

    def factorize() -> SPNNode:
        return ProductNode(
            tuple(
                _smoothed_leaf(
                    data, c, variables[c], cardinalities[c], config.alpha
                )
                for c in columns
            )
        )

    if data.shape[0] < config.min_rows:
        return factorize()

    groups = _independent_groups(
        data,
        columns,
        [cardinalities[c] for c in columns],
        config.independence_alpha,
    )
    if len(groups) > 1:
        children = tuple(
            _learn(
                data,
                [columns[i] for i in group],
                variables,
                cardinalities,
                config,
                rng,
            )
            for group in groups
        )
        return ProductNode(children)

    clusters = _cluster_rows(data, columns, config, rng)
    if len(clusters) < 2:
        return factorize()
    children = []
    weights = []
    for rows in clusters:
        children.append(
            _learn(
                data[rows], columns, variables, cardinalities, config, rng
            )
        )
        weights.append(len(rows) + config.alpha)
    total = sum(weights)
    return SumNode(
        tuple(w / total for w in weights),
        tuple(children),
    )
