"""SPN → arithmetic circuit conversion.

Leaves become Σ_v θ_v·λ_v gadgets, sum nodes become weighted sums (the
weights are θ parameters), and product nodes become products. The result
is a standard AC with indicator semantics: evaluating with evidence e
yields the SPN's marginal Pr(e), so the whole ProbLP pipeline — bounds,
representation selection, hardware generation — applies unchanged.
"""

from __future__ import annotations

from ..ac.circuit import ArithmeticCircuit
from .nodes import LeafNode, ProductNode, SPNNode, SumNode


def _convert(node: SPNNode, circuit: ArithmeticCircuit) -> int:
    if isinstance(node, LeafNode):
        terms = []
        for state, probability in enumerate(node.distribution):
            theta = circuit.add_parameter(
                probability, label=f"θ({node.variable}={state})"
            )
            lam = circuit.add_indicator(node.variable, state)
            terms.append(circuit.add_product([theta, lam]))
        return circuit.add_sum(terms)
    if isinstance(node, ProductNode):
        children = [_convert(child, circuit) for child in node.children]
        return circuit.add_product(children)
    if isinstance(node, SumNode):
        terms = []
        for weight, child in zip(node.weights, node.children):
            weight_node = circuit.add_parameter(weight, label="w")
            child_node = _convert(child, circuit)
            terms.append(circuit.add_product([weight_node, child_node]))
        return circuit.add_sum(terms)
    raise TypeError(f"unknown SPN node type {type(node).__name__}")


def spn_to_circuit(spn: SPNNode, name: str = "spn_ac") -> ArithmeticCircuit:
    """Convert an SPN into an arithmetic circuit with λ indicators."""
    circuit = ArithmeticCircuit(name=name, dedup=True)
    circuit.set_root(_convert(spn, circuit))
    return circuit
