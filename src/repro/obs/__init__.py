"""Observability subsystem: metrics registry, tracing, exposition.

Three stdlib-only layers (PR 10):

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters/gauges/histograms with exact, lock-free hot-path bumps
  (per-thread cells; snapshot-time math only) and a Prometheus text
  renderer.  The engine (memo caches, native builds, backend dispatch)
  and the serve layer both register here.
* :mod:`repro.obs.tracing` — ``trace_id``/span context that rides the
  ndJSON protocol, microsecond monotonic timestamps, and the bounded
  span ring behind the slow-query log.
* :mod:`repro.obs.httpd` — the ``--obs-port`` HTTP thread serving
  ``GET /metrics`` and ``GET /healthz``.
"""

from repro.obs.httpd import ObsHttpServer
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    enabled,
    get_registry,
    merge_families,
    render_prometheus,
    set_enabled,
)
from repro.obs.tracing import (
    Span,
    SpanRing,
    Trace,
    new_trace_id,
    now_us,
    parse_trace_field,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsHttpServer",
    "REGISTRY",
    "Span",
    "SpanRing",
    "Trace",
    "enabled",
    "get_registry",
    "merge_families",
    "new_trace_id",
    "now_us",
    "parse_trace_field",
    "render_prometheus",
    "set_enabled",
]
