"""Tiny stdlib HTTP thread serving ``GET /metrics`` and ``GET /healthz``.

``problp serve --obs-port N`` starts one of these next to the ndJSON
listener.  ``/metrics`` returns Prometheus text exposition (for the
sharded front, merged across every replica); ``/healthz`` returns a
small JSON health document.  Both callbacks are supplied by the caller
so this module stays transport-only.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["ObsHttpServer"]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # Callbacks are injected per-server via the type() subclass below.
    render_metrics = staticmethod(lambda: "")
    render_health = staticmethod(lambda: {"ok": True})

    def do_GET(self):  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.render_metrics().encode("utf-8")
                self._reply(200, _PROM_CONTENT_TYPE, body)
            elif path == "/healthz":
                health = self.render_health()
                status = 200 if health.get("ok", False) else 503
                body = json.dumps(health).encode("utf-8")
                self._reply(status, "application/json", body)
            else:
                self._reply(404, "text/plain", b"not found\n")
        except Exception as exc:  # surface, don't kill the thread
            self._reply(500, "text/plain",
                        f"error: {exc}\n".encode("utf-8"))

    def _reply(self, status, content_type, body):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # silence per-request stderr
        pass


class ObsHttpServer:
    """Daemon-thread HTTP server for metrics/health exposition."""

    def __init__(self, render_metrics, render_health=None,
                 host="127.0.0.1", port=0):
        self._render_metrics = render_metrics
        self._render_health = render_health or (lambda: {"ok": True})
        self._host = host
        self._requested_port = port
        self._httpd = None
        self._thread = None

    @property
    def port(self):
        if self._httpd is None:
            raise RuntimeError("obs server not started")
        return self._httpd.server_address[1]

    @property
    def host(self):
        return self._host

    def start(self):
        handler = type("BoundHandler", (_Handler,), {
            "render_metrics": staticmethod(self._render_metrics),
            "render_health": staticmethod(self._render_health),
        })
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="problp-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
