"""Process-wide metrics registry: counters, gauges, histograms.

This is the metrics core of the observability subsystem (PR 10). The
design follows ``serve/metrics.py``'s discipline — the hot path does
only GIL-cheap work, all derived math happens at snapshot time — and
extends it with one more trick so concurrent bumps stay *exact*:

* Every counter/histogram child keeps one mutable cell **per thread**
  (``threading.local``).  A bump is an unshared ``cell.value += n`` —
  no lock, no contention, no lost updates — and a snapshot sums the
  cells.  Totals are therefore exact once the bumping threads are
  quiescent (the 12-thread hammer test pins this).
* Gauges are last-write-wins (``set``) or computed at snapshot time
  (``set_function``); they carry no per-thread state.
* Histograms use fixed upper bounds chosen at registration.  A bump
  is a ``bisect`` plus three cell increments; cumulative bucket counts
  (the Prometheus convention) are computed only when snapshotting.

Snapshots are plain JSON-safe dicts ("families") so they can ride the
ndJSON serving protocol unchanged; :func:`render_prometheus` turns a
family list into Prometheus text exposition format (version 0.0.4).

Everything here is stdlib-only.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping, Sequence

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enabled",
    "merge_families",
    "render_prometheus",
    "set_enabled",
]

#: Version of the snapshot ("family") wire format.  Bumped whenever the
#: shape of ``MetricsRegistry.collect()`` output changes; surfaced by
#: the ``ping`` op so scrapers can detect mismatched fleets.
METRICS_SCHEMA_VERSION = 1

# Process-wide enable flag.  ``set_enabled(False)`` turns every bump
# into a near-free early return; used by the overhead benchmark to
# measure the instrumented-vs-uninstrumented served p50 delta in one
# process.
_ENABLED = True

# Default histogram bounds: 100us .. 10s, roughly log-spaced.  Suits
# both native-kernel executions (sub-millisecond) and cc compiles
# (seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def set_enabled(flag):
    """Globally enable/disable metric collection (hot paths early-out)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled():
    return _ENABLED


class _Cell:
    """One thread's private accumulator for a counter child."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0


class _HistCell:
    """One thread's private accumulator for a histogram child."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self, nbuckets):
        self.buckets = [0] * nbuckets  # per-bound, NOT cumulative
        self.count = 0
        self.total = 0.0


class _Child:
    """Shared plumbing: a lock-guarded list of per-thread cells."""

    __slots__ = ("_cells", "_local", "_lock")

    def __init__(self):
        self._cells = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _cell(self):
        try:
            return self._local.cell
        except AttributeError:
            cell = self._new_cell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
            return cell


class _CounterChild(_Child):
    __slots__ = ()

    def _new_cell(self):
        return _Cell()

    def inc(self, amount=1):
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters can only go up")
        self._cell().value += amount

    @property
    def value(self):
        with self._lock:
            cells = list(self._cells)
        return sum(cell.value for cell in cells)


class _GaugeChild:
    __slots__ = ("_fn", "_value")

    def __init__(self):
        self._value = 0.0
        self._fn = None

    def set(self, value):
        if not _ENABLED:
            return
        self._value = float(value)

    def set_function(self, fn):
        """Compute the gauge at snapshot time via ``fn()``."""
        self._fn = fn

    @property
    def value(self):
        if self._fn is not None:
            return float(self._fn())
        return self._value


class _HistogramChild(_Child):
    __slots__ = ("_bounds",)

    def __init__(self, bounds):
        super().__init__()
        self._bounds = bounds

    def _new_cell(self):
        return _HistCell(len(self._bounds) + 1)

    def observe(self, value):
        if not _ENABLED:
            return
        cell = self._cell()
        cell.buckets[bisect_left(self._bounds, value)] += 1
        cell.count += 1
        cell.total += value

    def snapshot(self):
        """``(cumulative_finite_buckets, total, count)`` summed over cells."""
        with self._lock:
            cells = list(self._cells)
        merged = [0] * (len(self._bounds) + 1)
        total = 0.0
        count = 0
        for cell in cells:
            for i, n in enumerate(cell.buckets):
                merged[i] += n
            total += cell.total
            count += cell.count
        cumulative = []
        running = 0
        for n in merged[:-1]:  # the +Inf bucket is implied by ``count``
            running += n
            cumulative.append(running)
        return cumulative, total, count

    @property
    def count(self):
        return self.snapshot()[2]

    @property
    def sum(self):
        return self.snapshot()[1]


class _Metric:
    """A named family: label names plus one child per label-value tuple."""

    def __init__(self, name, help, labelnames):
        _validate_name(name)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._children = {}
        self._children_lock = threading.Lock()
        self._default = self._make_child() if not self.labelnames else None

    def labels(self, *values, **kwargs):
        if kwargs:
            if values:
                raise ValueError("pass label values or kwargs, not both")
            values = tuple(kwargs[name] for name in self.labelnames)
        values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {values}"
            )
        child = self._children.get(values)
        if child is None:
            with self._children_lock:
                child = self._children.get(values)
                if child is None:
                    child = self._make_child()
                    self._children[values] = child
        return child

    def _items(self):
        if self._default is not None:
            return [((), self._default)]
        with self._children_lock:
            return sorted(self._children.items())

    def collect(self):
        """JSON-safe family dict (the ``metrics`` op wire format)."""
        samples = []
        for values, child in self._items():
            samples.append(self._sample(dict(zip(self.labelnames, values)),
                                         child))
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": samples,
        }


class Counter(_Metric):
    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def _sample(self, labels, child):
        return {"labels": labels, "value": child.value}

    def inc(self, amount=1):
        self._only_default().inc(amount)

    @property
    def value(self):
        return self._only_default().value

    def _only_default(self):
        if self._default is None:
            raise ValueError(f"{self.name} requires .labels(...)")
        return self._default


class Gauge(_Metric):
    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def _sample(self, labels, child):
        return {"labels": labels, "value": child.value}

    def set(self, value):
        self._only_default().set(value)

    def set_function(self, fn):
        self._only_default().set_function(fn)

    @property
    def value(self):
        return self._only_default().value

    def _only_default(self):
        if self._default is None:
            raise ValueError(f"{self.name} requires .labels(...)")
        return self._default


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bounds = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self):
        return _HistogramChild(self._bounds)

    def _sample(self, labels, child):
        cumulative, total, count = child.snapshot()
        return {
            "labels": labels,
            "buckets": [
                [bound, n] for bound, n in zip(self._bounds, cumulative)
            ],
            "sum": total,
            "count": count,
        }

    def observe(self, value):
        self._only_default().observe(value)

    def snapshot(self):
        """``(cumulative_finite_buckets, sum, count)`` of the default
        (unlabeled) child."""
        return self._only_default().snapshot()

    @property
    def count(self):
        return self._only_default().count

    @property
    def sum(self):
        return self._only_default().sum

    def _only_default(self):
        if self._default is None:
            raise ValueError(f"{self.name} requires .labels(...)")
        return self._default


class MetricsRegistry:
    """Named metrics plus snapshot-time collector callbacks.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    registration with the same name returns the same object (and raises
    if the type or labels disagree), so module-level instrumentation in
    the engine can run under re-import and in any order.

    Collectors are zero-arg callables returning an iterable of family
    dicts, evaluated only at :meth:`collect` time — the serve layer uses
    one to expose its existing per-circuit state without paying anything
    on the request path.
    """

    def __init__(self):
        self._metrics = {}
        self._collectors = []
        self._lock = threading.Lock()

    def counter(self, name, help="", labelnames=()):
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def _register(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def register_collector(self, fn):
        with self._lock:
            self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn):
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def collect(self):
        """All families (registered metrics + collectors), name-sorted."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families = [metric.collect() for metric in metrics]
        for fn in collectors:
            families.extend(fn())
        return sorted(families, key=lambda fam: fam["name"])

    def render(self):
        return render_prometheus(self.collect())


def merge_families(tagged: Iterable[tuple[Iterable[Mapping], Mapping]]):
    """Merge several family lists, tagging each list's samples.

    ``tagged`` is ``[(families, extra_labels), ...]``.  Same-name
    families concatenate their samples; each sample gains its list's
    ``extra_labels``.  This is how the sharded front merges replica
    snapshots: labeled concatenation (``shard=…, replica=…``) is a
    lossless Prometheus merge, unlike summing gauges.
    """
    merged: dict[str, dict] = {}
    for families, extra in tagged:
        extra = dict(extra)
        for family in families:
            slot = merged.get(family["name"])
            if slot is None:
                slot = {
                    "name": family["name"],
                    "type": family["type"],
                    "help": family.get("help", ""),
                    "samples": [],
                }
                merged[family["name"]] = slot
            for sample in family["samples"]:
                sample = dict(sample)
                sample["labels"] = {**extra, **sample.get("labels", {})}
                slot["samples"].append(sample)
    return [merged[name] for name in sorted(merged)]


def render_prometheus(families: Iterable[Mapping]) -> str:
    """Render family dicts as Prometheus text exposition (0.0.4)."""
    lines = []
    for family in families:
        name = family["name"]
        _validate_name(name)
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                count = sample["count"]
                for bound, cum in sample["buckets"]:
                    lines.append(_line(
                        name + "_bucket",
                        {**labels, "le": _format_value(bound)},
                        cum,
                    ))
                lines.append(_line(name + "_bucket",
                                   {**labels, "le": "+Inf"}, count))
                lines.append(_line(name + "_sum", labels, sample["sum"]))
                lines.append(_line(name + "_count", labels, count))
            else:
                lines.append(_line(name, labels, sample["value"]))
    return "\n".join(lines) + "\n" if lines else ""


def _line(name, labels, value):
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(str(labels[key]))}"'
            for key in sorted(labels)
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value):
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label(value):
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _escape_help(value):
    return value.replace("\\", "\\\\").replace("\n", "\\n")


_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _validate_name(name):
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric/label name: {name!r}")


#: The process-wide default registry.  Engine and serve instrumentation
#: register here at import time; ``GET /metrics`` and the ``metrics``
#: protocol op read from it.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


# Re-exported for type hints in callers.
Collector = Callable[[], Iterable[Mapping]]
LabelNames = Sequence[str]
