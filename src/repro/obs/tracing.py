"""Request tracing: trace ids, spans, and the bounded span ring.

A trace rides the ndJSON serving protocol as an optional ``"trace"``
request field — ``{"id": "<hex>", "parent": "<span name>"}`` — and
comes back in the response as a compact ``"timing"`` breakdown:

    {"trace_id": "…", "spans": [
        {"name": "front.route", "start_us": …, "end_us": …, …},
        {"name": "shard.replica", "parent": "front.route", …},
        {"name": "batch.wait", "parent": "shard.replica", …},
        …]}

Timestamps are microseconds from ``time.monotonic_ns()``.  On Linux
``CLOCK_MONOTONIC`` is system-wide, so spans stamped in the front
process and in a replica process share one clock and the merged tree
stays monotone — and, being monotonic, NTP steps can't corrupt it.

The :class:`SpanRing` is a bounded in-memory buffer of finished traces;
the server drains it for the ``--slow-ms`` slow-query log.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque

__all__ = [
    "Span",
    "SpanRing",
    "Trace",
    "new_trace_id",
    "now_us",
    "parse_trace_field",
]


def now_us() -> int:
    """Microseconds on the system-wide monotonic clock."""
    return time.monotonic_ns() // 1000


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed step.  ``end_us`` is None until :meth:`end`."""

    __slots__ = ("attrs", "end_us", "name", "parent", "start_us")

    def __init__(self, name, parent=None, start_us=None, **attrs):
        self.name = name
        self.parent = parent
        self.start_us = now_us() if start_us is None else start_us
        self.end_us = None
        self.attrs = attrs

    def end(self, end_us=None):
        if self.end_us is None:
            self.end_us = now_us() if end_us is None else end_us
        return self

    @property
    def duration_us(self):
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def to_dict(self):
        out = {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us if self.end_us is not None
            else self.start_us,
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out.update(self.attrs)
        return out


class Trace:
    """A trace id plus its spans, in creation order.

    ``emit`` distinguishes traces the client asked for (the response
    carries ``"timing"``) from internal ones created only so the
    slow-query ring sees every request when ``--slow-ms`` is set.
    """

    __slots__ = ("emit", "root", "spans", "trace_id")

    def __init__(self, trace_id=None, emit=True):
        self.trace_id = trace_id or new_trace_id()
        self.emit = emit
        self.spans = []
        self.root = None

    def span(self, name, parent=None, **attrs) -> Span:
        """Start a span; default parent is the trace's root span."""
        if parent is None and self.root is not None and (
            name != self.root.name
        ):
            parent = self.root.name
        span = Span(name, parent=parent, **attrs)
        if self.root is None:
            self.root = span
        self.spans.append(span)
        return span

    def to_timing(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "spans": [span.to_dict() for span in self.spans],
        }


def parse_trace_field(value):
    """Validate a wire ``"trace"`` field → dict or None.

    Accepts ``{"id": str, "parent": str}`` (both optional) or the
    shorthand ``True`` (server assigns an id).  Anything else raises
    ``ValueError`` so the protocol layer can answer ``bad_request``.
    """
    if value is None:
        return None
    if value is True:
        return {}
    if not isinstance(value, dict):
        raise ValueError("trace must be an object or true")
    out = {}
    for key in ("id", "parent"):
        item = value.get(key)
        if item is not None:
            if not isinstance(item, str) or len(item) > 128:
                raise ValueError(f"trace.{key} must be a short string")
            out[key] = item
    return out


class SpanRing:
    """Bounded ring of finished-trace summaries (newest last)."""

    def __init__(self, capacity=256):
        self._ring = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def record(self, entry: dict):
        with self._lock:
            self._ring.append(entry)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def __len__(self):
        with self._lock:
            return len(self._ring)
