"""Max-value and min-value analysis (§3.1.4 of the paper).

Both analyses exploit the monotonicity of ACs: every node is a
monotonically increasing function of its inputs, so

* **max-value analysis** — every node attains its maximum when all
  indicators λ are 1; a single upward pass records each node's maximum.
* **min-value analysis** — every node's minimum *non-zero* value is lower
  bounded by the λ=1 evaluation with adders replaced by ``min`` operators
  (a sum that is non-zero under some evidence is at least its smallest
  non-zero term; products multiply the child minima).

The results drive the selection of integer bits ``I`` (fixed point — no
overflow) and exponent bits ``E`` (float — no overflow *or* underflow),
and they quantify ``min Pr(e)`` for conditional-query bounds (eq. 14).

Everything is computed in the log₂ domain: min values of realistic ACs
(e.g. products over 60 Naive Bayes features) sit far below the smallest
positive IEEE double, so a linear-domain pass would silently flush them
to zero and corrupt the exponent-bit selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..engine.tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, tape_for

#: log2 of an identically-zero node's (non-existent) max value.
NEG_INF = float("-inf")
#: log2 marker for "this node is never non-zero" in min analysis.
POS_INF = float("inf")


def _log2_sum_exp2_pair(left: float, right: float) -> float:
    """log2(2^left + 2^right) computed stably."""
    peak = left if left >= right else right
    if peak == NEG_INF:
        return NEG_INF
    return peak + math.log2(2.0 ** (left - peak) + 2.0 ** (right - peak))


def _leaf_log2(
    tape, values: list[float], zero_marker: float
) -> None:
    """Fill λ and θ slots: log₂ of the leaf value, ``zero_marker`` for 0."""
    for slot in tape.indicator_slots:
        values[slot] = 0.0  # λ extreme non-zero value is 1
    for slot, value_id in zip(tape.param_slots, tape.param_ids):
        value = float(tape.param_values[value_id])
        values[slot] = math.log2(value) if value > 0.0 else zero_marker


def max_log2_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ of the maximum attainable value (λ = 1 evaluation).

    ``-inf`` marks identically-zero nodes (e.g. a zero parameter).
    Iterates the circuit's compiled tape; n-ary operators are folded
    pairwise, which is exact for products/max and numerically stable for
    the pairwise log-sum-exp of sums.
    """
    tape = tape_for(circuit)
    values = [NEG_INF] * tape.num_slots
    _leaf_log2(tape, values, NEG_INF)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            values[dest] = _log2_sum_exp2_pair(values[left], values[right])
        elif opcode == OP_PRODUCT:
            values[dest] = values[left] + values[right]
        elif opcode == OP_MAX:
            values[dest] = max(values[left], values[right])
        else:  # OP_COPY
            values[dest] = values[left]
    return values[: tape.num_nodes]


def min_log2_positive_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ lower bound of the minimum non-zero value.

    ``+inf`` marks nodes that are identically zero (they never contribute
    a non-zero value, so they are excluded from sums by the ``min``
    semantics). Indicators contribute their non-zero value, 1.

    Soundness (induction over the DAG): under any evidence, a non-zero sum
    is at least its smallest non-zero child, and a non-zero product is the
    product of non-zero children — in both cases at least the value
    computed here. Pairwise folding preserves both invariants (min is
    associative; an identically-zero factor poisons the whole chain).
    """
    tape = tape_for(circuit)
    values = [POS_INF] * tape.num_slots
    _leaf_log2(tape, values, POS_INF)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_PRODUCT:
            left_value, right_value = values[left], values[right]
            if left_value == POS_INF or right_value == POS_INF:
                values[dest] = POS_INF  # identically-zero factor
            else:
                values[dest] = left_value + right_value
        elif opcode == OP_COPY:
            values[dest] = values[left]
        else:  # SUM and MAX both take the smallest non-zero child
            values[dest] = min(values[left], values[right])
    return values[: tape.num_nodes]


@dataclass(frozen=True)
class ExtremeAnalysis:
    """Bundled extreme-value analysis of one circuit."""

    max_log2: tuple[float, ...]
    min_log2: tuple[float, ...]
    root: int

    @classmethod
    def of(cls, circuit: ArithmeticCircuit) -> "ExtremeAnalysis":
        return cls(
            max_log2=tuple(max_log2_values(circuit)),
            min_log2=tuple(min_log2_positive_values(circuit)),
            root=circuit.root,
        )

    @property
    def root_max_log2(self) -> float:
        """log₂ of the largest possible root value (e.g. max Pr(e))."""
        return self.max_log2[self.root]

    @property
    def root_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero root value."""
        return self.min_log2[self.root]

    @property
    def global_max_log2(self) -> float:
        """log₂ of the largest value any node can take."""
        return max(v for v in self.max_log2 if v != NEG_INF)

    @property
    def global_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero value at any node."""
        finite = [v for v in self.min_log2 if v != POS_INF]
        if not finite:
            raise ValueError("circuit is identically zero everywhere")
        return min(finite)

    def max_value(self, index: int) -> float:
        """Linear-domain max value of a node, clamped away from 0.

        The clamp (2^-500) keeps downstream bound arithmetic sound when
        the true maximum underflows float64: it can only make bounds
        negligibly larger, never smaller.
        """
        value = self.max_log2[index]
        if value == NEG_INF:
            return 0.0
        return 2.0 ** max(value, -500.0)
