"""Max-value and min-value analysis (§3.1.4 of the paper).

Both analyses exploit the monotonicity of ACs: every node is a
monotonically increasing function of its inputs, so

* **max-value analysis** — every node attains its maximum when all
  indicators λ are 1; a single upward pass records each node's maximum.
* **min-value analysis** — every node's minimum *non-zero* value is lower
  bounded by the λ=1 evaluation with adders replaced by ``min`` operators
  (a sum that is non-zero under some evidence is at least its smallest
  non-zero term; products multiply the child minima).

The results drive the selection of integer bits ``I`` (fixed point — no
overflow) and exponent bits ``E`` (float — no overflow *or* underflow),
and they quantify ``min Pr(e)`` for conditional-query bounds (eq. 14).

Everything is computed in the log₂ domain: min values of realistic ACs
(e.g. products over 60 Naive Bayes features) sit far below the smallest
positive IEEE double, so a linear-domain pass would silently flush them
to zero and corrupt the exponent-bit selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType

#: log2 of an identically-zero node's (non-existent) max value.
NEG_INF = float("-inf")
#: log2 marker for "this node is never non-zero" in min analysis.
POS_INF = float("inf")


def _log2_sum_exp2(values: list[float]) -> float:
    """log2(Σ 2^v) computed stably."""
    peak = max(values)
    if peak == NEG_INF:
        return NEG_INF
    return peak + math.log2(sum(2.0 ** (v - peak) for v in values))


def max_log2_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ of the maximum attainable value (λ = 1 evaluation).

    ``-inf`` marks identically-zero nodes (e.g. a zero parameter).
    """
    values = [NEG_INF] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = math.log2(node.value) if node.value > 0.0 else NEG_INF
        elif node.op is OpType.INDICATOR:
            values[index] = 0.0  # λ max is 1
        elif node.op is OpType.SUM:
            values[index] = _log2_sum_exp2([values[c] for c in node.children])
        elif node.op is OpType.PRODUCT:
            values[index] = sum(values[c] for c in node.children)
        else:  # MAX
            values[index] = max(values[c] for c in node.children)
    return values


def min_log2_positive_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ lower bound of the minimum non-zero value.

    ``+inf`` marks nodes that are identically zero (they never contribute
    a non-zero value, so they are excluded from sums by the ``min``
    semantics). Indicators contribute their non-zero value, 1.

    Soundness (induction over the DAG): under any evidence, a non-zero sum
    is at least its smallest non-zero child, and a non-zero product is the
    product of non-zero children — in both cases at least the value
    computed here.
    """
    values = [POS_INF] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            values[index] = math.log2(node.value) if node.value > 0.0 else POS_INF
        elif node.op is OpType.INDICATOR:
            values[index] = 0.0  # min non-zero λ is 1
        elif node.op in (OpType.SUM, OpType.MAX):
            values[index] = min(values[c] for c in node.children)
        else:  # PRODUCT
            child_values = [values[c] for c in node.children]
            if any(v == POS_INF for v in child_values):
                values[index] = POS_INF  # identically-zero factor
            else:
                values[index] = sum(child_values)
    return values


@dataclass(frozen=True)
class ExtremeAnalysis:
    """Bundled extreme-value analysis of one circuit."""

    max_log2: tuple[float, ...]
    min_log2: tuple[float, ...]
    root: int

    @classmethod
    def of(cls, circuit: ArithmeticCircuit) -> "ExtremeAnalysis":
        return cls(
            max_log2=tuple(max_log2_values(circuit)),
            min_log2=tuple(min_log2_positive_values(circuit)),
            root=circuit.root,
        )

    @property
    def root_max_log2(self) -> float:
        """log₂ of the largest possible root value (e.g. max Pr(e))."""
        return self.max_log2[self.root]

    @property
    def root_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero root value."""
        return self.min_log2[self.root]

    @property
    def global_max_log2(self) -> float:
        """log₂ of the largest value any node can take."""
        return max(v for v in self.max_log2 if v != NEG_INF)

    @property
    def global_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero value at any node."""
        finite = [v for v in self.min_log2 if v != POS_INF]
        if not finite:
            raise ValueError("circuit is identically zero everywhere")
        return min(finite)

    def max_value(self, index: int) -> float:
        """Linear-domain max value of a node, clamped away from 0.

        The clamp (2^-500) keeps downstream bound arithmetic sound when
        the true maximum underflows float64: it can only make bounds
        negligibly larger, never smaller.
        """
        value = self.max_log2[index]
        if value == NEG_INF:
            return 0.0
        return 2.0 ** max(value, -500.0)
