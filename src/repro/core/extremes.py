"""Max-value and min-value analysis (§3.1.4 of the paper).

Both analyses exploit the monotonicity of ACs: every node is a
monotonically increasing function of its inputs, so

* **max-value analysis** — every node attains its maximum when all
  indicators λ are 1; a single upward pass records each node's maximum.
* **min-value analysis** — every node's minimum *non-zero* value is lower
  bounded by the λ=1 evaluation with adders replaced by ``min`` operators
  (a sum that is non-zero under some evidence is at least its smallest
  non-zero term; products multiply the child minima).

The results drive the selection of integer bits ``I`` (fixed point — no
overflow) and exponent bits ``E`` (float — no overflow *or* underflow),
and they quantify ``min Pr(e)`` for conditional-query bounds (eq. 14).

Everything is computed in the log₂ domain: min values of realistic ACs
(e.g. products over 60 Naive Bayes features) sit far below the smallest
positive IEEE double, so a linear-domain pass would silently flush them
to zero and corrupt the exponent-bit selection.

Since PR 3 both sweeps replay the circuit's cached, level-scheduled
:class:`~repro.engine.analysis.TapeAnalysis` (vectorized numpy over the
compiled op stream) instead of iterating ops one by one; the frozen
sequential walkers live in :mod:`repro.engine.reference` as the
differential-test oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..ac.circuit import ArithmeticCircuit
from ..engine.analysis import analysis_for

#: log2 of an identically-zero node's (non-existent) max value.
NEG_INF = float("-inf")
#: log2 marker for "this node is never non-zero" in min analysis.
POS_INF = float("inf")


def max_log2_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ of the maximum attainable value (λ = 1 evaluation).

    ``-inf`` marks identically-zero nodes (e.g. a zero parameter).
    Replays the circuit's cached tape analysis; n-ary operators are
    folded pairwise, which is exact for products/max and numerically
    stable for the pairwise log-sum-exp of sums.
    """
    analysis = analysis_for(circuit)
    return analysis.max_log2[: analysis.tape.num_nodes].tolist()


def min_log2_positive_values(circuit: ArithmeticCircuit) -> list[float]:
    """Per-node log₂ lower bound of the minimum non-zero value.

    ``+inf`` marks nodes that are identically zero (they never contribute
    a non-zero value, so they are excluded from sums by the ``min``
    semantics). Indicators contribute their non-zero value, 1.

    Soundness (induction over the DAG): under any evidence, a non-zero sum
    is at least its smallest non-zero child, and a non-zero product is the
    product of non-zero children — in both cases at least the value
    computed here. Pairwise folding preserves both invariants (min is
    associative; an identically-zero factor poisons the whole chain).
    """
    analysis = analysis_for(circuit)
    return analysis.min_log2[: analysis.tape.num_nodes].tolist()


@dataclass(frozen=True)
class ExtremeAnalysis:
    """Bundled extreme-value analysis of one circuit."""

    max_log2: tuple[float, ...]
    min_log2: tuple[float, ...]
    root: int

    @classmethod
    def of(cls, circuit: ArithmeticCircuit) -> "ExtremeAnalysis":
        analysis = analysis_for(circuit)
        num_nodes = analysis.tape.num_nodes
        return cls(
            max_log2=tuple(analysis.max_log2[:num_nodes].tolist()),
            min_log2=tuple(analysis.min_log2[:num_nodes].tolist()),
            root=circuit.root,
        )

    @property
    def root_max_log2(self) -> float:
        """log₂ of the largest possible root value (e.g. max Pr(e))."""
        return self.max_log2[self.root]

    @property
    def root_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero root value."""
        return self.min_log2[self.root]

    @property
    def global_max_log2(self) -> float:
        """log₂ of the largest value any node can take."""
        return max(v for v in self.max_log2 if v != NEG_INF)

    @property
    def global_min_log2(self) -> float:
        """log₂ lower bound of the smallest non-zero value at any node."""
        finite = [v for v in self.min_log2 if v != POS_INF]
        if not finite:
            raise ValueError("circuit is identically zero everywhere")
        return min(finite)

    @cached_property
    def linear_max_values(self) -> tuple[float, ...]:
        """:meth:`max_value` of every node, precomputed once.

        The vectorized bound sweeps consume this as one array instead of
        calling :meth:`max_value` per node per format.
        """
        return tuple(
            0.0 if value == NEG_INF else 2.0 ** max(value, -500.0)
            for value in self.max_log2
        )

    def max_value(self, index: int) -> float:
        """Linear-domain max value of a node, clamped away from 0.

        The clamp (2^-500) keeps downstream bound arithmetic sound when
        the true maximum underflows float64: it can only make bounds
        negligibly larger, never smaller.
        """
        value = self.max_log2[index]
        if value == NEG_INF:
            return 0.0
        return 2.0 ** max(value, -500.0)
