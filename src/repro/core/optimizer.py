"""Bit-width search and representation selection (§3.3, Figure 2).

Following the paper, the optimizer starts at 2 fraction (resp. mantissa)
bits and increments until the query-level error bound meets the user
tolerance, capped at ``max_bits`` (Table 2 reports such failures as
``>64``). It then derives the integer bits I (fixed) or exponent bits E
(float) from max-/min-value analysis — including the quantization error
margins, so the no-overflow/no-underflow preconditions of the error
models hold for the *quantized* values, not just the real ones. Finally
it prices both representations with the energy model and selects the
cheaper feasible one.

Two things changed in PR 3:

* the search is **tape-native** — all candidate fixed precisions
  propagate in one vectorized batched replay of the circuit's cached
  :class:`~repro.engine.analysis.TapeAnalysis`
  (:func:`repro.core.bounds.propagate_fixed_bounds_batch`) instead of
  one op-stream walk per precision;
* the search is **workload-aware** — a :class:`Workload` spec selects
  between the classic root-query bounds (``Workload.JOINT``, one upward
  evaluation per query) and the adjoint
  :meth:`~repro.core.bounds.AdjointFloatBounds.posterior_bound`
  (``Workload.MARGINALS``, the batched all-marginals backward sweep the
  engine serves), so formats are picked for the queries the session
  will actually run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import cached_property

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode
from ..energy.estimate import circuit_energy_nj
from ..energy.models import EnergyModel, PAPER_MODEL
from ..errors import InfeasibleFormatError, NonBinaryCircuitError
from .bounds import (
    AdjointFloatBounds,
    FloatBounds,
    propagate_adjoint_float_counts,
    propagate_fixed_bounds_batch,
    propagate_float_counts,
)
from .extremes import ExtremeAnalysis
from .queries import (
    QuerySpec,
    ToleranceType,
    fixed_query_bound_from_delta,
    float_query_bound,
)

#: Fewest fraction/mantissa bits the search considers (paper §3.3).
MIN_PRECISION_BITS = 2
#: Default search cap; Table 2 prints ``>64`` when it is exceeded.
DEFAULT_MAX_PRECISION_BITS = 64
#: Cap on exponent bits (far beyond any practical requirement).
MAX_EXPONENT_BITS = 64


class Workload(Enum):
    """What the session will serve with the chosen format.

    * ``JOINT`` — joint-evaluation queries (one upward sweep per query);
      bounds come from root-query error propagation, the paper's §3.2
      setting.
    * ``MARGINALS`` — batched posterior-marginal queries (one upward plus
      one downward sweep); bounds come from the adjoint factor counts of
      the backward program
      (:meth:`~repro.core.bounds.AdjointFloatBounds.posterior_bound`).
    """

    JOINT = "joint"
    MARGINALS = "marginals"

    @classmethod
    def coerce(cls, value: "Workload | str") -> "Workload":
        if isinstance(value, Workload):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(workload.value for workload in cls)
            raise ValueError(
                f"workload must be one of: {choices}; got {value!r}"
            ) from None


@dataclass(frozen=True)
class CircuitAnalysis:
    """Precomputed, precision-independent analysis of a binary circuit.

    A thin, query-oriented view over the engine's cached
    :class:`~repro.engine.analysis.TapeAnalysis`: constructing a second
    ``CircuitAnalysis`` of the same circuit reuses every sweep.
    """

    circuit: ArithmeticCircuit
    extremes: ExtremeAnalysis
    float_counts: FloatBounds

    @classmethod
    def of(cls, circuit: ArithmeticCircuit) -> "CircuitAnalysis":
        if not circuit.is_binary:
            raise NonBinaryCircuitError(
                "CircuitAnalysis requires a binary circuit; apply "
                "repro.ac.transform.binarize first"
            )
        return cls(
            circuit=circuit,
            extremes=ExtremeAnalysis.of(circuit),
            float_counts=propagate_float_counts(circuit),
        )

    @cached_property
    def adjoint(self) -> AdjointFloatBounds | None:
        """Adjoint factor counts for the posterior-marginal workload.

        ``None`` for MPE (max) circuits, whose backward sweep is
        undefined.
        """
        from ..engine.tape import tape_for

        if tape_for(self.circuit).has_max:
            return None
        return propagate_adjoint_float_counts(self.circuit)


@dataclass(frozen=True)
class RepresentationOption:
    """One candidate representation with its feasibility and price."""

    kind: str  # "fixed" or "float"
    fmt: FixedPointFormat | FloatFormat | None
    feasible: bool
    query_bound: float | None
    energy_nj: float | None
    search_cap: int
    infeasible_reason: str | None = None

    def describe(self) -> str:
        if not self.feasible:
            detail = self.infeasible_reason or f">{self.search_cap} bits"
            return f"{self.kind}: infeasible ({detail})"
        if isinstance(self.fmt, FixedPointFormat):
            shape = f"I={self.fmt.integer_bits}, F={self.fmt.fraction_bits}"
        else:
            shape = f"E={self.fmt.exponent_bits}, M={self.fmt.mantissa_bits}"
        return f"{self.kind}({shape}), energy {self.energy_nj:.3g} nJ/eval"


def _infeasible(
    kind: str, search_cap: int, reason: str
) -> RepresentationOption:
    return RepresentationOption(
        kind=kind,
        fmt=None,
        feasible=False,
        query_bound=None,
        energy_nj=None,
        search_cap=search_cap,
        infeasible_reason=reason,
    )


def _integer_bits_from_deltas(
    extremes: ExtremeAnalysis, deltas: np.ndarray
) -> int:
    """Smallest I covering every quantized node value (shared helper)."""
    largest = float(
        np.max(np.asarray(extremes.linear_max_values) + deltas)
    )
    # Indicators are 1.0 even if parameters are all smaller.
    largest = max(largest, 1.0)
    return max(1, math.floor(math.log2(largest)) + 1)


def required_integer_bits(
    analysis: CircuitAnalysis,
    fraction_bits: int,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> int:
    """Smallest I such that no quantized node value can overflow.

    Accounts for the error bound: quantized values can exceed the real
    maxima by the per-node absolute error.
    """
    batch = propagate_fixed_bounds_batch(
        analysis.circuit, (fraction_bits,), rounding, analysis.extremes
    )
    return _integer_bits_from_deltas(analysis.extremes, batch.deltas[:, 0])


def required_exponent_bits(
    analysis: CircuitAnalysis,
    mantissa_bits: int,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> int:
    """Smallest E avoiding overflow and underflow of quantized values.

    Quantized node values lie within ``v·(1±δ)`` of the real extremes,
    where δ is the root relative bound (factor counts are monotone toward
    the root, so the root count dominates every node). One extra exponent
    of safety margin is added on each side.
    """
    from .errormodels import FloatErrorModel

    model = FloatErrorModel(mantissa_bits=mantissa_bits, rounding=rounding)
    count = analysis.float_counts.root_count
    upper_margin = count * math.log1p(model.epsilon) / math.log(2.0)
    lower_margin = -count * math.log1p(-model.epsilon) / math.log(2.0)

    needed_max = math.floor(analysis.extremes.global_max_log2 + upper_margin) + 1
    needed_min = math.floor(analysis.extremes.global_min_log2 - lower_margin) - 1
    # λ leaves are exactly 1.0; the format must represent it.
    needed_max = max(needed_max, 0)
    needed_min = min(needed_min, 0)

    for exponent_bits in range(2, MAX_EXPONENT_BITS + 1):
        half = 1 << (exponent_bits - 1)
        min_exponent = 2 - half
        max_exponent = half
        if min_exponent <= needed_min and max_exponent >= needed_max:
            return exponent_bits
    raise ValueError(
        f"no exponent width up to {MAX_EXPONENT_BITS} covers "
        f"[{needed_min}, {needed_max}]"
    )


def search_fixed_format(
    analysis: CircuitAnalysis,
    spec: QuerySpec,
    max_bits: int = DEFAULT_MAX_PRECISION_BITS,
    variant: str = "rigorous",
    energy_model: EnergyModel = PAPER_MODEL,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    workload: Workload | str = Workload.JOINT,
) -> RepresentationOption:
    """Find the cheapest feasible fixed-point format for a query spec.

    All candidate precisions (``2..max_bits``) propagate in a single
    vectorized tape replay; the loop below only compares precomputed
    root bounds against the tolerance.
    """
    from .queries import QueryType

    workload = Workload.coerce(workload)
    if workload is Workload.MARGINALS:
        # Posterior marginals are normalized by a division, so absolute
        # fixed-point bounds do not survive into the output — mirror the
        # paper's §3.2.2 conditional-query policy and always use float.
        return _infeasible(
            "fixed",
            max_bits,
            "posterior-marginals workload excluded by policy "
            "(normalizing division)",
        )
    if (
        spec.query is QueryType.CONDITIONAL
        and spec.tolerance.kind is ToleranceType.RELATIVE
    ):
        # §3.2.2: the bound denominator Pr(e)·Pr(q|e) is unquantifiable;
        # ProbLP always chooses float for this combination.
        return _infeasible(
            "fixed", max_bits, "conditional+relative excluded by policy"
        )

    candidates = range(MIN_PRECISION_BITS, max_bits + 1)
    batch = propagate_fixed_bounds_batch(
        analysis.circuit, candidates, rounding, analysis.extremes
    )
    root_bounds = batch.root_bounds
    for index, fraction_bits in enumerate(candidates):
        query_bound = fixed_query_bound_from_delta(
            spec.query,
            spec.tolerance.kind,
            float(root_bounds[index]),
            analysis.extremes,
            variant,
        )
        if query_bound <= spec.tolerance.value:
            integer_bits = _integer_bits_from_deltas(
                analysis.extremes, batch.deltas[:, index]
            )
            fmt = FixedPointFormat(integer_bits, fraction_bits, rounding)
            energy = circuit_energy_nj(analysis.circuit, fmt, energy_model)
            return RepresentationOption(
                kind="fixed",
                fmt=fmt,
                feasible=True,
                query_bound=query_bound,
                energy_nj=energy,
                search_cap=max_bits,
            )
    return _infeasible(
        "fixed", max_bits, f"needs more than {max_bits} fraction bits"
    )


def search_float_format(
    analysis: CircuitAnalysis,
    spec: QuerySpec,
    max_bits: int = DEFAULT_MAX_PRECISION_BITS,
    variant: str = "rigorous",
    energy_model: EnergyModel = PAPER_MODEL,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    workload: Workload | str = Workload.JOINT,
) -> RepresentationOption:
    """Find the cheapest feasible floating-point format for a query spec.

    Under ``Workload.MARGINALS`` the bound driving the search is the
    adjoint :meth:`~repro.core.bounds.AdjointFloatBounds.posterior_bound`
    — the worst-case error of any normalized posterior marginal served
    by the quantized backward sweep — instead of the root-query bound;
    it bounds the relative *and* absolute posterior error (posteriors
    are ≤ 1), so it is compared against either tolerance kind. The
    exponent width gets one extra bit of headroom because downward
    intermediates can undershoot the upward minimum.
    """
    workload = Workload.coerce(workload)
    adjoint = None
    if workload is Workload.MARGINALS:
        adjoint = analysis.adjoint
        if adjoint is None:
            raise ValueError(
                "MPE (max) circuits have no posterior-marginals workload; "
                "use Workload.JOINT"
            )
    for mantissa_bits in range(MIN_PRECISION_BITS, max_bits + 1):
        if adjoint is not None:
            query_bound = adjoint.posterior_bound(mantissa_bits, rounding)
        else:
            query_bound = float_query_bound(
                spec.query,
                spec.tolerance.kind,
                analysis.float_counts,
                analysis.extremes,
                mantissa_bits,
                variant,
                rounding,
            )
        if query_bound <= spec.tolerance.value:
            exponent_bits = required_exponent_bits(
                analysis, mantissa_bits, rounding
            )
            if adjoint is not None:
                exponent_bits += 1  # downward-sweep underflow headroom
            fmt = FloatFormat(exponent_bits, mantissa_bits, rounding)
            energy = circuit_energy_nj(analysis.circuit, fmt, energy_model)
            return RepresentationOption(
                kind="float",
                fmt=fmt,
                feasible=True,
                query_bound=query_bound,
                energy_nj=energy,
                search_cap=max_bits,
            )
    return _infeasible(
        "float", max_bits, f"needs more than {max_bits} mantissa bits"
    )


@dataclass(frozen=True)
class SelectionResult:
    """Both candidate representations plus the energy-based choice."""

    fixed: RepresentationOption
    float_: RepresentationOption
    selected: RepresentationOption
    reason: str


def select_representation(
    fixed: RepresentationOption, float_: RepresentationOption
) -> SelectionResult:
    """Pick the lower-energy feasible representation (paper Figure 2).

    Raises the typed :class:`~repro.errors.InfeasibleFormatError` when
    neither representation fits within the search cap (Table 2's
    ``>64`` rows).
    """
    if fixed.feasible and float_.feasible:
        if fixed.energy_nj <= float_.energy_nj:
            winner, reason = fixed, (
                f"fixed is cheaper ({fixed.energy_nj:.3g} vs "
                f"{float_.energy_nj:.3g} nJ)"
            )
        else:
            winner, reason = float_, (
                f"float is cheaper ({float_.energy_nj:.3g} vs "
                f"{fixed.energy_nj:.3g} nJ)"
            )
    elif fixed.feasible:
        winner, reason = fixed, "float infeasible"
    elif float_.feasible:
        winner, reason = float_, (
            f"fixed infeasible ({fixed.infeasible_reason})"
        )
    else:
        raise InfeasibleFormatError(
            fixed.infeasible_reason, float_.infeasible_reason
        )
    return SelectionResult(fixed=fixed, float_=float_, selected=winner, reason=reason)
