"""Bit-width search and representation selection (§3.3, Figure 2).

Following the paper, the optimizer starts at 2 fraction (resp. mantissa)
bits and increments until the query-level error bound meets the user
tolerance, capped at ``max_bits`` (Table 2 reports such failures as
``>64``). It then derives the integer bits I (fixed) or exponent bits E
(float) from max-/min-value analysis — including the quantization error
margins, so the no-overflow/no-underflow preconditions of the error
models hold for the *quantized* values, not just the real ones. Finally
it prices both representations with the energy model and selects the
cheaper feasible one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode
from ..energy.estimate import circuit_energy_nj
from ..energy.models import EnergyModel, PAPER_MODEL
from .bounds import (
    FloatBounds,
    propagate_fixed_bounds,
    propagate_float_counts,
)
from .errormodels import FloatErrorModel
from .extremes import ExtremeAnalysis
from .queries import (
    QuerySpec,
    ToleranceType,
    fixed_query_bound,
    float_query_bound,
)

#: Fewest fraction/mantissa bits the search considers (paper §3.3).
MIN_PRECISION_BITS = 2
#: Default search cap; Table 2 prints ``>64`` when it is exceeded.
DEFAULT_MAX_PRECISION_BITS = 64
#: Cap on exponent bits (far beyond any practical requirement).
MAX_EXPONENT_BITS = 64


@dataclass(frozen=True)
class CircuitAnalysis:
    """Precomputed, precision-independent analysis of a binary circuit."""

    circuit: ArithmeticCircuit
    extremes: ExtremeAnalysis
    float_counts: FloatBounds

    @classmethod
    def of(cls, circuit: ArithmeticCircuit) -> "CircuitAnalysis":
        if not circuit.is_binary:
            raise ValueError(
                "CircuitAnalysis requires a binary circuit; apply "
                "repro.ac.transform.binarize first"
            )
        return cls(
            circuit=circuit,
            extremes=ExtremeAnalysis.of(circuit),
            float_counts=propagate_float_counts(circuit),
        )


@dataclass(frozen=True)
class RepresentationOption:
    """One candidate representation with its feasibility and price."""

    kind: str  # "fixed" or "float"
    fmt: FixedPointFormat | FloatFormat | None
    feasible: bool
    query_bound: float | None
    energy_nj: float | None
    search_cap: int
    infeasible_reason: str | None = None

    def describe(self) -> str:
        if not self.feasible:
            detail = self.infeasible_reason or f">{self.search_cap} bits"
            return f"{self.kind}: infeasible ({detail})"
        if isinstance(self.fmt, FixedPointFormat):
            shape = f"I={self.fmt.integer_bits}, F={self.fmt.fraction_bits}"
        else:
            shape = f"E={self.fmt.exponent_bits}, M={self.fmt.mantissa_bits}"
        return f"{self.kind}({shape}), energy {self.energy_nj:.3g} nJ/eval"


def required_integer_bits(
    analysis: CircuitAnalysis,
    fraction_bits: int,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> int:
    """Smallest I such that no quantized node value can overflow.

    Accounts for the error bound: quantized values can exceed the real
    maxima by the per-node absolute error.
    """
    from .errormodels import FixedErrorModel

    bounds = propagate_fixed_bounds(
        analysis.circuit,
        FixedErrorModel(fraction_bits=fraction_bits, rounding=rounding),
        analysis.extremes,
    )
    largest = 0.0
    for index in range(len(analysis.circuit)):
        value = analysis.extremes.max_value(index) + bounds.per_node[index]
        largest = max(largest, value)
    # Indicators are 1.0 even if parameters are all smaller.
    largest = max(largest, 1.0)
    return max(1, math.floor(math.log2(largest)) + 1)


def required_exponent_bits(
    analysis: CircuitAnalysis,
    mantissa_bits: int,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> int:
    """Smallest E avoiding overflow and underflow of quantized values.

    Quantized node values lie within ``v·(1±δ)`` of the real extremes,
    where δ is the root relative bound (factor counts are monotone toward
    the root, so the root count dominates every node). One extra exponent
    of safety margin is added on each side.
    """
    model = FloatErrorModel(mantissa_bits=mantissa_bits, rounding=rounding)
    count = analysis.float_counts.root_count
    upper_margin = count * math.log1p(model.epsilon) / math.log(2.0)
    lower_margin = -count * math.log1p(-model.epsilon) / math.log(2.0)

    needed_max = math.floor(analysis.extremes.global_max_log2 + upper_margin) + 1
    needed_min = math.floor(analysis.extremes.global_min_log2 - lower_margin) - 1
    # λ leaves are exactly 1.0; the format must represent it.
    needed_max = max(needed_max, 0)
    needed_min = min(needed_min, 0)

    for exponent_bits in range(2, MAX_EXPONENT_BITS + 1):
        half = 1 << (exponent_bits - 1)
        min_exponent = 2 - half
        max_exponent = half
        if min_exponent <= needed_min and max_exponent >= needed_max:
            return exponent_bits
    raise ValueError(
        f"no exponent width up to {MAX_EXPONENT_BITS} covers "
        f"[{needed_min}, {needed_max}]"
    )


def search_fixed_format(
    analysis: CircuitAnalysis,
    spec: QuerySpec,
    max_bits: int = DEFAULT_MAX_PRECISION_BITS,
    variant: str = "rigorous",
    energy_model: EnergyModel = PAPER_MODEL,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> RepresentationOption:
    """Find the cheapest feasible fixed-point format for a query spec."""
    from .errormodels import FixedErrorModel
    from .queries import QueryType

    if (
        spec.query is QueryType.CONDITIONAL
        and spec.tolerance.kind is ToleranceType.RELATIVE
    ):
        # §3.2.2: the bound denominator Pr(e)·Pr(q|e) is unquantifiable;
        # ProbLP always chooses float for this combination.
        return RepresentationOption(
            kind="fixed",
            fmt=None,
            feasible=False,
            query_bound=None,
            energy_nj=None,
            search_cap=max_bits,
            infeasible_reason="conditional+relative excluded by policy",
        )

    for fraction_bits in range(MIN_PRECISION_BITS, max_bits + 1):
        bounds = propagate_fixed_bounds(
            analysis.circuit,
            FixedErrorModel(fraction_bits=fraction_bits, rounding=rounding),
            analysis.extremes,
        )
        query_bound = fixed_query_bound(
            spec.query, spec.tolerance.kind, bounds, analysis.extremes, variant
        )
        if query_bound <= spec.tolerance.value:
            integer_bits = required_integer_bits(
                analysis, fraction_bits, rounding
            )
            fmt = FixedPointFormat(integer_bits, fraction_bits, rounding)
            energy = circuit_energy_nj(analysis.circuit, fmt, energy_model)
            return RepresentationOption(
                kind="fixed",
                fmt=fmt,
                feasible=True,
                query_bound=query_bound,
                energy_nj=energy,
                search_cap=max_bits,
            )
    return RepresentationOption(
        kind="fixed",
        fmt=None,
        feasible=False,
        query_bound=None,
        energy_nj=None,
        search_cap=max_bits,
        infeasible_reason=f"needs more than {max_bits} fraction bits",
    )


def search_float_format(
    analysis: CircuitAnalysis,
    spec: QuerySpec,
    max_bits: int = DEFAULT_MAX_PRECISION_BITS,
    variant: str = "rigorous",
    energy_model: EnergyModel = PAPER_MODEL,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> RepresentationOption:
    """Find the cheapest feasible floating-point format for a query spec."""
    for mantissa_bits in range(MIN_PRECISION_BITS, max_bits + 1):
        query_bound = float_query_bound(
            spec.query,
            spec.tolerance.kind,
            analysis.float_counts,
            analysis.extremes,
            mantissa_bits,
            variant,
            rounding,
        )
        if query_bound <= spec.tolerance.value:
            exponent_bits = required_exponent_bits(
                analysis, mantissa_bits, rounding
            )
            fmt = FloatFormat(exponent_bits, mantissa_bits, rounding)
            energy = circuit_energy_nj(analysis.circuit, fmt, energy_model)
            return RepresentationOption(
                kind="float",
                fmt=fmt,
                feasible=True,
                query_bound=query_bound,
                energy_nj=energy,
                search_cap=max_bits,
            )
    return RepresentationOption(
        kind="float",
        fmt=None,
        feasible=False,
        query_bound=None,
        energy_nj=None,
        search_cap=max_bits,
        infeasible_reason=f"needs more than {max_bits} mantissa bits",
    )


@dataclass(frozen=True)
class SelectionResult:
    """Both candidate representations plus the energy-based choice."""

    fixed: RepresentationOption
    float_: RepresentationOption
    selected: RepresentationOption
    reason: str


def select_representation(
    fixed: RepresentationOption, float_: RepresentationOption
) -> SelectionResult:
    """Pick the lower-energy feasible representation (paper Figure 2)."""
    if fixed.feasible and float_.feasible:
        if fixed.energy_nj <= float_.energy_nj:
            winner, reason = fixed, (
                f"fixed is cheaper ({fixed.energy_nj:.3g} vs "
                f"{float_.energy_nj:.3g} nJ)"
            )
        else:
            winner, reason = float_, (
                f"float is cheaper ({float_.energy_nj:.3g} vs "
                f"{fixed.energy_nj:.3g} nJ)"
            )
    elif fixed.feasible:
        winner, reason = fixed, "float infeasible"
    elif float_.feasible:
        winner, reason = float_, (
            f"fixed infeasible ({fixed.infeasible_reason})"
        )
    else:
        raise ValueError(
            "no feasible representation within the search cap: "
            f"fixed: {fixed.infeasible_reason}; "
            f"float: {float_.infeasible_reason}"
        )
    return SelectionResult(fixed=fixed, float_=float_, selected=winner, reason=reason)
