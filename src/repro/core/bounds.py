"""Error-bound propagation over an AC (§3.1.3, Figure 3).

The per-node error models of :mod:`repro.core.errormodels` output bounds
in the same form as their inputs, so a single forward sweep propagates the
error from the leaves to the root:

* fixed point — a per-node bound ``Δᵢ`` on the absolute error; the root
  bound has the form ``Δf ≤ c`` for a constant depending on the AC, its
  parameters and F;
* floating point — a per-node count ``cᵢ`` of ``(1±ε)`` factors; the root
  satisfies ``f̃ = f(1±ε)^c``, i.e. a relative error bound.

Propagation requires a **binary** circuit: each 2-input operator is one
hardware rounding. Bounds computed on any other decomposition would not
describe the generated hardware
(:class:`~repro.errors.NonBinaryCircuitError` otherwise).

Since PR 3 every propagation — forward fixed deltas (for *batches* of
candidate precisions at once), forward float counts, and the adjoint
counts of the backward program — replays the circuit's cached,
level-scheduled :class:`~repro.engine.analysis.TapeAnalysis` with
vectorized numpy instead of iterating the op stream in Python, so the
bound analysis, the §3.3 format search and the simulated hardware are
structurally guaranteed to walk identical operator DAGs. The frozen
sequential walkers live in :mod:`repro.engine.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..engine.analysis import TapeAnalysis, analysis_for
from ..errors import NonBinaryCircuitError
from .errormodels import FixedErrorModel, FloatErrorModel
from .extremes import ExtremeAnalysis


def _binary_analysis(circuit: ArithmeticCircuit) -> TapeAnalysis:
    if not circuit.is_binary:
        raise NonBinaryCircuitError(
            "bound propagation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    return analysis_for(circuit)


@dataclass(frozen=True)
class FixedBounds:
    """Result of fixed-point bound propagation."""

    fraction_bits: int
    per_node: tuple[float, ...]
    root: int

    @property
    def root_bound(self) -> float:
        """Worst-case absolute error of a single AC evaluation."""
        return self.per_node[self.root]


def propagate_fixed_bounds(
    circuit: ArithmeticCircuit,
    model: FixedErrorModel | FixedPointFormat | int,
    extremes: ExtremeAnalysis | None = None,
) -> FixedBounds:
    """Propagate absolute-error bounds for fixed-point arithmetic.

    ``model`` may be an error model, a format, or a raw fraction-bit
    count. ``extremes`` (max-value analysis) is computed on demand; pass
    it in when analyzing many precisions of the same circuit — or use
    :func:`propagate_fixed_bounds_batch` to run all precisions in one
    vectorized replay.
    """
    analysis = _binary_analysis(circuit)
    if isinstance(model, FixedPointFormat):
        model = FixedErrorModel.for_format(model)
    elif isinstance(model, int):
        model = FixedErrorModel(fraction_bits=model)
    if extremes is None:
        extremes = ExtremeAnalysis.of(circuit)

    # Binary circuits compile with no scratch slots, so tape slots are
    # exactly the circuit's node indices (and extremes indices).
    deltas = analysis.fixed_deltas(
        np.asarray([model.rounding_error]),
        np.asarray(extremes.linear_max_values),
    )[:, 0]
    return FixedBounds(
        fraction_bits=model.fraction_bits,
        per_node=tuple(deltas.tolist()),
        root=circuit.root,
    )


@dataclass(frozen=True)
class FixedBoundsBatch:
    """Fixed-point bounds of many precisions from one vectorized replay.

    ``deltas[i, j]`` is the absolute-error bound of node ``i`` at
    ``fraction_bits[j]`` — each column bit-identical to the scalar
    propagation at that precision. This is the §3.3 search's hot loop
    collapsed into a single scheduled sweep.
    """

    fraction_bits: tuple[int, ...]
    deltas: np.ndarray
    root: int

    @property
    def root_bounds(self) -> np.ndarray:
        """Worst-case root error per candidate precision."""
        return self.deltas[self.root]

    def bounds_for(self, index: int) -> FixedBounds:
        """The classic :class:`FixedBounds` view of one candidate."""
        return FixedBounds(
            fraction_bits=self.fraction_bits[index],
            per_node=tuple(self.deltas[:, index].tolist()),
            root=self.root,
        )


def propagate_fixed_bounds_batch(
    circuit: ArithmeticCircuit,
    fraction_bits: "list[int] | tuple[int, ...] | range",
    rounding=None,
    extremes: ExtremeAnalysis | None = None,
) -> FixedBoundsBatch:
    """Propagate fixed-point bounds for a whole batch of precisions."""
    from ..arith.rounding import RoundingMode

    analysis = _binary_analysis(circuit)
    if extremes is None:
        extremes = ExtremeAnalysis.of(circuit)
    rounding = rounding or RoundingMode.NEAREST_EVEN
    bits = tuple(int(b) for b in fraction_bits)
    rounding_errors = np.asarray(
        [
            FixedErrorModel(fraction_bits=b, rounding=rounding).rounding_error
            for b in bits
        ]
    )
    deltas = analysis.fixed_deltas(
        rounding_errors, np.asarray(extremes.linear_max_values)
    )
    return FixedBoundsBatch(
        fraction_bits=bits, deltas=deltas, root=circuit.root
    )


@dataclass(frozen=True)
class FloatBounds:
    """Result of floating-point factor-count propagation.

    The factor counts depend only on circuit *structure*, so one
    propagation serves every mantissa width; bind ε afterwards with
    :meth:`relative_bound`.
    """

    per_node: tuple[int, ...]
    root: int

    @property
    def root_count(self) -> int:
        """The structural constant c in f̃ = f(1±ε)^c."""
        return self.per_node[self.root]

    def relative_bound(self, mantissa_bits: int, rounding=None) -> float:
        """(1+ε)^c − 1 at the root for a given mantissa width."""
        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        return model.relative_bound(self.root_count)


def propagate_float_counts(circuit: ArithmeticCircuit) -> FloatBounds:
    """Propagate (1±ε) factor counts for floating-point arithmetic."""
    analysis = _binary_analysis(circuit)
    counts = analysis.forward_counts[: analysis.tape.num_nodes]
    return FloatBounds(per_node=tuple(counts.tolist()), root=circuit.root)


@dataclass(frozen=True)
class AdjointFloatBounds:
    """Float factor counts of the *downward* (derivative) pass.

    ``per_node[i]`` is the count c with ``∂̃f/∂v_i = ∂f/∂v_i (1±ε)^c``
    when both sweeps run in quantized float arithmetic (the engine's
    backward executors); ``indicator_counts`` projects it onto the λ
    leaves, whose adjoints are exactly the joints ``Pr(x, e \\ X)`` of
    the differential approach.
    """

    per_node: tuple[int, ...]
    indicator_counts: "dict[tuple[str, int], int]"

    @property
    def max_indicator_count(self) -> int:
        """The worst factor count over all joint-marginal outputs."""
        return max(self.indicator_counts.values(), default=0)

    def posterior_bound(self, mantissa_bits: int, rounding=None) -> float:
        """Worst-case error of any normalized posterior marginal.

        Every quantized joint satisfies ``j̃ = j(1±ε)^c`` with
        ``c ≤ max_indicator_count``; the normalizing denominator is a
        same-sign float64 sum of such joints, so its relative error obeys
        the same count. The ratio is therefore bounded by
        ``(1+ε)^c / (1−ε)^c − 1`` relative — which also bounds the
        absolute error, since posteriors are at most 1.
        """
        import math

        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        count = self.max_indicator_count
        return math.expm1(
            count * (math.log1p(model.epsilon) - math.log1p(-model.epsilon))
        )


def propagate_adjoint_float_counts(
    circuit: ArithmeticCircuit,
) -> AdjointFloatBounds:
    """Propagate (1±ε) factor counts through the backward sweep.

    Mirrors what the quantized backward executors compute: each adjoint
    contribution is one rounded multiply with the sibling's upward value
    (product rule) and one accumulate add — except the first accumulate
    into an exactly-zero adjoint, which the backends short-circuit
    without rounding. Replays the same cached
    :class:`~repro.engine.tape.BackwardProgram` as the executors (via
    the tape analysis' precompiled adjoint schedule and its closed-form
    accumulate fold), so the bound walks the operator DAG the emulated
    hardware walks.
    """
    analysis = _binary_analysis(circuit)
    counts = analysis.adjoint_counts[: analysis.tape.num_nodes]
    return AdjointFloatBounds(
        per_node=tuple(counts.tolist()),
        indicator_counts=analysis.indicator_adjoint_counts,
    )
