"""Recursive error-bound propagation over an AC (§3.1.3, Figure 3).

The per-node error models of :mod:`repro.core.errormodels` output bounds
in the same form as their inputs, so a single forward sweep propagates the
error from the leaves to the root:

* fixed point — a per-node bound ``Δᵢ`` on the absolute error; the root
  bound has the form ``Δf ≤ c`` for a constant depending on the AC, its
  parameters and F;
* floating point — a per-node count ``cᵢ`` of ``(1±ε)`` factors; the root
  satisfies ``f̃ = f(1±ε)^c``, i.e. a relative error bound.

Propagation requires a **binary** circuit: each 2-input operator is one
hardware rounding. Bounds computed on any other decomposition would not
describe the generated hardware.

Both propagations iterate the circuit's compiled tape
(:mod:`repro.engine.tape`) — the same flat operation stream every
evaluator replays — so the bound analysis and the simulated hardware are
structurally guaranteed to walk identical operator DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..engine.tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, Tape, tape_for
from .errormodels import FixedErrorModel, FloatErrorModel
from .extremes import ExtremeAnalysis


def _binary_tape(circuit: ArithmeticCircuit) -> Tape:
    if not circuit.is_binary:
        raise ValueError(
            "bound propagation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    return tape_for(circuit)


def _leaf_errors(tape: Tape, model, deltas: list) -> None:
    """Seed θ and λ slots with the model's per-leaf error terms."""
    leaf = model.leaf()
    for slot in tape.param_slots:
        deltas[slot] = leaf
    indicator = model.indicator()
    for slot in tape.indicator_slots:
        deltas[slot] = indicator


@dataclass(frozen=True)
class FixedBounds:
    """Result of fixed-point bound propagation."""

    fraction_bits: int
    per_node: tuple[float, ...]
    root: int

    @property
    def root_bound(self) -> float:
        """Worst-case absolute error of a single AC evaluation."""
        return self.per_node[self.root]


def propagate_fixed_bounds(
    circuit: ArithmeticCircuit,
    model: FixedErrorModel | FixedPointFormat | int,
    extremes: ExtremeAnalysis | None = None,
) -> FixedBounds:
    """Propagate absolute-error bounds for fixed-point arithmetic.

    ``model`` may be an error model, a format, or a raw fraction-bit
    count. ``extremes`` (max-value analysis) is computed on demand; pass
    it in when analyzing many precisions of the same circuit.
    """
    tape = _binary_tape(circuit)
    if isinstance(model, FixedPointFormat):
        model = FixedErrorModel.for_format(model)
    elif isinstance(model, int):
        model = FixedErrorModel(fraction_bits=model)
    if extremes is None:
        extremes = ExtremeAnalysis.of(circuit)

    # Binary circuits compile with no scratch slots, so tape slots are
    # exactly the circuit's node indices (and extremes indices).
    deltas = [0.0] * tape.num_slots
    _leaf_errors(tape, model, deltas)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            deltas[dest] = model.adder(deltas[left], deltas[right])
        elif opcode == OP_PRODUCT:
            deltas[dest] = model.multiplier(
                deltas[left],
                deltas[right],
                extremes.max_value(left),
                extremes.max_value(right),
            )
        elif opcode == OP_MAX:
            deltas[dest] = model.max_node(deltas[left], deltas[right])
        else:  # OP_COPY forwards a value through one wire: no rounding
            deltas[dest] = deltas[left]
    return FixedBounds(
        fraction_bits=model.fraction_bits,
        per_node=tuple(deltas[: tape.num_nodes]),
        root=circuit.root,
    )


@dataclass(frozen=True)
class FloatBounds:
    """Result of floating-point factor-count propagation.

    The factor counts depend only on circuit *structure*, so one
    propagation serves every mantissa width; bind ε afterwards with
    :meth:`relative_bound`.
    """

    per_node: tuple[int, ...]
    root: int

    @property
    def root_count(self) -> int:
        """The structural constant c in f̃ = f(1±ε)^c."""
        return self.per_node[self.root]

    def relative_bound(self, mantissa_bits: int, rounding=None) -> float:
        """(1+ε)^c − 1 at the root for a given mantissa width."""
        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        return model.relative_bound(self.root_count)


def _forward_float_counts(tape: Tape) -> list[int]:
    """Per-slot (1±ε) factor counts of the upward pass."""
    model = FloatErrorModel(mantissa_bits=1)  # counts are ε-independent
    counts = [0] * tape.num_slots
    _leaf_errors(tape, model, counts)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            counts[dest] = model.adder(counts[left], counts[right])
        elif opcode == OP_PRODUCT:
            counts[dest] = model.multiplier(counts[left], counts[right])
        elif opcode == OP_MAX:
            counts[dest] = model.max_node(counts[left], counts[right])
        else:  # OP_COPY
            counts[dest] = counts[left]
    return counts


def propagate_float_counts(circuit: ArithmeticCircuit) -> FloatBounds:
    """Propagate (1±ε) factor counts for floating-point arithmetic."""
    tape = _binary_tape(circuit)
    counts = _forward_float_counts(tape)
    return FloatBounds(per_node=tuple(counts[: tape.num_nodes]), root=circuit.root)


@dataclass(frozen=True)
class AdjointFloatBounds:
    """Float factor counts of the *downward* (derivative) pass.

    ``per_node[i]`` is the count c with ``∂̃f/∂v_i = ∂f/∂v_i (1±ε)^c``
    when both sweeps run in quantized float arithmetic (the engine's
    backward executors); ``indicator_counts`` projects it onto the λ
    leaves, whose adjoints are exactly the joints ``Pr(x, e \\ X)`` of
    the differential approach.
    """

    per_node: tuple[int, ...]
    indicator_counts: "dict[tuple[str, int], int]"

    @property
    def max_indicator_count(self) -> int:
        """The worst factor count over all joint-marginal outputs."""
        return max(self.indicator_counts.values(), default=0)

    def posterior_bound(self, mantissa_bits: int, rounding=None) -> float:
        """Worst-case error of any normalized posterior marginal.

        Every quantized joint satisfies ``j̃ = j(1±ε)^c`` with
        ``c ≤ max_indicator_count``; the normalizing denominator is a
        same-sign float64 sum of such joints, so its relative error obeys
        the same count. The ratio is therefore bounded by
        ``(1+ε)^c / (1−ε)^c − 1`` relative — which also bounds the
        absolute error, since posteriors are at most 1.
        """
        import math

        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        count = self.max_indicator_count
        return math.expm1(
            count * (math.log1p(model.epsilon) - math.log1p(-model.epsilon))
        )


def propagate_adjoint_float_counts(
    circuit: ArithmeticCircuit,
) -> AdjointFloatBounds:
    """Propagate (1±ε) factor counts through the backward sweep.

    Mirrors what the quantized backward executors compute: each adjoint
    contribution is one rounded multiply with the sibling's upward value
    (product rule) and one accumulate add — except the first accumulate
    into an exactly-zero adjoint, which the backends short-circuit
    without rounding. Replays the same cached
    :class:`~repro.engine.tape.BackwardProgram` as the executors, so the
    bound walks the operator DAG the emulated hardware walks.
    """
    tape = _binary_tape(circuit)
    tape.require_differentiable()
    root = tape.require_root()
    model = FloatErrorModel(mantissa_bits=1)  # counts are ε-independent
    value_counts = _forward_float_counts(tape)
    adjoints: list[int | None] = [None] * tape.num_slots
    adjoints[root] = 0

    def accumulate(slot: int, contribution: int) -> None:
        current = adjoints[slot]
        adjoints[slot] = (
            contribution
            if current is None
            else model.adder(current, contribution)
        )

    for opcode, dest, left, right in tape.backward.op_tuples:
        seed = adjoints[dest]
        if seed is None:
            continue  # outside the root cone: adjoint is exactly zero
        if opcode == OP_PRODUCT:
            accumulate(left, model.multiplier(seed, value_counts[right]))
            accumulate(right, model.multiplier(seed, value_counts[left]))
        elif opcode == OP_SUM:
            accumulate(left, seed)
            accumulate(right, seed)
        else:  # OP_COPY
            accumulate(left, seed)
    per_node = tuple(
        0 if count is None else count
        for count in adjoints[: tape.num_nodes]
    )
    indicator_counts = {
        key: per_node[slot]
        for slot, key in zip(tape.indicator_slots, tape.indicator_keys)
    }
    return AdjointFloatBounds(
        per_node=per_node, indicator_counts=indicator_counts
    )
