"""Recursive error-bound propagation over an AC (§3.1.3, Figure 3).

The per-node error models of :mod:`repro.core.errormodels` output bounds
in the same form as their inputs, so a single forward sweep propagates the
error from the leaves to the root:

* fixed point — a per-node bound ``Δᵢ`` on the absolute error; the root
  bound has the form ``Δf ≤ c`` for a constant depending on the AC, its
  parameters and F;
* floating point — a per-node count ``cᵢ`` of ``(1±ε)`` factors; the root
  satisfies ``f̃ = f(1±ε)^c``, i.e. a relative error bound.

Propagation requires a **binary** circuit: each 2-input operator is one
hardware rounding. Bounds computed on any other decomposition would not
describe the generated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from .errormodels import FixedErrorModel, FloatErrorModel
from .extremes import ExtremeAnalysis


def _require_binary(circuit: ArithmeticCircuit) -> None:
    if not circuit.is_binary:
        raise ValueError(
            "bound propagation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )


@dataclass(frozen=True)
class FixedBounds:
    """Result of fixed-point bound propagation."""

    fraction_bits: int
    per_node: tuple[float, ...]
    root: int

    @property
    def root_bound(self) -> float:
        """Worst-case absolute error of a single AC evaluation."""
        return self.per_node[self.root]


def propagate_fixed_bounds(
    circuit: ArithmeticCircuit,
    model: FixedErrorModel | FixedPointFormat | int,
    extremes: ExtremeAnalysis | None = None,
) -> FixedBounds:
    """Propagate absolute-error bounds for fixed-point arithmetic.

    ``model`` may be an error model, a format, or a raw fraction-bit
    count. ``extremes`` (max-value analysis) is computed on demand; pass
    it in when analyzing many precisions of the same circuit.
    """
    _require_binary(circuit)
    if isinstance(model, FixedPointFormat):
        model = FixedErrorModel.for_format(model)
    elif isinstance(model, int):
        model = FixedErrorModel(fraction_bits=model)
    if extremes is None:
        extremes = ExtremeAnalysis.of(circuit)

    deltas = [0.0] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            deltas[index] = model.leaf()
        elif node.op is OpType.INDICATOR:
            deltas[index] = model.indicator()
        else:
            left = node.children[0]
            right = node.children[1] if len(node.children) > 1 else left
            if node.op is OpType.SUM:
                deltas[index] = model.adder(deltas[left], deltas[right])
            elif node.op is OpType.PRODUCT:
                deltas[index] = model.multiplier(
                    deltas[left],
                    deltas[right],
                    extremes.max_value(left),
                    extremes.max_value(right),
                )
            else:  # MAX
                deltas[index] = model.max_node(deltas[left], deltas[right])
    return FixedBounds(
        fraction_bits=model.fraction_bits,
        per_node=tuple(deltas),
        root=circuit.root,
    )


@dataclass(frozen=True)
class FloatBounds:
    """Result of floating-point factor-count propagation.

    The factor counts depend only on circuit *structure*, so one
    propagation serves every mantissa width; bind ε afterwards with
    :meth:`relative_bound`.
    """

    per_node: tuple[int, ...]
    root: int

    @property
    def root_count(self) -> int:
        """The structural constant c in f̃ = f(1±ε)^c."""
        return self.per_node[self.root]

    def relative_bound(self, mantissa_bits: int, rounding=None) -> float:
        """(1+ε)^c − 1 at the root for a given mantissa width."""
        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        return model.relative_bound(self.root_count)


def propagate_float_counts(circuit: ArithmeticCircuit) -> FloatBounds:
    """Propagate (1±ε) factor counts for floating-point arithmetic."""
    _require_binary(circuit)
    model = FloatErrorModel(mantissa_bits=1)  # counts are ε-independent
    counts = [0] * len(circuit)
    for index, node in enumerate(circuit.nodes):
        if node.op is OpType.PARAMETER:
            counts[index] = model.leaf()
        elif node.op is OpType.INDICATOR:
            counts[index] = model.indicator()
        else:
            left = node.children[0]
            right = node.children[1] if len(node.children) > 1 else left
            if node.op is OpType.SUM:
                counts[index] = model.adder(counts[left], counts[right])
            elif node.op is OpType.PRODUCT:
                counts[index] = model.multiplier(counts[left], counts[right])
            else:  # MAX
                counts[index] = model.max_node(counts[left], counts[right])
    return FloatBounds(per_node=tuple(counts), root=circuit.root)
