"""Recursive error-bound propagation over an AC (§3.1.3, Figure 3).

The per-node error models of :mod:`repro.core.errormodels` output bounds
in the same form as their inputs, so a single forward sweep propagates the
error from the leaves to the root:

* fixed point — a per-node bound ``Δᵢ`` on the absolute error; the root
  bound has the form ``Δf ≤ c`` for a constant depending on the AC, its
  parameters and F;
* floating point — a per-node count ``cᵢ`` of ``(1±ε)`` factors; the root
  satisfies ``f̃ = f(1±ε)^c``, i.e. a relative error bound.

Propagation requires a **binary** circuit: each 2-input operator is one
hardware rounding. Bounds computed on any other decomposition would not
describe the generated hardware.

Both propagations iterate the circuit's compiled tape
(:mod:`repro.engine.tape`) — the same flat operation stream every
evaluator replays — so the bound analysis and the simulated hardware are
structurally guaranteed to walk identical operator DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..engine.tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM, Tape, tape_for
from .errormodels import FixedErrorModel, FloatErrorModel
from .extremes import ExtremeAnalysis


def _binary_tape(circuit: ArithmeticCircuit) -> Tape:
    if not circuit.is_binary:
        raise ValueError(
            "bound propagation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    return tape_for(circuit)


def _leaf_errors(tape: Tape, model, deltas: list) -> None:
    """Seed θ and λ slots with the model's per-leaf error terms."""
    leaf = model.leaf()
    for slot in tape.param_slots:
        deltas[slot] = leaf
    indicator = model.indicator()
    for slot in tape.indicator_slots:
        deltas[slot] = indicator


@dataclass(frozen=True)
class FixedBounds:
    """Result of fixed-point bound propagation."""

    fraction_bits: int
    per_node: tuple[float, ...]
    root: int

    @property
    def root_bound(self) -> float:
        """Worst-case absolute error of a single AC evaluation."""
        return self.per_node[self.root]


def propagate_fixed_bounds(
    circuit: ArithmeticCircuit,
    model: FixedErrorModel | FixedPointFormat | int,
    extremes: ExtremeAnalysis | None = None,
) -> FixedBounds:
    """Propagate absolute-error bounds for fixed-point arithmetic.

    ``model`` may be an error model, a format, or a raw fraction-bit
    count. ``extremes`` (max-value analysis) is computed on demand; pass
    it in when analyzing many precisions of the same circuit.
    """
    tape = _binary_tape(circuit)
    if isinstance(model, FixedPointFormat):
        model = FixedErrorModel.for_format(model)
    elif isinstance(model, int):
        model = FixedErrorModel(fraction_bits=model)
    if extremes is None:
        extremes = ExtremeAnalysis.of(circuit)

    # Binary circuits compile with no scratch slots, so tape slots are
    # exactly the circuit's node indices (and extremes indices).
    deltas = [0.0] * tape.num_slots
    _leaf_errors(tape, model, deltas)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            deltas[dest] = model.adder(deltas[left], deltas[right])
        elif opcode == OP_PRODUCT:
            deltas[dest] = model.multiplier(
                deltas[left],
                deltas[right],
                extremes.max_value(left),
                extremes.max_value(right),
            )
        elif opcode == OP_MAX:
            deltas[dest] = model.max_node(deltas[left], deltas[right])
        else:  # OP_COPY forwards a value through one wire: no rounding
            deltas[dest] = deltas[left]
    return FixedBounds(
        fraction_bits=model.fraction_bits,
        per_node=tuple(deltas[: tape.num_nodes]),
        root=circuit.root,
    )


@dataclass(frozen=True)
class FloatBounds:
    """Result of floating-point factor-count propagation.

    The factor counts depend only on circuit *structure*, so one
    propagation serves every mantissa width; bind ε afterwards with
    :meth:`relative_bound`.
    """

    per_node: tuple[int, ...]
    root: int

    @property
    def root_count(self) -> int:
        """The structural constant c in f̃ = f(1±ε)^c."""
        return self.per_node[self.root]

    def relative_bound(self, mantissa_bits: int, rounding=None) -> float:
        """(1+ε)^c − 1 at the root for a given mantissa width."""
        from ..arith.rounding import RoundingMode

        model = FloatErrorModel(
            mantissa_bits=mantissa_bits,
            rounding=rounding or RoundingMode.NEAREST_EVEN,
        )
        return model.relative_bound(self.root_count)


def propagate_float_counts(circuit: ArithmeticCircuit) -> FloatBounds:
    """Propagate (1±ε) factor counts for floating-point arithmetic."""
    tape = _binary_tape(circuit)
    model = FloatErrorModel(mantissa_bits=1)  # counts are ε-independent
    counts = [0] * tape.num_slots
    _leaf_errors(tape, model, counts)
    for opcode, dest, left, right in tape.op_tuples:
        if opcode == OP_SUM:
            counts[dest] = model.adder(counts[left], counts[right])
        elif opcode == OP_PRODUCT:
            counts[dest] = model.multiplier(counts[left], counts[right])
        elif opcode == OP_MAX:
            counts[dest] = model.max_node(counts[left], counts[right])
        else:  # OP_COPY
            counts[dest] = counts[left]
    return FloatBounds(per_node=tuple(counts[: tape.num_nodes]), root=circuit.root)
