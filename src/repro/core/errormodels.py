"""Per-node error models (§3.1.1–3.1.2, the "Error models" of Figure 2).

**Fixed point** tracks a bound on the *absolute* error ``|Δ|`` of every
node (eqs. 2–5):

* leaf conversion: ``|Δa| ≤ 2^-(F+1)``;
* adder: exact, ``|Δf| ≤ |Δa| + |Δb|``;
* multiplier: ``|Δf| ≤ a_max|Δb| + b_max|Δa| + |Δa||Δb| + 2^-(F+1)``,
  with ``a_max, b_max`` from max-value analysis;
* max (MPE): comparison only, ``|Δf| ≤ max(|Δa|, |Δb|)``.

**Floating point** tracks the integer count ``c`` of accumulated
``(1 ± ε)`` factors with ``ε = 2^-(M+1)`` (eqs. 6–12):

* leaf conversion: 1; indicators: 0 (λ ∈ {0,1} is exact);
* adder: ``max(m, n) + 1``; multiplier: ``m + n + 1``;
* max (MPE): ``max(m, n)`` — no rounding.

The float relative bound at a node with count ``c`` is
``(1+ε)^c − 1`` (over-estimate side; the under-estimate side
``1 − (1−ε)^c`` is smaller).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from dataclasses import field

from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode


@dataclass(frozen=True)
class FixedErrorModel:
    """Fixed-point error model for a given number of fraction bits.

    The per-operation constant depends on the rounding mode: half a ULP
    for the nearest modes (the paper's assumption, eq. 2), one full ULP
    for truncation.
    """

    fraction_bits: int
    rounding: RoundingMode = field(default=RoundingMode.NEAREST_EVEN)

    @classmethod
    def for_format(cls, fmt: FixedPointFormat) -> "FixedErrorModel":
        return cls(fraction_bits=fmt.fraction_bits, rounding=fmt.rounding)

    @property
    def rounding_error(self) -> float:
        """Conversion and multiplier-rounding error per operation."""
        return self.rounding.ulp_error_fraction * 2.0 ** (-self.fraction_bits)

    def leaf(self) -> float:
        """Error bound after quantizing a parameter leaf."""
        return self.rounding_error

    def indicator(self) -> float:
        """Indicators are 0/1 and always exact."""
        return 0.0

    def adder(self, delta_a: float, delta_b: float) -> float:
        """Eq. 3: fixed-point adders accumulate but do not round."""
        return delta_a + delta_b

    def multiplier(
        self,
        delta_a: float,
        delta_b: float,
        a_max: float,
        b_max: float,
    ) -> float:
        """Eq. 5, made boundable by AC monotonicity (a_max, b_max)."""
        return (
            a_max * delta_b
            + b_max * delta_a
            + delta_a * delta_b
            + self.rounding_error
        )

    def max_node(self, delta_a: float, delta_b: float) -> float:
        """|max(ã, b̃) − max(a, b)| ≤ max(|Δa|, |Δb|); no rounding."""
        return max(delta_a, delta_b)


@dataclass(frozen=True)
class FloatErrorModel:
    """Floating-point error model for a given number of mantissa bits.

    ε is 2^-(M+1) for the nearest modes (eq. 6) and 2^-M for truncation.
    """

    mantissa_bits: int
    rounding: RoundingMode = field(default=RoundingMode.NEAREST_EVEN)

    @classmethod
    def for_format(cls, fmt: FloatFormat) -> "FloatErrorModel":
        return cls(mantissa_bits=fmt.mantissa_bits, rounding=fmt.rounding)

    @property
    def epsilon(self) -> float:
        """The per-operation relative error bound."""
        return self.rounding.ulp_error_fraction * 2.0 ** (-self.mantissa_bits)

    def leaf(self) -> int:
        return 1

    def indicator(self) -> int:
        return 0

    def adder(self, count_a: int, count_b: int) -> int:
        """Eq. 10: one rounding on top of the worse input."""
        return max(count_a, count_b) + 1

    def multiplier(self, count_a: int, count_b: int) -> int:
        """Eq. 12: factor counts add, plus one rounding."""
        return count_a + count_b + 1

    def max_node(self, count_a: int, count_b: int) -> int:
        """Comparison only — no new (1±ε) factor."""
        return max(count_a, count_b)

    def relative_bound(self, count: int) -> float:
        """(1+ε)^c − 1, computed stably for large c."""
        if count < 0:
            raise ValueError("factor count must be non-negative")
        return math.expm1(count * math.log1p(self.epsilon))

    def lower_relative_bound(self, count: int) -> float:
        """1 − (1−ε)^c, the under-estimate side of the bound."""
        if count < 0:
            raise ValueError("factor count must be non-negative")
        return -math.expm1(count * math.log1p(-self.epsilon))
