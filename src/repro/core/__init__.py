"""ProbLP core: error models, bounds, extremes, optimizer, framework."""

from .bounds import (
    AdjointFloatBounds,
    FixedBounds,
    FixedBoundsBatch,
    FloatBounds,
    propagate_adjoint_float_counts,
    propagate_fixed_bounds,
    propagate_fixed_bounds_batch,
    propagate_float_counts,
)
from .errormodels import FixedErrorModel, FloatErrorModel
from .extremes import (
    ExtremeAnalysis,
    max_log2_values,
    min_log2_positive_values,
)
from .framework import ProbLP, ProbLPConfig
from .optimizer import (
    CircuitAnalysis,
    DEFAULT_MAX_PRECISION_BITS,
    MIN_PRECISION_BITS,
    RepresentationOption,
    SelectionResult,
    Workload,
    required_exponent_bits,
    required_integer_bits,
    search_fixed_format,
    search_float_format,
    select_representation,
)
from .queries import (
    ErrorTolerance,
    QuerySpec,
    QueryType,
    ToleranceType,
    fixed_query_bound,
    fixed_query_bound_from_delta,
    float_query_bound,
)
from .report import (
    EmpiricalValidation,
    ProbLPResult,
    format_name,
    option_cell,
    render_table,
)

__all__ = [
    "AdjointFloatBounds",
    "CircuitAnalysis",
    "DEFAULT_MAX_PRECISION_BITS",
    "EmpiricalValidation",
    "ErrorTolerance",
    "ExtremeAnalysis",
    "FixedBounds",
    "FixedBoundsBatch",
    "FixedErrorModel",
    "FloatBounds",
    "FloatErrorModel",
    "MIN_PRECISION_BITS",
    "ProbLP",
    "ProbLPConfig",
    "ProbLPResult",
    "QuerySpec",
    "QueryType",
    "RepresentationOption",
    "SelectionResult",
    "ToleranceType",
    "Workload",
    "fixed_query_bound",
    "fixed_query_bound_from_delta",
    "float_query_bound",
    "format_name",
    "max_log2_values",
    "min_log2_positive_values",
    "option_cell",
    "propagate_adjoint_float_counts",
    "propagate_fixed_bounds",
    "propagate_fixed_bounds_batch",
    "propagate_float_counts",
    "render_table",
    "required_exponent_bits",
    "required_integer_bits",
    "search_fixed_format",
    "search_float_format",
    "select_representation",
]
