"""Query-level error bounds (§3.2 of the paper).

Single-evaluation bounds (marginal probability, MPE) come straight from
:mod:`repro.core.bounds`. Conditional probability divides two AC
evaluations, ``Pr(q|e) = Pr(q,e) / Pr(e)``, and its bounds additionally
involve ``min Pr(e)`` from min-value analysis.

Two bound variants are provided (DESIGN.md §5):

* ``variant="paper"`` — the published worst cases: eq. 14 assumes the
  denominator error is zero; eq. 17 takes ``(1+ε)^c − 1``.
* ``variant="rigorous"`` (default) — provably sound worst cases over both
  numerator and denominator errors:

  - fixed/absolute: ``|Δ| ≤ (Δ₁ + P·Δ₂)/(Pr(e) − Δ₂) ≤ 2Δ/(minPr(e) − Δ)``
    using ``P = Pr(q|e) ≤ 1`` and ``Δ₁ = Δ₂ = Δ``;
  - float/relative: ``(1+ε)^c/(1−ε)^c − 1``.

  These exceed the paper's constants by at most ≈2×, invisible on the
  log-scale plots but safe to assert in tests.

The policy of §3.2.2 is implemented verbatim: a *relative* tolerance on a
*conditional* query excludes fixed point a priori (its denominator
``Pr(e)·Pr(q|e)`` is unquantifiable in general), so the bound is +inf.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from .bounds import FixedBounds, FloatBounds
from .errormodels import FloatErrorModel
from .extremes import ExtremeAnalysis


class QueryType(Enum):
    """Probabilistic query families the framework supports."""

    MARGINAL = "marginal"
    CONDITIONAL = "conditional"
    MPE = "mpe"


class ToleranceType(Enum):
    """How the user expresses the acceptable output error."""

    ABSOLUTE = "absolute"
    RELATIVE = "relative"


@dataclass(frozen=True)
class ErrorTolerance:
    """A user error requirement, e.g. absolute error ≤ 0.01."""

    kind: ToleranceType
    value: float

    def __post_init__(self) -> None:
        if not 0.0 < self.value < float("inf"):
            raise ValueError(
                f"tolerance must be a positive finite number, got {self.value}"
            )

    @classmethod
    def absolute(cls, value: float) -> "ErrorTolerance":
        return cls(ToleranceType.ABSOLUTE, value)

    @classmethod
    def relative(cls, value: float) -> "ErrorTolerance":
        return cls(ToleranceType.RELATIVE, value)

    def describe(self) -> str:
        return f"{self.kind.value} err {self.value:g}"


_VARIANTS = ("rigorous", "paper")


def _check_variant(variant: str) -> None:
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")


def fixed_query_bound(
    query: QueryType,
    tolerance_kind: ToleranceType,
    bounds: FixedBounds,
    extremes: ExtremeAnalysis,
    variant: str = "rigorous",
) -> float:
    """Worst-case query error under fixed-point arithmetic.

    Returns +inf when fixed point cannot bound this query/tolerance
    combination (conditional + relative, per the paper's policy, or a
    denominator bound that the error swallows).
    """
    return fixed_query_bound_from_delta(
        query, tolerance_kind, bounds.root_bound, extremes, variant
    )


def fixed_query_bound_from_delta(
    query: QueryType,
    tolerance_kind: ToleranceType,
    delta: float,
    extremes: ExtremeAnalysis,
    variant: str = "rigorous",
) -> float:
    """:func:`fixed_query_bound` from a raw root error bound.

    The vectorized format search propagates all candidate precisions in
    one batched sweep, so it has root deltas without per-precision
    :class:`~repro.core.bounds.FixedBounds` objects.
    """
    _check_variant(variant)

    if query in (QueryType.MARGINAL, QueryType.MPE):
        if tolerance_kind is ToleranceType.ABSOLUTE:
            return delta
        # Relative tolerance: divide by the smallest non-zero output.
        min_output = 2.0**extremes.root_min_log2
        if min_output <= 0.0:
            return float("inf")
        return delta / min_output

    # Conditional query.
    if tolerance_kind is ToleranceType.RELATIVE:
        return float("inf")  # §3.2.2: always use float for this combination
    min_pr_e = 2.0**extremes.root_min_log2
    if variant == "paper":
        # Eq. 14: Δ1max / min Pr(e).
        if min_pr_e <= 0.0:
            return float("inf")
        return delta / min_pr_e
    # Rigorous: numerator and denominator both perturbed by ≤ delta.
    if min_pr_e <= delta:
        return float("inf")
    return 2.0 * delta / (min_pr_e - delta)


def float_query_bound(
    query: QueryType,
    tolerance_kind: ToleranceType,
    counts: FloatBounds,
    extremes: ExtremeAnalysis,
    mantissa_bits: int,
    variant: str = "rigorous",
    rounding=None,
) -> float:
    """Worst-case query error under floating-point arithmetic."""
    from ..arith.rounding import RoundingMode

    _check_variant(variant)
    model = FloatErrorModel(
        mantissa_bits=mantissa_bits,
        rounding=rounding or RoundingMode.NEAREST_EVEN,
    )
    count = counts.root_count
    single_eval_relative = model.relative_bound(count)

    if query in (QueryType.MARGINAL, QueryType.MPE):
        if tolerance_kind is ToleranceType.RELATIVE:
            return single_eval_relative
        # Absolute = relative × the largest possible output value.
        max_output = min(2.0**extremes.root_max_log2, 1.0)
        return single_eval_relative * max_output

    # Conditional query: the ratio's relative error.
    if variant == "paper":
        ratio_relative = single_eval_relative  # eq. 17
    else:
        # (1+ε)^c / (1−ε)^c − 1, stable in log space.
        log_ratio = count * (
            math.log1p(model.epsilon) - math.log1p(-model.epsilon)
        )
        ratio_relative = math.expm1(log_ratio)
    if tolerance_kind is ToleranceType.RELATIVE:
        return ratio_relative
    # Absolute error of a conditional: relative × Pr(q|e) ≤ relative × 1.
    return ratio_relative


@dataclass(frozen=True)
class QuerySpec:
    """A fully specified analysis target: query type plus tolerance."""

    query: QueryType
    tolerance: ErrorTolerance

    def describe(self) -> str:
        names = {
            QueryType.MARGINAL: "Marg. prob.",
            QueryType.CONDITIONAL: "Cond. prob.",
            QueryType.MPE: "MPE",
        }
        kinds = {
            ToleranceType.ABSOLUTE: "abs. err",
            ToleranceType.RELATIVE: "rel. err",
        }
        return (
            f"{names[self.query]} {kinds[self.tolerance.kind]} "
            f"{self.tolerance.value:g}"
        )
