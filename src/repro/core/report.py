"""Result containers and human-readable reports for ProbLP analyses."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..ac.circuit import CircuitStats
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode
from .optimizer import RepresentationOption, SelectionResult
from .queries import ErrorTolerance, QuerySpec, QueryType, ToleranceType


def format_name(fmt: FixedPointFormat | FloatFormat | None) -> str:
    """Render a format the way Table 2 does (``I, F`` or ``E, M``)."""
    if fmt is None:
        return "-"
    if isinstance(fmt, FixedPointFormat):
        return f"{fmt.integer_bits}, {fmt.fraction_bits}"
    return f"{fmt.exponent_bits}, {fmt.mantissa_bits}"


def option_cell(option: RepresentationOption) -> str:
    """Table 2 cell: ``I, F (energy)`` or ``1, >64 ( - )`` or ``-``."""
    if option.feasible:
        return f"{format_name(option.fmt)} ({option.energy_nj:.2g})"
    if option.infeasible_reason and "policy" in option.infeasible_reason:
        return "-"
    return f">{option.search_cap} ( - )"


def format_payload(fmt: FixedPointFormat | FloatFormat | None):
    """JSON-friendly rendering of a number format (``None`` passes through)."""
    if fmt is None:
        return None
    if isinstance(fmt, FixedPointFormat):
        return {
            "kind": "fixed",
            "integer_bits": fmt.integer_bits,
            "fraction_bits": fmt.fraction_bits,
            "rounding": fmt.rounding.value,
        }
    return {
        "kind": "float",
        "exponent_bits": fmt.exponent_bits,
        "mantissa_bits": fmt.mantissa_bits,
        "rounding": fmt.rounding.value,
    }


def format_from_payload(payload) -> FixedPointFormat | FloatFormat | None:
    """Inverse of :func:`format_payload`."""
    if payload is None:
        return None
    rounding = RoundingMode(payload["rounding"])
    if payload["kind"] == "fixed":
        return FixedPointFormat(
            payload["integer_bits"], payload["fraction_bits"], rounding
        )
    return FloatFormat(
        payload["exponent_bits"], payload["mantissa_bits"], rounding
    )


def _option_payload(option: RepresentationOption) -> dict:
    return {
        "kind": option.kind,
        "format": format_payload(option.fmt),
        "feasible": option.feasible,
        "query_bound": option.query_bound,
        "energy_nj": option.energy_nj,
        "search_cap": option.search_cap,
        "infeasible_reason": option.infeasible_reason,
    }


def _option_from_payload(payload: dict) -> RepresentationOption:
    return RepresentationOption(
        kind=payload["kind"],
        fmt=format_from_payload(payload["format"]),
        feasible=payload["feasible"],
        query_bound=payload["query_bound"],
        energy_nj=payload["energy_nj"],
        search_cap=payload["search_cap"],
        infeasible_reason=payload["infeasible_reason"],
    )


@dataclass(frozen=True)
class ParetoPoint:
    """One measured (energy, error) point of the empirical Pareto front.

    ``ProbLP.optimize(validation_batch=...)`` measures not just the
    winning format but every feasible candidate the search produced —
    the runner-up representation rides through the same cached quantized
    executors — so the rigorous bound-driven choice can be compared
    against a *measured* energy/error trade-off.
    """

    kind: str  # "fixed" or "float"
    fmt: FixedPointFormat | FloatFormat
    energy_nj: float
    bound: float
    max_error: float
    mean_error: float
    selected: bool

    @property
    def holds(self) -> bool:
        return self.max_error <= self.bound

    def describe(self) -> str:
        marker = "*" if self.selected else " "
        return (
            f"{marker} {self.kind}({format_name(self.fmt)}): "
            f"{self.energy_nj:.3g} nJ, measured max {self.max_error:.3e} "
            f"(bound {self.bound:.3e}, "
            f"{'holds' if self.holds else 'VIOLATED'})"
        )


def _pareto_payload(point: ParetoPoint) -> dict:
    return {
        "kind": point.kind,
        "format": format_payload(point.fmt),
        "energy_nj": point.energy_nj,
        "bound": point.bound,
        "max_error": point.max_error,
        "mean_error": point.mean_error,
        "selected": point.selected,
    }


def _pareto_from_payload(payload: dict) -> ParetoPoint:
    return ParetoPoint(
        kind=payload["kind"],
        fmt=format_from_payload(payload["format"]),
        energy_nj=payload["energy_nj"],
        bound=payload["bound"],
        max_error=payload["max_error"],
        mean_error=payload["mean_error"],
        selected=payload["selected"],
    )


@dataclass(frozen=True)
class EmpiricalValidation:
    """Measured error of the selected format on a real evidence batch.

    The optimizer's optional validation stage replays the batch through
    the engine's vectorized quantized executors (forward only for the
    joint workload, forward+backward for marginals) and compares against
    exact float64 — the observed maximum must sit below the rigorous
    bound that drove the search.
    """

    workload: str
    instances: int
    error_kind: str  # "absolute" or "relative"
    max_error: float
    mean_error: float
    bound: float

    @property
    def holds(self) -> bool:
        return self.max_error <= self.bound

    def describe(self) -> str:
        return (
            f"measured {self.error_kind} error over {self.instances} "
            f"instances: max {self.max_error:.3e}, mean "
            f"{self.mean_error:.3e} (bound {self.bound:.3e}, "
            f"{'holds' if self.holds else 'VIOLATED'})"
        )


@dataclass(frozen=True)
class ProbLPResult:
    """Full outcome of a ProbLP analysis for one circuit and query spec."""

    circuit_name: str
    circuit_stats: CircuitStats
    spec: QuerySpec
    selection: SelectionResult
    variant: str
    float_factor_count: int
    root_max_log2: float
    root_min_log2: float
    global_min_log2: float
    workload: str = "joint"
    posterior_factor_count: int | None = None
    empirical: EmpiricalValidation | None = None
    #: Measured energy/error points of every feasible candidate format
    #: (selected first), populated by ``optimize(validation_batch=...)``.
    measured_front: tuple[ParetoPoint, ...] | None = None

    @property
    def selected(self) -> RepresentationOption:
        return self.selection.selected

    @property
    def selected_format(self) -> FixedPointFormat | FloatFormat:
        fmt = self.selection.selected.fmt
        assert fmt is not None  # selected options are always feasible
        return fmt

    def summary(self) -> str:
        """Multi-line human-readable report."""
        stats = self.circuit_stats
        lines = [
            f"ProbLP analysis of {self.circuit_name!r}",
            f"  query          : {self.spec.describe()}",
            f"  workload       : {self.workload}",
            f"  circuit        : {stats.num_operators} binary ops "
            f"({stats.num_sums}+ {stats.num_products}* {stats.num_max}max), "
            f"depth {stats.depth}",
            f"  value range    : 2^{self.root_min_log2:.1f} .. "
            f"2^{self.root_max_log2:.1f} at root, "
            f"global min 2^{self.global_min_log2:.1f}",
            f"  float (1±ε)^c  : c = {self.float_factor_count}",
        ]
        if self.posterior_factor_count is not None:
            lines.append(
                f"  adjoint (1±ε)^c: c = {self.posterior_factor_count} "
                f"(drives the marginals workload)"
            )
        lines.extend(
            [
                f"  fixed option   : {self.selection.fixed.describe()}",
                f"  float option   : {self.selection.float_.describe()}",
                f"  selected       : {self.selection.selected.kind} "
                f"— {self.selection.reason}",
                f"  bound variant  : {self.variant}",
            ]
        )
        if self.empirical is not None:
            lines.append(f"  validation     : {self.empirical.describe()}")
        if self.measured_front:
            lines.append("  measured front :")
            for point in self.measured_front:
                lines.append(f"    {point.describe()}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """A JSON-serializable rendering of the whole result.

        Inverse: :meth:`from_json_dict` — the round-trip reconstructs an
        equal ``ProbLPResult`` (the ``problp optimize`` subcommand emits
        exactly this payload).
        """
        return {
            "circuit_name": self.circuit_name,
            "circuit_stats": asdict(self.circuit_stats),
            "query": self.spec.query.value,
            "tolerance": {
                "kind": self.spec.tolerance.kind.value,
                "value": self.spec.tolerance.value,
            },
            "workload": self.workload,
            "variant": self.variant,
            "float_factor_count": self.float_factor_count,
            "posterior_factor_count": self.posterior_factor_count,
            "root_max_log2": self.root_max_log2,
            "root_min_log2": self.root_min_log2,
            "global_min_log2": self.global_min_log2,
            "fixed": _option_payload(self.selection.fixed),
            "float": _option_payload(self.selection.float_),
            "selected": self.selection.selected.kind,
            "reason": self.selection.reason,
            "empirical": (
                None if self.empirical is None else asdict(self.empirical)
            ),
            "measured_front": (
                None
                if self.measured_front is None
                else [_pareto_payload(point) for point in self.measured_front]
            ),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ProbLPResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        fixed = _option_from_payload(payload["fixed"])
        float_ = _option_from_payload(payload["float"])
        selected = fixed if payload["selected"] == "fixed" else float_
        empirical = payload.get("empirical")
        front = payload.get("measured_front")
        return cls(
            circuit_name=payload["circuit_name"],
            circuit_stats=CircuitStats(**payload["circuit_stats"]),
            spec=QuerySpec(
                query=QueryType(payload["query"]),
                tolerance=ErrorTolerance(
                    ToleranceType(payload["tolerance"]["kind"]),
                    payload["tolerance"]["value"],
                ),
            ),
            selection=SelectionResult(
                fixed=fixed,
                float_=float_,
                selected=selected,
                reason=payload["reason"],
            ),
            variant=payload["variant"],
            float_factor_count=payload["float_factor_count"],
            root_max_log2=payload["root_max_log2"],
            root_min_log2=payload["root_min_log2"],
            global_min_log2=payload["global_min_log2"],
            workload=payload.get("workload", "joint"),
            posterior_factor_count=payload.get("posterior_factor_count"),
            empirical=(
                None if empirical is None else EmpiricalValidation(**empirical)
            ),
            measured_front=(
                None
                if front is None
                else tuple(_pareto_from_payload(point) for point in front)
            ),
        )


def render_table(rows: list[dict[str, str]], columns: list[str]) -> str:
    """Render a list of row dicts as an aligned ASCII table."""
    widths = {
        column: max(len(column), *(len(row.get(column, "")) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    rule = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            " | ".join(row.get(column, "").ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
