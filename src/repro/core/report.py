"""Result containers and human-readable reports for ProbLP analyses."""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import CircuitStats
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from .optimizer import RepresentationOption, SelectionResult
from .queries import QuerySpec


def format_name(fmt: FixedPointFormat | FloatFormat | None) -> str:
    """Render a format the way Table 2 does (``I, F`` or ``E, M``)."""
    if fmt is None:
        return "-"
    if isinstance(fmt, FixedPointFormat):
        return f"{fmt.integer_bits}, {fmt.fraction_bits}"
    return f"{fmt.exponent_bits}, {fmt.mantissa_bits}"


def option_cell(option: RepresentationOption) -> str:
    """Table 2 cell: ``I, F (energy)`` or ``1, >64 ( - )`` or ``-``."""
    if option.feasible:
        return f"{format_name(option.fmt)} ({option.energy_nj:.2g})"
    if option.infeasible_reason and "policy" in option.infeasible_reason:
        return "-"
    return f">{option.search_cap} ( - )"


@dataclass(frozen=True)
class ProbLPResult:
    """Full outcome of a ProbLP analysis for one circuit and query spec."""

    circuit_name: str
    circuit_stats: CircuitStats
    spec: QuerySpec
    selection: SelectionResult
    variant: str
    float_factor_count: int
    root_max_log2: float
    root_min_log2: float
    global_min_log2: float

    @property
    def selected(self) -> RepresentationOption:
        return self.selection.selected

    @property
    def selected_format(self) -> FixedPointFormat | FloatFormat:
        fmt = self.selection.selected.fmt
        assert fmt is not None  # selected options are always feasible
        return fmt

    def summary(self) -> str:
        """Multi-line human-readable report."""
        stats = self.circuit_stats
        lines = [
            f"ProbLP analysis of {self.circuit_name!r}",
            f"  query          : {self.spec.describe()}",
            f"  circuit        : {stats.num_operators} binary ops "
            f"({stats.num_sums}+ {stats.num_products}* {stats.num_max}max), "
            f"depth {stats.depth}",
            f"  value range    : 2^{self.root_min_log2:.1f} .. "
            f"2^{self.root_max_log2:.1f} at root, "
            f"global min 2^{self.global_min_log2:.1f}",
            f"  float (1±ε)^c  : c = {self.float_factor_count}",
            f"  fixed option   : {self.selection.fixed.describe()}",
            f"  float option   : {self.selection.float_.describe()}",
            f"  selected       : {self.selection.selected.kind} "
            f"— {self.selection.reason}",
            f"  bound variant  : {self.variant}",
        ]
        return "\n".join(lines)


def render_table(rows: list[dict[str, str]], columns: list[str]) -> str:
    """Render a list of row dicts as an aligned ASCII table."""
    widths = {
        column: max(len(column), *(len(row.get(column, "")) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    rule = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            " | ".join(row.get(column, "").ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
