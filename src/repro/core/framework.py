"""The ProbLP framework facade (Figure 2 of the paper).

:class:`ProbLP` wires the whole pipeline together: it takes an arithmetic
circuit, a query type and an error tolerance; binarizes the circuit (the
form the hardware implements); runs max/min-value analysis, fixed- and
floating-point bound searches and energy estimation; selects the optimal
representation; and can hand the result to the hardware generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.transform import binarize
from ..ac.validate import validate_circuit
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode
from ..energy.models import EnergyModel, PAPER_MODEL
from .optimizer import (
    CircuitAnalysis,
    DEFAULT_MAX_PRECISION_BITS,
    Workload,
    search_fixed_format,
    search_float_format,
    select_representation,
)
from .queries import ErrorTolerance, QuerySpec, QueryType, ToleranceType
from .report import EmpiricalValidation, ProbLPResult


@dataclass(frozen=True)
class ProbLPConfig:
    """Tunable knobs of the framework."""

    max_precision_bits: int = DEFAULT_MAX_PRECISION_BITS
    bound_variant: str = "rigorous"  # or "paper"; see repro.core.queries
    decomposition: str = "balanced"  # or "chain"; see repro.ac.transform
    energy_model: EnergyModel = PAPER_MODEL
    #: Operator rounding mode. The paper assumes round-to-nearest;
    #: TRUNCATE models cheaper hardware with a doubled error constant.
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN


class ProbLP:
    """Analyze an arithmetic circuit for low-precision implementation.

    Parameters
    ----------
    circuit:
        The AC to implement (any fan-in; it is binarized internally). A
        :class:`repro.compile.CompiledCircuit` may be passed directly.
    query:
        The probabilistic query the circuit will serve.
    tolerance:
        The user's output error tolerance.
    config:
        Optional framework knobs.

    Example
    -------
    >>> from repro.bn.networks import sprinkler_network
    >>> from repro.compile import compile_network
    >>> from repro.core import ProbLP, QueryType, ErrorTolerance
    >>> compiled = compile_network(sprinkler_network())
    >>> framework = ProbLP(compiled, QueryType.MARGINAL,
    ...                    ErrorTolerance.absolute(0.01))
    >>> result = framework.analyze()
    >>> result.selected.kind in ("fixed", "float")
    True
    """

    def __init__(
        self,
        circuit,
        query: QueryType,
        tolerance: ErrorTolerance,
        config: ProbLPConfig | None = None,
        *,
        binary_circuit: ArithmeticCircuit | None = None,
    ) -> None:
        if hasattr(circuit, "circuit"):  # CompiledCircuit and friends
            circuit = circuit.circuit
        if not isinstance(circuit, ArithmeticCircuit):
            raise TypeError(
                f"expected an ArithmeticCircuit (or CompiledCircuit), got "
                f"{type(circuit).__name__}"
            )
        validate_circuit(circuit)
        self.config = config or ProbLPConfig()
        self.spec = QuerySpec(query=query, tolerance=tolerance)
        self.source_circuit = circuit
        if binary_circuit is not None:
            # A caller that already binarized (the serving registry keeps
            # one binarized circuit per entry) passes it through so every
            # framework instance shares the same cached tape/session.
            if not binary_circuit.is_binary:
                raise ValueError(
                    "binary_circuit must satisfy circuit.is_binary"
                )
            self.binary_circuit = binary_circuit
        else:
            self.binary_circuit = binarize(
                circuit, strategy=self.config.decomposition
            ).circuit
        self.analysis = CircuitAnalysis.of(self.binary_circuit)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(
        self, workload: Workload | str = Workload.JOINT
    ) -> ProbLPResult:
        """Run bound searches, energy estimation and selection.

        ``workload`` selects what the chosen format must bound:
        ``Workload.JOINT`` (default) targets root-query evaluations with
        the paper's §3.2 bounds; ``Workload.MARGINALS`` targets the
        batched posterior-marginal backward sweep, driving the float
        search with the adjoint ``posterior_bound`` (fixed point is
        excluded by the normalizing-division policy).
        """
        workload = Workload.coerce(workload)
        fixed = search_fixed_format(
            self.analysis,
            self.spec,
            max_bits=self.config.max_precision_bits,
            variant=self.config.bound_variant,
            energy_model=self.config.energy_model,
            rounding=self.config.rounding,
            workload=workload,
        )
        float_ = search_float_format(
            self.analysis,
            self.spec,
            max_bits=self.config.max_precision_bits,
            variant=self.config.bound_variant,
            energy_model=self.config.energy_model,
            rounding=self.config.rounding,
            workload=workload,
        )
        selection = select_representation(fixed, float_)
        adjoint = self.analysis.adjoint
        return ProbLPResult(
            circuit_name=self.source_circuit.name,
            circuit_stats=self.binary_circuit.stats(),
            spec=self.spec,
            selection=selection,
            variant=self.config.bound_variant,
            float_factor_count=self.analysis.float_counts.root_count,
            root_max_log2=self.analysis.extremes.root_max_log2,
            root_min_log2=self.analysis.extremes.root_min_log2,
            global_min_log2=self.analysis.extremes.global_min_log2,
            workload=workload.value,
            posterior_factor_count=(
                None if adjoint is None else adjoint.max_indicator_count
            ),
        )

    def optimize(
        self,
        workload: Workload | str = Workload.JOINT,
        validation_batch=None,
    ) -> ProbLPResult:
        """Workload-aware format selection, optionally measured.

        Runs :meth:`analyze` for the given workload; when
        ``validation_batch`` (a sequence of evidence mappings) is given,
        additionally replays the batch through the engine's vectorized
        quantized executors — forward sweeps for the joint workload,
        forward+backward all-marginals for the marginals workload — and
        attaches the measured error next to the rigorous bound. The
        selected format's measurement lands in ``result.empirical``;
        *every* feasible candidate (the runner-up representation rides
        the same cached executors) lands in ``result.measured_front``,
        an empirical Pareto front next to the rigorous one.
        """
        workload = Workload.coerce(workload)
        result = self.analyze(workload)
        if not validation_batch:
            return result
        from dataclasses import replace

        from .report import ParetoPoint

        batch = list(validation_batch)
        self._check_measurable(workload, result)
        front = []
        empirical = None
        options = [result.selection.selected] + [
            option
            for option in (result.selection.fixed, result.selection.float_)
            if option.feasible and option is not result.selection.selected
        ]
        for option in options:
            selected = option is result.selection.selected
            max_error, mean_error, error_kind = self._measure_format(
                workload, result, option.fmt, batch
            )
            if selected:
                empirical = EmpiricalValidation(
                    workload=workload.value,
                    instances=len(batch),
                    error_kind=error_kind,
                    max_error=max_error,
                    mean_error=mean_error,
                    bound=float(option.query_bound),
                )
            front.append(
                ParetoPoint(
                    kind=option.kind,
                    fmt=option.fmt,
                    energy_nj=float(option.energy_nj),
                    bound=float(option.query_bound),
                    max_error=max_error,
                    mean_error=mean_error,
                    selected=selected,
                )
            )
        return replace(
            result, empirical=empirical, measured_front=tuple(front)
        )

    def _check_measurable(
        self, workload: Workload, result: ProbLPResult
    ) -> None:
        if (
            workload is Workload.JOINT
            and result.spec.query is QueryType.CONDITIONAL
        ):
            # A leaf-evidence batch only exercises root evaluations;
            # measuring those against the conditional-ratio bound would
            # claim validation of a quantity never computed.
            raise ValueError(
                "empirical validation is not supported for conditional "
                "queries: the evidence batch holds no (query, evidence) "
                "pairs to measure the ratio against its bound"
            )

    def _measure_format(
        self, workload: Workload, result: ProbLPResult, fmt, batch: list
    ) -> tuple[float, float, str]:
        """Measured (max, mean, kind) error of one format on a batch.

        Runs on the session's cached quantized executors — measuring the
        runner-up formats reuses the same compiled tape and per-format
        executor cache as the winner.
        """
        import numpy as np

        session = self.session
        if workload is Workload.MARGINALS:
            exact = session.marginals_batch(batch)
            quantized = session.quantized_marginals_batch(fmt, batch)
            errors = np.concatenate(
                [
                    np.abs(quantized[variable] - exact[variable]).ravel()
                    for variable in exact
                ]
            )
            error_kind = "absolute"
        else:
            exact = session.evaluate_batch(batch)
            quantized = session.evaluate_quantized_batch(fmt, batch)
            errors = np.abs(quantized - exact)
            error_kind = "absolute"
            if result.spec.tolerance.kind is ToleranceType.RELATIVE:
                positive = exact > 0.0
                if not positive.any():
                    raise ValueError(
                        "relative-error validation needs at least one "
                        "evidence instance with non-zero probability"
                    )
                errors = errors[positive] / exact[positive]
                error_kind = "relative"
        return float(errors.max()), float(errors.mean()), error_kind

    # ------------------------------------------------------------------
    # Execution with the selected representation
    # ------------------------------------------------------------------
    @property
    def session(self):
        """The compiled-tape :class:`repro.engine.InferenceSession`.

        Cached per binary circuit: repeated queries (and whole evidence
        batches) replay the compiled tape without re-walking nodes.
        """
        from ..engine import session_for

        return session_for(self.binary_circuit)

    def backend_for(self, fmt: FixedPointFormat | FloatFormat):
        """A quantized-evaluation backend for a chosen format."""
        from ..engine import backend_for_format

        return backend_for_format(fmt)

    def evaluate_quantized(self, fmt, evidence=None) -> float:
        """Evaluate the binary circuit with a quantized backend."""
        return self.session.evaluate_quantized(fmt, evidence)

    def evaluate_batch(self, evidence_batch):
        """Exact float64 root values over a whole evidence batch."""
        return self.session.evaluate_batch(evidence_batch)

    def evaluate_quantized_batch(self, fmt, evidence_batch):
        """Quantized root values over a whole evidence batch.

        Runs on the exact vectorized fixed/float executors whenever the
        format qualifies, with a bit-identical scalar fallback.
        """
        return self.session.evaluate_quantized_batch(fmt, evidence_batch)

    def marginals(self, evidence=None, joint=False):
        """All posterior marginals ``Pr(X | e)`` of one query.

        One upward + one downward replay of the compiled tape (the
        paper's footnote-2 query style). Raises
        :class:`~repro.errors.ZeroEvidenceError` on zero-probability
        evidence; rejects MPE (max) circuits.
        """
        return self.session.marginals(evidence, joint=joint)

    def marginals_batch(self, evidence_batch, joint=False):
        """All posterior marginals of a whole evidence batch.

        Returns ``{variable: (card, batch) array}`` from two batched
        tape replays — every marginal of every instance at batch
        throughput.
        """
        return self.session.marginals_batch(evidence_batch, joint=joint)

    def quantized_marginals_batch(self, fmt, evidence_batch, joint=False):
        """Batched all-marginals with both sweeps in quantized arithmetic.

        Upward and downward passes run with the format's §3.1 operator
        semantics (vectorized executors with a bit-identical scalar
        big-int fallback); the normalizing division is float64.
        """
        return self.session.quantized_marginals_batch(
            fmt, evidence_batch, joint=joint
        )

    def generate_hardware(
        self,
        fmt=None,
        result: ProbLPResult | None = None,
        workload: Workload | str | None = None,
    ):
        """Generate pipelined hardware for the (selected) format.

        ``workload`` picks the datapath direction: ``Workload.JOINT``
        (default) builds the forward evaluation pipeline;
        ``Workload.MARGINALS`` builds hardware for the backward program
        — a marginal-serving accelerator emitting every joint marginal
        ``Pr(x, e\\X)`` per cycle. When neither ``fmt`` nor ``result``
        is given, the format search runs for that same workload, so the
        datapath is sized by the bounds of the queries it will serve.

        Returns a :class:`repro.hw.HardwareDesign`; call ``.verilog()``
        on it for the RTL text.
        """
        from ..hw import generate_hardware

        if workload is None:
            workload = result.workload if result is not None else Workload.JOINT
        workload = Workload.coerce(workload)
        if fmt is None:
            if result is None:
                result = self.analyze(workload)
            fmt = result.selected_format
        return generate_hardware(
            self.binary_circuit,
            fmt,
            energy_model=self.config.energy_model,
            workload=workload.value,
        )
