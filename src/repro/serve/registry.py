"""Named circuits and their lazily-compiled serving artifacts.

A :class:`CircuitRegistry` maps circuit names to :class:`CircuitEntry`
objects. Each entry owns everything the serving layer replays for that
circuit — the binarized arithmetic circuit, its compiled-tape
:class:`~repro.engine.session.InferenceSession` (tape + per-format
quantized executors), the cached tape analysis, and per-spec
:class:`~repro.core.framework.ProbLP` frameworks for ``optimize``/``hw``
requests. Compilation is lazy and thread-safe: nothing is built until
the first request touches the entry, and concurrent first requests share
one compilation.

Entries are declared by :class:`CircuitSource` — a built-in network
name, a ``.bif`` / network-``.json`` file, or a saved ``.acjson``
circuit. Sources are small picklable records, which is exactly what the
multi-process sharding mode needs: the per-circuit compiled cache is the
unit of distribution, so workers receive source specs and compile their
own shard's entries locally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from ..arith.rounding import RoundingMode
from ..core.queries import ErrorTolerance, QueryType
from .protocol import UnknownCircuitError

SOURCE_KINDS = ("builtin", "bif", "network-json", "acjson")


@dataclass(frozen=True)
class CircuitSource:
    """A declarative, picklable recipe for one served circuit."""

    name: str
    kind: str  # one of SOURCE_KINDS
    path: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ValueError(
                f"source kind must be one of {SOURCE_KINDS}, got {self.kind!r}"
            )
        if self.kind != "builtin" and not self.path:
            raise ValueError(f"{self.kind} source needs a path")

    @classmethod
    def for_path(cls, path: str | Path, name: str | None = None):
        """Infer the source kind from a file suffix."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".bif":
            kind = "bif"
        elif suffix == ".acjson":
            kind = "acjson"
        elif suffix == ".json":
            kind = "network-json"
        else:
            raise ValueError(
                f"cannot infer circuit source from suffix {suffix!r} "
                f"(expected .bif, .json or .acjson): {path}"
            )
        return cls(name=name or path.stem, kind=kind, path=str(path))

    def load(self):
        """``(network, circuit)`` — network is ``None`` for .acjson."""
        if self.kind == "builtin":
            from ..bn.networks import get_network

            return get_network(self.name), None
        if self.kind == "acjson":
            from ..ac.io import load_circuit

            return None, load_circuit(self.path)
        from ..bn.io import load_any_network

        return load_any_network(self.path), None


class CircuitEntry:
    """One served circuit: lazily compiled, cached, thread-safe."""

    def __init__(self, source: CircuitSource) -> None:
        self.source = source
        self._lock = threading.RLock()
        self._network = None
        self._circuit = None
        self._session = None
        # optimize/hw frameworks keyed by their full spec; every
        # framework shares this entry's binary circuit, hence its cached
        # tape, analysis and executors.
        self._frameworks: dict[tuple, object] = {}

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def network(self):
        """The source Bayesian network (``None`` for .acjson sources)."""
        self._compile()
        return self._network

    @property
    def circuit(self):
        """The binarized arithmetic circuit this entry serves."""
        self._compile()
        return self._circuit

    @property
    def session(self):
        """The entry's compiled-tape :class:`InferenceSession`."""
        self._compile()
        return self._session

    @property
    def analysis(self):
        """The cached precision-independent tape analysis."""
        return self.session.analysis

    @property
    def compiled(self) -> bool:
        """True once the first request compiled this entry."""
        return self._session is not None

    def _compile(self) -> None:
        if self._session is not None:
            return
        with self._lock:
            if self._session is not None:
                return
            from ..ac.transform import binarize
            from ..engine import session_for

            network, circuit = self.source.load()
            if circuit is None:
                from ..compile import compile_network

                circuit = compile_network(network).circuit
            if not circuit.is_binary:
                circuit = binarize(circuit).circuit
            self._network = network
            self._circuit = circuit
            self._session = session_for(circuit)

    def framework(
        self,
        query: QueryType,
        tolerance: ErrorTolerance,
        max_bits: int = 64,
        variant: str = "rigorous",
        rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    ):
        """A cached :class:`ProbLP` for one (query, tolerance, …) spec.

        Frameworks are built on the entry's already-binarized circuit,
        so every spec shares the same compiled tape and executor caches
        as the eval/marginals fast path.
        """
        key = (
            query.value,
            tolerance.kind.value,
            tolerance.value,
            max_bits,
            variant,
            rounding.value,
        )
        with self._lock:
            framework = self._frameworks.get(key)
            if framework is None:
                from ..core.framework import ProbLP, ProbLPConfig

                framework = ProbLP(
                    self.circuit,
                    query,
                    tolerance,
                    ProbLPConfig(
                        max_precision_bits=max_bits,
                        bound_variant=variant,
                        rounding=rounding,
                    ),
                    binary_circuit=self.circuit,
                )
                self._frameworks[key] = framework
            return framework

    def describe(self) -> dict:
        """A JSON-friendly summary for the ``circuits`` op."""
        info: dict = {
            "name": self.name,
            "kind": self.source.kind,
            "compiled": self.compiled,
        }
        if self.source.path:
            info["path"] = self.source.path
        if self.compiled:
            info["tape"] = self.session.tape.describe()
            info["variables"] = list(self.session.marginal_index.variables)
        return info


class CircuitRegistry:
    """Name → :class:`CircuitEntry`, with shard partitioning."""

    def __init__(self, sources: Iterable[CircuitSource] = ()) -> None:
        self._entries: dict[str, CircuitEntry] = {}
        self._lock = threading.Lock()
        for source in sources:
            self.add_source(source)

    @classmethod
    def default(cls) -> "CircuitRegistry":
        """A registry serving every built-in benchmark network."""
        from ..bn.networks import available_networks

        return cls(
            CircuitSource(name=name, kind="builtin")
            for name in available_networks()
        )

    @classmethod
    def from_sources(
        cls, sources: Iterable[CircuitSource]
    ) -> "CircuitRegistry":
        return cls(sources)

    # -- population ----------------------------------------------------
    def add_source(self, source: CircuitSource) -> CircuitEntry:
        with self._lock:
            if source.name in self._entries:
                raise ValueError(
                    f"registry already serves a circuit named "
                    f"{source.name!r}"
                )
            entry = CircuitEntry(source)
            self._entries[source.name] = entry
            return entry

    def add_builtin(self, name: str) -> CircuitEntry:
        return self.add_source(CircuitSource(name=name, kind="builtin"))

    def add_path(
        self, path: str | Path, name: str | None = None
    ) -> CircuitEntry:
        return self.add_source(CircuitSource.for_path(path, name))

    def remove(self, name: str) -> CircuitSource:
        """Stop serving a circuit; returns its source record.

        In-flight requests already holding the entry finish normally —
        only the name lookup disappears. The compiled artifacts are
        garbage once the last reference drops.
        """
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownCircuitError(name, self.names())
        return entry.source

    def apply_reload(
        self,
        add: Iterable[Mapping[str, str | None]] = (),
        remove: Iterable[str] = (),
    ) -> dict:
        """One atomic hot-reload step: validate everything, then apply.

        ``add`` holds wire-shaped source records (``name``/``kind``/
        ``path``); a name that appears in both lists is *replaced* —
        removed first, then re-added, so a changed source file can be
        picked up without a distinct op. Nothing mutates unless the
        whole request is valid, and added entries stay uncompiled until
        their first request (the same lazy contract as boot sources).
        """
        sources = [
            CircuitSource(
                name=str(item["name"]),
                kind=str(item["kind"]),
                path=item.get("path") or None,
            )
            for item in add
        ]
        removals = list(remove)
        with self._lock:
            missing = [
                name for name in removals if name not in self._entries
            ]
            if missing:
                raise UnknownCircuitError(
                    missing[0], tuple(self._entries)
                )
            added_names = [source.name for source in sources]
            if len(set(added_names)) != len(added_names):
                raise ValueError("reload adds a duplicate circuit name")
            surviving = set(self._entries) - set(removals)
            for source in sources:
                if source.name in surviving:
                    raise ValueError(
                        f"registry already serves a circuit named "
                        f"{source.name!r}"
                    )
                surviving.add(source.name)
            for name in removals:
                self._entries.pop(name)
            for source in sources:
                self._entries[source.name] = CircuitEntry(source)
        return {
            "added": [source.name for source in sources],
            "removed": removals,
            "circuits": len(self),
        }

    # -- lookup --------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def sources(self) -> tuple[CircuitSource, ...]:
        with self._lock:
            return tuple(entry.source for entry in self._entries.values())

    def entry(self, name: str) -> CircuitEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownCircuitError(name, self.names())
        return entry

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> list[dict]:
        return [self.entry(name).describe() for name in self.names()]

    # -- sharding ------------------------------------------------------
    def partition(self, shards: int) -> list[tuple[CircuitSource, ...]]:
        """Partition entries round-robin into ``shards`` source groups.

        The per-circuit compiled cache (tape + analysis + executors) is
        the unit of distribution: each group is handed to one worker
        process, which compiles and serves exactly its own circuits.
        Groups may be empty when there are more shards than circuits.
        """
        if shards < 1:
            raise ValueError("need at least one shard")
        groups: list[list[CircuitSource]] = [[] for _ in range(shards)]
        for index, source in enumerate(self.sources()):
            groups[index % shards].append(source)
        return [tuple(group) for group in groups]


def routing_table(
    partitions: Iterable[Iterable[CircuitSource]],
) -> Mapping[str, int]:
    """circuit name → shard index, from :meth:`CircuitRegistry.partition`."""
    table: dict[str, int] = {}
    for shard, sources in enumerate(partitions):
        for source in sources:
            table[source.name] = shard
    return table
