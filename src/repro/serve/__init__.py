"""``repro.serve`` — the async, shard-aware serving layer.

Wraps the compiled-tape engine in a network service: a
:class:`CircuitRegistry` of lazily-compiled circuits (each entry owning
its tape, analysis and per-format quantized executors), a
newline-delimited JSON protocol covering ``eval`` / ``marginals`` /
``theta_batch`` (parameter-sweep tiles) / ``optimize`` / ``hw`` /
``reload`` (hot registry reload) workloads, an asyncio
:class:`ProbLPServer` whose micro-batching queue coalesces concurrent
queries into single vectorized tape replays, and a multi-process
:class:`ShardedServer` that partitions the registry across workers (the
per-circuit cache as the unit of distribution) and *replicates* each
shard — ``replicas=3`` runs three identical workers per partition, with
the front load-balancing per request and failing over when one dies.

Serving is load-shedding rather than unbounded-queueing: the shared
:class:`NdjsonTransport` enforces per-connection and global in-flight
limits and answers excess requests with the typed ``overloaded`` error,
which :class:`ClientPool` — a thread-safe fleet of persistent
connections — treats as a retry-after-backoff signal. Live per-circuit
qps / latency-quantile / batching metrics (:class:`ServeMetrics`) ride
along on ``ping`` and ``circuits`` responses; the PR 10 observability
layer adds a ``metrics`` op (Prometheus families merged across
replicas), wire-propagated request tracing (``"trace"`` field →
``result.timing`` span tree), and ``problp serve --obs-port N`` for
``GET /metrics`` / ``GET /healthz`` scraping.
Stdlib-only: asyncio + sockets + multiprocessing.

Quick start::

    from repro.serve import BackgroundServer, CircuitRegistry, ServeClient

    with BackgroundServer(CircuitRegistry.default()) as server:
        with ServeClient(server.host, server.port) as client:
            print(client.eval("alarm", {"HRBP": 1}, fmt="fixed:1:15"))

Or from the command line:
``problp serve --port 7501 --shards 2 --replicas 3``.
"""

from .batching import BatchKey, BatcherStats, MicroBatcher
from .client import ServeClient
from .metrics import CircuitMetrics, RateMeter, ServeMetrics
from .pool import ClientPool
from .protocol import (
    CircuitsRequest,
    ERROR_CODES,
    EvalRequest,
    HwRequest,
    MarginalsRequest,
    MetricsRequest,
    OptimizeRequest,
    PingRequest,
    ProtocolError,
    REQUEST_TYPES,
    ReloadRequest,
    Request,
    Response,
    ServeError,
    ServerOverloadedError,
    ShutdownRequest,
    ThetaBatchRequest,
    UnknownCircuitError,
    error_code_for,
    error_response,
    format_spec,
    ok_response,
    parse_format_spec,
    parse_request,
    parse_tolerance_spec,
    tolerance_spec,
)
from .registry import (
    CircuitEntry,
    CircuitRegistry,
    CircuitSource,
    routing_table,
)
from .server import BackgroundServer, ProbLPServer
from .sharding import ShardRouter, ShardedServer
from .transport import Connection, NdjsonTransport

__all__ = [
    "BackgroundServer",
    "BatchKey",
    "BatcherStats",
    "CircuitEntry",
    "CircuitMetrics",
    "CircuitRegistry",
    "CircuitSource",
    "CircuitsRequest",
    "ClientPool",
    "Connection",
    "ERROR_CODES",
    "EvalRequest",
    "HwRequest",
    "MarginalsRequest",
    "MetricsRequest",
    "MicroBatcher",
    "NdjsonTransport",
    "OptimizeRequest",
    "PingRequest",
    "ProbLPServer",
    "ProtocolError",
    "REQUEST_TYPES",
    "RateMeter",
    "ReloadRequest",
    "Request",
    "Response",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerOverloadedError",
    "ShardRouter",
    "ShardedServer",
    "ShutdownRequest",
    "ThetaBatchRequest",
    "UnknownCircuitError",
    "error_code_for",
    "error_response",
    "format_spec",
    "ok_response",
    "parse_format_spec",
    "parse_request",
    "parse_tolerance_spec",
    "routing_table",
    "tolerance_spec",
]
