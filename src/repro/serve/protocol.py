"""The serving wire protocol: newline-delimited JSON requests/responses.

One request is one JSON object per line; one response is one JSON
object per line. Responses carry the request ``id`` so clients may
pipeline requests and match answers out of order — pipelining is what
lets the server's micro-batching queue coalesce concurrent queries into
one vectorized tape replay.

Request shapes (``op`` selects the workload)::

    {"op": "eval",      "id": 1, "circuit": "alarm",
     "evidence": {"X": 1}, "format": "fixed:1:15",
     "rounding": "nearest-even"}
    {"op": "marginals", "id": 2, "circuit": "alarm", "evidence": {},
     "joint": false, "variables": ["HYPOVOLEMIA"]}
    {"op": "theta_batch", "id": 5, "circuit": "landscape",
     "evidence": {"Presence": 1}, "theta": [[0.3, 0.7], [0.4, 0.6]],
     "format": "fixed:2:14"}
    {"op": "optimize",  "id": 3, "circuit": "alarm",
     "workload": "marginals", "query": "marginal",
     "tolerance": "abs:0.01", "max_bits": 64}
    {"op": "hw",        "id": 4, "circuit": "alarm",
     "workload": "joint", "format": "fixed:1:15", "include_rtl": false}
    {"op": "reload",    "id": 6,
     "add": [{"name": "grid", "kind": "bif", "path": "grid.bif"}],
     "remove": ["asia"]}
    {"op": "ping"} · {"op": "circuits"} · {"op": "metrics"}
    {"op": "shutdown"}

Any request may carry ``"trace": {"id": "…"}`` to get a microsecond
span breakdown back under ``result.timing`` (see
:mod:`repro.obs.tracing`).

Responses::

    {"id": 1, "ok": true,  "result": {...}}
    {"id": 2, "ok": false, "error": {"code": "zero_evidence",
                                     "message": "..."}}

Typed library errors map to stable error codes (``ERROR_CODES``); the
malformed-input side raises :class:`ProtocolError` (``bad_request``).
Everything here is stdlib-only and dependency-light so the multi-process
sharding front can parse routing fields without compiling anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..arith.rounding import RoundingMode
from ..core.queries import ErrorTolerance, QueryType
from ..errors import (
    InfeasibleFormatError,
    NonBinaryCircuitError,
    ThetaShapeError,
    ZeroEvidenceError,
)
from ..obs.tracing import parse_trace_field
from ..specs import SpecError, format_spec, tolerance_spec
from ..specs import parse_format_spec as _parse_format_spec
from ..specs import parse_tolerance_spec as _parse_tolerance_spec

AnyFormat = FixedPointFormat | FloatFormat

PROTOCOL_VERSION = 1

#: Per-line stream limit for every asyncio reader on the wire. Far above
#: asyncio's 64 KiB default: one ``hw`` response with ``include_rtl``
#: carries whole Verilog modules (~700 KB for Alarm) on a single line.
STREAM_LIMIT = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request: unknown op, bad field, unparsable spec."""


class ServerOverloadedError(RuntimeError):
    """The server shed this request: its in-flight queue limits are hit.

    Maps to the stable ``overloaded`` wire code. Unlike every other
    error, this one is *retryable by design* — the request was never
    admitted, so clients (e.g. :class:`~repro.serve.pool.ClientPool`)
    may back off briefly and resend it verbatim.
    """


class UnknownCircuitError(KeyError):
    """The request names a circuit the registry does not hold."""

    def __init__(self, name: str, available=()):
        self.name = name
        self.available = tuple(available)
        message = f"unknown circuit {name!r}"
        if self.available:
            message += f"; served circuits: {', '.join(self.available)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


#: Exception type → wire error code, most specific first. Order matters:
#: the typed errors subclass stdlib ones (``ZeroEvidenceError`` is a
#: ``ZeroDivisionError``, ``InfeasibleFormatError`` and
#: ``NonBinaryCircuitError`` are ``ValueError``).
ERROR_CODES: tuple[tuple[type[BaseException], str], ...] = (
    (ZeroEvidenceError, "zero_evidence"),
    (NonBinaryCircuitError, "non_binary_circuit"),
    (InfeasibleFormatError, "infeasible_format"),
    (ThetaShapeError, "theta_shape"),
    (UnknownCircuitError, "unknown_circuit"),
    (ServerOverloadedError, "overloaded"),
    (ProtocolError, "bad_request"),
    (ArithmeticError, "arithmetic"),
    (ValueError, "bad_request"),
    (KeyError, "bad_request"),
    (Exception, "internal"),
)


def error_code_for(error: BaseException) -> str:
    """The stable wire code of an exception (``internal`` fallback)."""
    for exc_type, code in ERROR_CODES:
        if isinstance(error, exc_type):
            return code
    return "internal"


# ---------------------------------------------------------------------------
# Spec parsing (the textual grammar lives in ``repro.specs``, shared with
# the CLI; here malformed specs surface as wire-level ``ProtocolError``)
# ---------------------------------------------------------------------------


def parse_format_spec(text: str) -> AnyFormat:
    """``fixed:I:F`` or ``float:E:M`` → a number format."""
    try:
        return _parse_format_spec(text)
    except SpecError as error:
        raise ProtocolError(str(error)) from None


def parse_tolerance_spec(text: str) -> ErrorTolerance:
    """``abs:0.01`` or ``rel:0.01`` → an :class:`ErrorTolerance`."""
    try:
        return _parse_tolerance_spec(text)
    except SpecError as error:
        raise ProtocolError(str(error)) from None


def _parse_rounding(payload: Mapping[str, Any]) -> RoundingMode:
    raw = payload.get("rounding", RoundingMode.NEAREST_EVEN.value)
    try:
        return RoundingMode(raw)
    except ValueError:
        choices = ", ".join(mode.value for mode in RoundingMode)
        raise ProtocolError(
            f"rounding must be one of: {choices}; got {raw!r}"
        ) from None


def _parse_fmt_field(payload: Mapping[str, Any]) -> AnyFormat | None:
    raw = payload.get("format")
    if raw is None:
        return None
    fmt = parse_format_spec(raw)
    from dataclasses import replace

    return replace(fmt, rounding=_parse_rounding(payload))


def _parse_evidence(payload: Mapping[str, Any]) -> dict[str, int]:
    raw = payload.get("evidence")
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ProtocolError(
            f"evidence must be an object mapping variables to states, "
            f"got {type(raw).__name__}"
        )
    evidence = {}
    for variable, state in raw.items():
        # Exactly int: bool would silently read as 0/1 and floats or
        # numeric strings would truncate into a confidently wrong query.
        if isinstance(state, bool) or not isinstance(state, int):
            raise ProtocolError(
                f"evidence states must be integers; got "
                f"{state!r} for {variable!r}"
            )
        evidence[str(variable)] = state
    return evidence


def _require_circuit(payload: Mapping[str, Any]) -> str:
    circuit = payload.get("circuit")
    if not circuit or not isinstance(circuit, str):
        raise ProtocolError("request needs a 'circuit' name")
    return circuit


def _parse_workload(payload: Mapping[str, Any]) -> str:
    workload = payload.get("workload", "joint")
    if workload not in ("joint", "marginals"):
        raise ProtocolError(
            f"workload must be 'joint' or 'marginals', got {workload!r}"
        )
    return workload


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """Common request surface: every request has an op and may carry an id.

    ``trace`` is the optional tracing context riding the wire —
    ``{"id": "<hex>", "parent": "<span name>"}`` — asking the server to
    time this request and attach a ``"timing"`` span breakdown to the
    response.  The sharded front forwards it (with ``parent`` rewritten
    to its own routing span) so replica spans nest under the front's.
    """

    op: ClassVar[str] = ""
    id: int | str | None = None
    trace: Mapping[str, str] | None = None

    def to_wire(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload


def _parse_trace_field(payload: Mapping[str, Any]):
    try:
        return parse_trace_field(payload.get("trace"))
    except ValueError as error:
        raise ProtocolError(str(error)) from None


@dataclass(frozen=True)
class PingRequest(Request):
    op: ClassVar[str] = "ping"


@dataclass(frozen=True)
class CircuitsRequest(Request):
    op: ClassVar[str] = "circuits"


@dataclass(frozen=True)
class MetricsRequest(Request):
    """Snapshot the server's metrics registry (families wire format).

    On the sharded front this fans out to every replica and merges the
    families with ``shard``/``replica`` labels — the payload behind
    ``GET /metrics``.
    """

    op: ClassVar[str] = "metrics"


@dataclass(frozen=True)
class ShutdownRequest(Request):
    """Drain and stop the server (honored only when explicitly enabled)."""

    op: ClassVar[str] = "shutdown"


def _wire_format_fields(payload: dict, fmt: AnyFormat | None) -> None:
    if fmt is not None:
        payload["format"] = format_spec(fmt)
        payload["rounding"] = fmt.rounding.value


@dataclass(frozen=True)
class EvalRequest(Request):
    """One root evaluation, exact float64 plus optionally quantized."""

    op: ClassVar[str] = "eval"
    circuit: str = ""
    evidence: Mapping[str, int] = field(default_factory=dict)
    fmt: AnyFormat | None = None

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        payload["circuit"] = self.circuit
        payload["evidence"] = dict(self.evidence)
        _wire_format_fields(payload, self.fmt)
        return payload


@dataclass(frozen=True)
class MarginalsRequest(Request):
    """All-marginals of one query via the backward tape sweep."""

    op: ClassVar[str] = "marginals"
    circuit: str = ""
    evidence: Mapping[str, int] = field(default_factory=dict)
    fmt: AnyFormat | None = None
    joint: bool = False
    variables: tuple[str, ...] | None = None

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        payload["circuit"] = self.circuit
        payload["evidence"] = dict(self.evidence)
        payload["joint"] = self.joint
        if self.variables is not None:
            payload["variables"] = list(self.variables)
        _wire_format_fields(payload, self.fmt)
        return payload


def _parse_theta(payload: Mapping[str, Any]) -> tuple[tuple[float, ...], ...]:
    raw = payload.get("theta")
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ProtocolError(
            "theta must be a non-empty list of parameter rows"
        )
    rows: list[tuple[float, ...]] = []
    width: int | None = None
    for row in raw:
        if not isinstance(row, (list, tuple)) or not row:
            raise ProtocolError(
                "each theta row must be a non-empty list of numbers"
            )
        if width is None:
            width = len(row)
        elif len(row) != width:
            raise ProtocolError(
                f"theta rows must share one width; got {len(row)} after "
                f"{width}"
            )
        values = []
        for value in row:
            # Exactly int/float: bool is an int and would silently
            # become a confidently wrong 0.0/1.0 parameter.
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ProtocolError(
                    f"theta entries must be numbers; got {value!r}"
                )
            values.append(float(value))
        rows.append(tuple(values))
    return tuple(rows)


@dataclass(frozen=True)
class ThetaBatchRequest(Request):
    """One θ-sweep tile: shared evidence, many parameter rows.

    The unit a raster client streams — one request per map tile. The
    JSON number grammar round-trips float64 exactly, so the served
    sweep stays bit-identical to a direct
    :meth:`~repro.engine.session.InferenceSession.evaluate_theta_batch`
    call on the same rows.
    """

    op: ClassVar[str] = "theta_batch"
    circuit: str = ""
    evidence: Mapping[str, int] = field(default_factory=dict)
    theta: tuple[tuple[float, ...], ...] = ()
    fmt: AnyFormat | None = None

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        payload["circuit"] = self.circuit
        payload["evidence"] = dict(self.evidence)
        payload["theta"] = [list(row) for row in self.theta]
        _wire_format_fields(payload, self.fmt)
        return payload


def _parse_reload_add(payload: Mapping[str, Any]) -> tuple[dict, ...]:
    raw = payload.get("add", ())
    if not isinstance(raw, (list, tuple)):
        raise ProtocolError("reload 'add' must be a list of source objects")
    entries: list[dict] = []
    for item in raw:
        if not isinstance(item, Mapping):
            raise ProtocolError(
                "each reload source must be an object with "
                "'name', 'kind' and (for file kinds) 'path'"
            )
        name = item.get("name")
        kind = item.get("kind")
        path = item.get("path")
        if not name or not isinstance(name, str):
            raise ProtocolError("reload source needs a 'name' string")
        if not kind or not isinstance(kind, str):
            raise ProtocolError("reload source needs a 'kind' string")
        if path is not None and not isinstance(path, str):
            raise ProtocolError("reload source 'path' must be a string")
        # The semantic checks (known kind, path requirements) live in
        # CircuitSource itself — its ValueError maps to bad_request.
        entries.append({"name": name, "kind": kind, "path": path})
    return tuple(entries)


def _parse_reload_remove(payload: Mapping[str, Any]) -> tuple[str, ...]:
    raw = payload.get("remove", ())
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(name, str) and name for name in raw
    ):
        raise ProtocolError(
            "reload 'remove' must be a list of circuit names"
        )
    return tuple(raw)


@dataclass(frozen=True)
class ReloadRequest(Request):
    """Hot registry reload: add/remove circuit sources without restart.

    Added sources are registered immediately but compiled lazily on
    their first hit, exactly like boot-time sources. The request is
    validated as a whole before anything is applied — a collision or an
    unknown removal mutates nothing.
    """

    op: ClassVar[str] = "reload"
    #: Declarative source records: ``{"name", "kind", "path"}`` dicts
    #: (plain data, so the sharding front can route without compiling).
    add: tuple[dict, ...] = ()
    remove: tuple[str, ...] = ()

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        if self.add:
            payload["add"] = [dict(item) for item in self.add]
        if self.remove:
            payload["remove"] = list(self.remove)
        return payload


@dataclass(frozen=True)
class OptimizeRequest(Request):
    """Workload-aware §3.3 format search on the served circuit."""

    op: ClassVar[str] = "optimize"
    circuit: str = ""
    workload: str = "joint"
    query: QueryType = QueryType.MARGINAL
    tolerance: ErrorTolerance = field(
        default_factory=lambda: ErrorTolerance.absolute(0.01)
    )
    max_bits: int = 64
    variant: str = "rigorous"
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        payload.update(
            circuit=self.circuit,
            workload=self.workload,
            query=self.query.value,
            tolerance=tolerance_spec(self.tolerance),
            max_bits=self.max_bits,
            variant=self.variant,
            rounding=self.rounding.value,
        )
        return payload


@dataclass(frozen=True)
class HwRequest(Request):
    """Hardware-generation report for the served circuit.

    ``rounding`` is authoritative: a forced ``fmt`` is parsed with it
    applied, and a search-selected format honors it too.
    """

    op: ClassVar[str] = "hw"
    circuit: str = ""
    workload: str = "joint"
    fmt: AnyFormat | None = None  # None → run the format search
    query: QueryType = QueryType.MARGINAL
    tolerance: ErrorTolerance = field(
        default_factory=lambda: ErrorTolerance.absolute(0.01)
    )
    max_bits: int = 64
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN
    include_rtl: bool = False

    def to_wire(self) -> dict[str, Any]:
        payload = super().to_wire()
        payload.update(
            circuit=self.circuit,
            workload=self.workload,
            query=self.query.value,
            tolerance=tolerance_spec(self.tolerance),
            max_bits=self.max_bits,
            rounding=self.rounding.value,
            include_rtl=self.include_rtl,
        )
        if self.fmt is not None:
            payload["format"] = format_spec(self.fmt)
        return payload


def _parse_query_field(payload: Mapping[str, Any]) -> QueryType:
    raw = payload.get("query", QueryType.MARGINAL.value)
    try:
        return QueryType(raw)
    except ValueError:
        choices = ", ".join(q.value for q in QueryType)
        raise ProtocolError(
            f"query must be one of: {choices}; got {raw!r}"
        ) from None


def _parse_max_bits(payload: Mapping[str, Any]) -> int:
    raw = payload.get("max_bits", 64)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
        raise ProtocolError(f"max_bits must be a positive integer, got {raw!r}")
    return raw


def parse_request(payload: Mapping[str, Any]) -> Request:
    """Parse one wire object into a typed request.

    Raises :class:`ProtocolError` on anything malformed; the message is
    safe to send back verbatim as a ``bad_request`` error.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("request id must be an integer or string")
    if op == "ping":
        return PingRequest(id=request_id)
    if op == "circuits":
        return CircuitsRequest(id=request_id)
    if op == "metrics":
        return MetricsRequest(id=request_id)
    if op == "shutdown":
        return ShutdownRequest(id=request_id)
    if op == "reload":
        request = ReloadRequest(
            id=request_id,
            add=_parse_reload_add(payload),
            remove=_parse_reload_remove(payload),
        )
        if not request.add and not request.remove:
            raise ProtocolError(
                "reload needs at least one 'add' source or 'remove' name"
            )
        return request
    if op == "eval":
        return EvalRequest(
            id=request_id,
            trace=_parse_trace_field(payload),
            circuit=_require_circuit(payload),
            evidence=_parse_evidence(payload),
            fmt=_parse_fmt_field(payload),
        )
    if op == "marginals":
        variables = payload.get("variables")
        if variables is not None:
            if not isinstance(variables, (list, tuple)) or not all(
                isinstance(v, str) for v in variables
            ):
                raise ProtocolError("variables must be a list of names")
            variables = tuple(variables)
        joint = payload.get("joint", False)
        if not isinstance(joint, bool):
            raise ProtocolError("joint must be a boolean")
        return MarginalsRequest(
            id=request_id,
            trace=_parse_trace_field(payload),
            circuit=_require_circuit(payload),
            evidence=_parse_evidence(payload),
            fmt=_parse_fmt_field(payload),
            joint=joint,
            variables=variables,
        )
    if op == "theta_batch":
        return ThetaBatchRequest(
            id=request_id,
            trace=_parse_trace_field(payload),
            circuit=_require_circuit(payload),
            evidence=_parse_evidence(payload),
            theta=_parse_theta(payload),
            fmt=_parse_fmt_field(payload),
        )
    if op == "optimize":
        variant = payload.get("variant", "rigorous")
        if variant not in ("rigorous", "paper"):
            raise ProtocolError(
                f"variant must be 'rigorous' or 'paper', got {variant!r}"
            )
        return OptimizeRequest(
            id=request_id,
            circuit=_require_circuit(payload),
            workload=_parse_workload(payload),
            query=_parse_query_field(payload),
            tolerance=parse_tolerance_spec(
                payload.get("tolerance", "abs:0.01")
            ),
            max_bits=_parse_max_bits(payload),
            variant=variant,
            rounding=_parse_rounding(payload),
        )
    if op == "hw":
        include_rtl = payload.get("include_rtl", False)
        if not isinstance(include_rtl, bool):
            raise ProtocolError("include_rtl must be a boolean")
        return HwRequest(
            id=request_id,
            circuit=_require_circuit(payload),
            workload=_parse_workload(payload),
            fmt=_parse_fmt_field(payload),
            query=_parse_query_field(payload),
            tolerance=parse_tolerance_spec(
                payload.get("tolerance", "abs:0.01")
            ),
            max_bits=_parse_max_bits(payload),
            rounding=_parse_rounding(payload),
            include_rtl=include_rtl,
        )
    raise ProtocolError(f"unknown op {op!r}")


REQUEST_TYPES: tuple[type[Request], ...] = (
    PingRequest,
    CircuitsRequest,
    MetricsRequest,
    ShutdownRequest,
    ReloadRequest,
    EvalRequest,
    MarginalsRequest,
    ThetaBatchRequest,
    OptimizeRequest,
    HwRequest,
)


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Response:
    """One wire response; ``ok`` selects result vs error payload."""

    id: int | str | None
    ok: bool
    result: Mapping[str, Any] | None = None
    error_code: str | None = None
    error_message: str | None = None

    def to_wire(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"id": self.id, "ok": self.ok}
        if self.ok:
            payload["result"] = (
                dict(self.result) if self.result is not None else {}
            )
        else:
            payload["error"] = {
                "code": self.error_code or "internal",
                "message": self.error_message or "",
            }
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Response":
        if not isinstance(payload, Mapping) or "ok" not in payload:
            raise ProtocolError("response must be an object with 'ok'")
        if payload["ok"]:
            return cls(
                id=payload.get("id"),
                ok=True,
                result=payload.get("result") or {},
            )
        error = payload.get("error") or {}
        return cls(
            id=payload.get("id"),
            ok=False,
            error_code=error.get("code", "internal"),
            error_message=error.get("message", ""),
        )

    def raise_for_error(self) -> "Response":
        """Raise a :class:`ServeError` when the response is an error."""
        if not self.ok:
            raise ServeError(self.error_code or "internal",
                             self.error_message or "")
        return self


class ServeError(RuntimeError):
    """A server-side error surfaced to the client, with its wire code."""

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message
        super().__init__(f"[{code}] {message}")


def ok_response(request: Request, result: Mapping[str, Any]) -> Response:
    return Response(id=request.id, ok=True, result=result)


def error_response(
    request_id: int | str | None, error: BaseException
) -> Response:
    return Response(
        id=request_id,
        ok=False,
        error_code=error_code_for(error),
        error_message=str(error),
    )


def request_equal_fields(request: Request) -> tuple:
    """A request's dataclass fields, for round-trip assertions in tests."""
    return tuple(
        getattr(request, spec.name) for spec in fields(request)
    )
