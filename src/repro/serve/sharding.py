"""Multi-process serving: circuit shards behind one routing front.

The per-circuit compiled cache (tape + analysis + per-format executors)
is the unit of distribution: :meth:`CircuitRegistry.partition` splits
the registry's :class:`CircuitSource` specs round-robin across worker
processes, each worker compiles and serves *only its own circuits* with
a full :class:`~repro.serve.server.ProbLPServer` (micro-batching
included), and a lightweight asyncio front — the :class:`ShardRouter` —
forwards each request line to the shard that owns its circuit and
relays the answer back. Requests never cross shards, so every worker's
caches stay hot and private.

Shutdown is graceful end to end: the front stops accepting, drains its
in-flight forwards, then sends each worker the ``shutdown`` op (workers
are loopback-bound with ``allow_shutdown=True``), and each worker drains
its own micro-batches before exiting.

:class:`ShardedServer` is the synchronous manager the CLI and tests
use: ``start()`` spawns the workers and the front, ``stop()`` tears
everything down.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from typing import Any, Iterable, Mapping, Sequence

from .batching import DEFAULT_BATCH_WINDOW, DEFAULT_MAX_BATCH
from .protocol import (
    STREAM_LIMIT,
    ProtocolError,
    Response,
    UnknownCircuitError,
    error_response,
)
from .registry import CircuitRegistry, CircuitSource, routing_table
from .server import BackgroundServer, ProbLPServer

#: How long the front waits for in-flight forwards while draining.
DRAIN_TIMEOUT = 10.0


def _shard_worker_main(
    sources: Sequence[CircuitSource],
    host: str,
    batch_window: float,
    max_batch: int,
    worker_threads: int,
    conn,
) -> None:
    """Entry point of one shard process: serve its circuits until told
    to shut down, reporting the bound address through ``conn``."""
    import signal

    # Ctrl-C on the front reaches the whole process group; workers must
    # survive it so the front's graceful drain (shutdown op) can run.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    registry = CircuitRegistry.from_sources(sources)

    async def main() -> None:
        server = ProbLPServer(
            registry,
            host,
            0,
            batch_window=batch_window,
            max_batch=max_batch,
            allow_shutdown=True,
            worker_threads=worker_threads,
        )
        await server.start()
        conn.send((server.host, server.port))
        conn.close()
        await server.serve_until_shutdown()

    asyncio.run(main())


class _ShardLink:
    """The front's persistent connection to one worker."""

    def __init__(self, shard: int, reader, writer) -> None:
        self.shard = shard
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pump: asyncio.Task | None = None
        #: Set once the worker hangs up; new forwards fail immediately.
        self.disconnected = False

    async def send(self, payload: Mapping[str, Any]) -> None:
        async with self.write_lock:
            self.writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await self.writer.drain()

    async def close(self) -> None:
        if self.pump is not None:
            self.pump.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ShardRouter:
    """Route request lines to circuit shards; relay responses by id.

    The router never compiles anything: it JSON-probes each line for
    the ``circuit`` routing field, rewrites the request id into a
    private namespace, and scatters the response back to the right
    client when the worker answers. Ops without a circuit (``ping``,
    ``circuits``) are answered locally — ``circuits`` by fanning out to
    every shard and merging.
    """

    def __init__(
        self,
        shard_addresses: Sequence[tuple[str, int]],
        table: Mapping[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._shard_addresses = list(shard_addresses)
        self._table = dict(table)
        self._host = host
        self._port = port
        self._links: list[_ShardLink] = []
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        #: internal id → (link, sink); sink is ``("client", writer,
        #: lock, original_id)`` or ``("future", future)``. The link is
        #: kept so a dying worker fails exactly its own entries.
        self._pending: dict[int, tuple[_ShardLink, tuple]] = {}
        self._next_internal = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    async def start(self) -> None:
        for shard, (host, port) in enumerate(self._shard_addresses):
            reader, writer = await asyncio.open_connection(
                host, port, limit=STREAM_LIMIT
            )
            link = _ShardLink(shard, reader, writer)
            link.pump = asyncio.ensure_future(self._pump(link))
            self._links.append(link)
        self._server = await asyncio.start_server(
            self._handle_client,
            self._host,
            self._port,
            limit=STREAM_LIMIT,
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Drain forwards, hang up on clients, shut the workers down."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
        deadline = asyncio.get_running_loop().time() + DRAIN_TIMEOUT
        while self._pending:
            if asyncio.get_running_loop().time() > deadline:
                break
            await asyncio.sleep(0.01)
        for link in self._links:
            if not link.disconnected:
                try:
                    await asyncio.wait_for(
                        self._shutdown_shard(link), timeout=5
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError):
                    pass
            await link.close()
        self._links.clear()
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
        if server is not None:
            await server.wait_closed()

    async def _shutdown_shard(self, link: _ShardLink) -> None:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        internal = self._register(link, ("future", future))
        try:
            await link.send({"op": "shutdown", "id": internal})
        except (ConnectionError, OSError):
            self._pending.pop(internal, None)
            raise
        await future

    # -- forwarding ----------------------------------------------------
    def _register(self, link: _ShardLink, sink: tuple) -> int:
        self._next_internal += 1
        self._pending[self._next_internal] = (link, sink)
        return self._next_internal

    async def _pump(self, link: _ShardLink) -> None:
        """Relay every response line of one worker to its requester."""
        try:
            while True:
                line = await link.reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    internal = payload.get("id")
                except json.JSONDecodeError:
                    continue
                entry = self._pending.pop(internal, None)
                if entry is None:
                    continue
                await self._resolve(entry[1], payload)
        finally:
            # The worker hung up (crash or shutdown): fail every request
            # still waiting on this link instead of stranding clients.
            link.disconnected = True
            await self._fail_link_pending(link)

    async def _resolve(self, sink: tuple, payload: dict) -> None:
        if sink[0] == "future":
            future = sink[1]
            if not future.done():
                future.set_result(payload)
            return
        _, writer, lock, original_id = sink
        payload["id"] = original_id
        try:
            async with lock:
                writer.write((json.dumps(payload) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _fail_link_pending(self, link: _ShardLink) -> None:
        stranded = [
            internal
            for internal, (owner, _) in self._pending.items()
            if owner is link
        ]
        for internal in stranded:
            _, sink = self._pending.pop(internal)
            if sink[0] == "future":
                future = sink[1]
                if not future.done():
                    future.set_exception(
                        ConnectionError("shard worker disconnected")
                    )
                continue
            response = error_response(
                sink[3], ConnectionError("shard worker disconnected")
            )
            await self._resolve(sink, response.to_wire())

    # -- client side ---------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        self._writers.add(writer)
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
            handler.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # A line beyond the stream limit cannot be resynced;
                    # hang up rather than die with an unretrieved error.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # One task per line: a slow inline op (e.g. a circuits
                # fan-out waiting on a wedged shard) must not head-of-
                # line block the forwards queued behind it.
                task = asyncio.ensure_future(
                    self._route_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            self._writers.discard(writer)
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            await self._drain_client(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drain_client(self, writer) -> None:
        """Wait for this client's forwarded responses before hanging up.

        A pipelining client may half-close its write side (``nc`` does)
        while its answers are still crossing the shard links; closing
        the writer at EOF would silently drop them.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + DRAIN_TIMEOUT
        while any(
            sink[0] == "client" and sink[1] is writer
            for _, sink in self._pending.values()
        ):
            if loop.time() > deadline:
                break
            await asyncio.sleep(0.005)

    async def _route_line(self, line: bytes, writer, lock) -> None:
        request_id = None
        try:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ProtocolError(f"request is not valid JSON: {error}")
            if not isinstance(payload, dict):
                raise ProtocolError("request must be a JSON object")
            raw_id = payload.get("id")
            if isinstance(raw_id, (int, str)):
                request_id = raw_id
            elif raw_id is not None:
                # Same rule as parse_request: reject before forwarding,
                # or the relayed answer comes back unattributable.
                raise ProtocolError(
                    "request id must be an integer or string"
                )
            op = payload.get("op")
            if op == "ping":
                response = Response(
                    id=request_id,
                    ok=True,
                    result={
                        "server": "problp-serve-front",
                        "shards": len(self._links),
                        "circuits": len(self._table),
                    },
                )
            elif op == "circuits":
                response = await self._merged_circuits(request_id)
            elif op == "shutdown":
                raise ProtocolError(
                    "shutdown is not enabled on the sharding front"
                )
            else:
                circuit = payload.get("circuit")
                if not circuit or not isinstance(circuit, str):
                    raise ProtocolError("request needs a 'circuit' name")
                shard = self._table.get(circuit)
                if shard is None:
                    raise UnknownCircuitError(
                        circuit, sorted(self._table)
                    )
                link = self._links[shard]
                if link.disconnected:
                    raise ConnectionError(
                        f"shard worker {shard} for circuit {circuit!r} "
                        f"disconnected"
                    )
                internal = self._register(
                    link, ("client", writer, lock, request_id)
                )
                forwarded = dict(payload)
                forwarded["id"] = internal
                try:
                    await link.send(forwarded)
                except (ConnectionError, OSError):
                    self._pending.pop(internal, None)
                    raise
                return  # the pump answers this one
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            response = error_response(request_id, error)
        try:
            async with lock:
                writer.write(
                    (json.dumps(response.to_wire()) + "\n").encode("utf-8")
                )
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _merged_circuits(self, request_id) -> Response:
        futures = []
        for link in self._links:
            if link.disconnected:
                continue
            future = asyncio.get_running_loop().create_future()
            internal = self._register(link, ("future", future))
            try:
                await link.send({"op": "circuits", "id": internal})
            except (ConnectionError, OSError):
                self._pending.pop(internal, None)
                continue  # a dead shard drops out of the merged listing
            futures.append((internal, future))
        merged: list[dict] = []
        for internal, future in futures:
            try:
                payload = await asyncio.wait_for(future, timeout=30)
            except (asyncio.TimeoutError, ConnectionError):
                # Unregister a timed-out fan-out so stop()'s drain loop
                # does not wait on a sink that can never resolve.
                self._pending.pop(internal, None)
                continue
            if payload.get("ok"):
                merged.extend(payload["result"]["circuits"])
        return Response(id=request_id, ok=True, result={"circuits": merged})


class ShardedServer:
    """Spawn circuit-shard workers plus a routing front; manage both.

    ``registry`` entries must be declarative (:class:`CircuitSource`):
    workers re-compile their own shard from the specs — the compiled
    artifacts themselves never cross process boundaries.
    """

    def __init__(
        self,
        registry: CircuitRegistry | Iterable[CircuitSource],
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        worker_threads: int = 4,
    ) -> None:
        if not isinstance(registry, CircuitRegistry):
            registry = CircuitRegistry.from_sources(registry)
        if shards < 1:
            raise ValueError("need at least one shard")
        self._registry = registry
        self._requested_shards = shards
        self._host = host
        self._port = port
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._worker_threads = worker_threads
        self._processes: list[multiprocessing.Process] = []
        self._front: BackgroundServer | None = None
        self.partitions: list[tuple[CircuitSource, ...]] = []
        self.shard_addresses: list[tuple[str, int]] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardedServer":
        if self._front is not None:
            raise RuntimeError("sharded server already started")
        partitions = [
            group
            for group in self._registry.partition(self._requested_shards)
            if group  # skip empty shards when circuits < shards
        ]
        if not partitions:
            raise ValueError("registry holds no circuits to shard")
        self.partitions = partitions
        context = multiprocessing.get_context()
        pipes = []
        for group in partitions:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    group,
                    # Workers are reachable only by the front on this
                    # machine and honor the shutdown op — loopback
                    # unconditionally, whatever the front binds.
                    "127.0.0.1",
                    self._batch_window,
                    self._max_batch,
                    self._worker_threads,
                    child_conn,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            pipes.append(parent_conn)
        try:
            for parent_conn in pipes:
                if not parent_conn.poll(timeout=120):
                    raise RuntimeError("shard worker did not come up in time")
                self.shard_addresses.append(tuple(parent_conn.recv()))
                parent_conn.close()
        except BaseException:
            self._terminate_workers()
            raise
        table = routing_table(partitions)
        addresses = list(self.shard_addresses)
        host, port = self._host, self._port
        self._front = BackgroundServer(
            factory=lambda: ShardRouter(addresses, table, host, port)
        )
        try:
            self._front.start()
        except BaseException:
            self._front = None
            self._terminate_workers()
            raise
        return self

    @property
    def host(self) -> str:
        assert self._front is not None, "call start() first"
        return self._front.host

    @property
    def port(self) -> int:
        assert self._front is not None, "call start() first"
        return self._front.port

    def stop(self) -> None:
        """Drain the front, shut workers down, join the processes."""
        if self._front is not None:
            self._front.stop()
            self._front = None
        for process in self._processes:
            process.join(timeout=30)
        self._terminate_workers()

    def _terminate_workers(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():
                # SIGTERM ignored (e.g. wedged in native code): escalate
                # so stop() never leaves orphan workers behind.
                process.kill()
                process.join(timeout=5)
        self._processes = []

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
