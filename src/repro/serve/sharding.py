"""Multi-process serving: replicated circuit shards behind one front.

The per-circuit compiled cache (tape + analysis + per-format executors)
is the unit of distribution: :meth:`CircuitRegistry.partition` splits
the registry's :class:`CircuitSource` specs round-robin across shard
*groups*, and each group runs ``replicas`` identical worker processes —
every replica compiles and serves the group's circuits with a full
:class:`~repro.serve.server.ProbLPServer` (micro-batching included).
The asyncio front — the :class:`ShardRouter` — forwards each request
line to the *least-pending healthy replica* of the shard that owns its
circuit and relays the answer back. Requests never cross shards, so
every worker's caches stay hot and private; replication is what scales
**one** hot circuit past a single process.

Failure handling is fail-over, not fail-fast, when siblings exist: a
worker that dies mid-request strands its in-flight forwards, and the
router resends each stranded (idempotent) request to a healthy sibling
replica — clients see an answer, not an error. Only when a shard's
*last* replica dies do its circuits start failing with a clear
``disconnected`` error.

Shutdown is graceful end to end: the front stops accepting, drains its
in-flight forwards, then sends each worker the ``shutdown`` op (workers
are loopback-bound with ``allow_shutdown=True``), and each worker drains
its own micro-batches before exiting.

:class:`ShardedServer` is the synchronous manager the CLI and tests
use: ``start()`` spawns the workers and the front, ``stop()`` tears
everything down.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..obs.metrics import METRICS_SCHEMA_VERSION, merge_families
from ..obs.tracing import now_us
from .batching import DEFAULT_BATCH_WINDOW, DEFAULT_MAX_BATCH
from .protocol import (
    STREAM_LIMIT,
    ProtocolError,
    Response,
    UnknownCircuitError,
    error_response,
)
from .registry import CircuitRegistry, CircuitSource, routing_table
from .server import BackgroundServer, ProbLPServer
from .transport import Connection, NdjsonTransport, encode_line

#: How long the front waits for in-flight forwards while draining.
DRAIN_TIMEOUT = 10.0

#: How long the front waits on worker fan-outs (ping/circuits/reload).
FANOUT_TIMEOUT = 30.0


def _shard_worker_main(
    sources: Sequence[CircuitSource],
    host: str,
    server_kwargs: Mapping[str, Any],
    conn,
) -> None:
    """Entry point of one replica process: serve its shard's circuits
    until told to shut down, reporting the bound address through
    ``conn``."""
    import signal

    # Ctrl-C on the front reaches the whole process group; workers must
    # survive it so the front's graceful drain (shutdown op) can run.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    registry = CircuitRegistry.from_sources(sources)

    async def main() -> None:
        server = ProbLPServer(
            registry,
            host,
            0,
            allow_shutdown=True,
            **dict(server_kwargs),
        )
        await server.start()
        conn.send((server.host, server.port))
        conn.close()
        await server.serve_until_shutdown()

    asyncio.run(main())


class _ShardLink:
    """The front's persistent connection to one replica worker."""

    def __init__(self, shard: int, replica: int, reader, writer) -> None:
        self.shard = shard
        self.replica = replica
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pump: asyncio.Task | None = None
        #: Set once the worker hangs up; new forwards pick a sibling.
        self.disconnected = False
        #: Forwarded-but-unanswered requests on this link — the
        #: least-pending routing signal.
        self.pending = 0

    async def send(self, payload: Mapping[str, Any]) -> None:
        async with self.write_lock:
            self.writer.write(encode_line(dict(payload)))
            await self.writer.drain()

    async def close(self) -> None:
        if self.pump is not None:
            self.pump.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class _Forward:
    """One forwarded request awaiting its worker response."""

    link: _ShardLink
    #: ``("client", connection, original_id)`` or ``("future", future)``.
    sink: tuple
    #: The original wire payload (sans rewritten id) — kept so a dying
    #: replica's stranded requests can be resent to a sibling.
    payload: dict | None = None
    #: Links already tried, bounding the fail-over chain.
    attempts: set[int] = field(default_factory=set)
    #: Front-side spans (``front.route`` + any ``front.retry`` hops) for
    #: a traced request; prepended to the worker's ``timing`` on the way
    #: back to the client.
    spans: list[dict] | None = None


class ShardRouter:
    """Route request lines to replicated circuit shards.

    The router never compiles anything: it probes each line for the
    ``circuit`` routing field, rewrites the request id into a private
    namespace, picks the least-pending healthy replica of the owning
    shard, and scatters the response back to the right client when the
    worker answers. Ops without a circuit are answered at the front —
    ``ping`` by fanning out to every worker and merging fleet health,
    ``circuits`` by fanning out to one replica per shard, ``reload`` by
    updating the routing table and every replica of the affected shards.

    ``shard_addresses`` accepts one address *group* (list of
    ``(host, port)``) per shard; a flat list of plain addresses is
    understood as single-replica groups for backward compatibility.
    """

    def __init__(
        self,
        shard_addresses: Sequence,
        table: Mapping[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 0,
        max_inflight_per_connection: int = 0,
    ) -> None:
        self._address_groups = [
            [tuple(address) for address in group]
            if not _is_address(group)
            else [tuple(group)]
            for group in shard_addresses
        ]
        self._table = dict(table)
        self._host = host
        self._port = port
        self._groups: list[list[_ShardLink]] = []
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._pending: dict[int, _Forward] = {}
        self._next_internal = 0
        self._started = time.monotonic()
        self.overloaded = 0
        self.transport = NdjsonTransport(
            self._handle_request,
            max_inflight_per_connection=max_inflight_per_connection,
            max_inflight_total=max_inflight,
            # Forwards leave their line task before the worker answers;
            # count them against the global limit explicitly.
            extra_inflight=lambda: len(self._pending),
            on_overload=self._record_overload,
        )

    def _record_overload(self) -> None:
        self.overloaded += 1

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def links(self) -> list[_ShardLink]:
        return [link for group in self._groups for link in group]

    async def start(self) -> None:
        for shard, group in enumerate(self._address_groups):
            links = []
            for replica, (host, port) in enumerate(group):
                reader, writer = await asyncio.open_connection(
                    host, port, limit=STREAM_LIMIT
                )
                link = _ShardLink(shard, replica, reader, writer)
                link.pump = asyncio.ensure_future(self._pump(link))
                links.append(link)
            self._groups.append(links)
        self._server = await asyncio.start_server(
            self._handle_client,
            self._host,
            self._port,
            limit=STREAM_LIMIT,
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Drain forwards, hang up on clients, shut the workers down."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
        deadline = asyncio.get_running_loop().time() + DRAIN_TIMEOUT
        while self._pending:
            if asyncio.get_running_loop().time() > deadline:
                break
            await asyncio.sleep(0.01)
        for link in self.links:
            if not link.disconnected:
                try:
                    await asyncio.wait_for(
                        self._shutdown_shard(link), timeout=5
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError):
                    pass
            await link.close()
        self._groups.clear()
        self.transport.close_connections()
        await self.transport.wait_closed()
        if server is not None:
            await server.wait_closed()

    async def _shutdown_shard(self, link: _ShardLink) -> None:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        internal = self._register(link, ("future", future))
        try:
            await link.send({"op": "shutdown", "id": internal})
        except (ConnectionError, OSError):
            self._unregister(internal)
            raise
        await future

    # -- forwarding ----------------------------------------------------
    def _register(
        self,
        link: _ShardLink,
        sink: tuple,
        payload: dict | None = None,
        attempts: set[int] | None = None,
    ) -> int:
        self._next_internal += 1
        forward = _Forward(link, sink, payload, attempts or set())
        forward.attempts.add(id(link))
        self._pending[self._next_internal] = forward
        link.pending += 1
        return self._next_internal

    def _unregister(self, internal: int) -> _Forward | None:
        forward = self._pending.pop(internal, None)
        if forward is not None:
            forward.link.pending -= 1
        return forward

    def _pick_link(self, shard: int, circuit: str) -> _ShardLink:
        """The least-pending healthy replica of one shard group."""
        healthy = [
            link for link in self._groups[shard] if not link.disconnected
        ]
        if not healthy:
            raise ConnectionError(
                f"all {len(self._groups[shard])} replica worker(s) of "
                f"shard {shard} for circuit {circuit!r} disconnected"
            )
        return min(healthy, key=lambda link: link.pending)

    async def _pump(self, link: _ShardLink) -> None:
        """Relay every response line of one worker to its requester."""
        import json

        try:
            while True:
                line = await link.reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    internal = payload.get("id")
                except json.JSONDecodeError:
                    continue
                forward = self._unregister(internal)
                if forward is None:
                    continue
                await self._resolve(forward.sink, payload, forward.spans)
        finally:
            # The worker hung up (crash or shutdown): every request
            # still waiting on this link fails over to a sibling
            # replica, or fails fast when none is left.
            link.disconnected = True
            await self._fail_link_pending(link)

    async def _resolve(
        self, sink: tuple, payload: dict, spans: list[dict] | None = None
    ) -> None:
        if sink[0] == "future":
            future = sink[1]
            if not future.done():
                future.set_result(payload)
            return
        _, connection, original_id = sink
        payload["id"] = original_id
        if spans is not None:
            self._merge_front_spans(payload, spans)
        await connection.send(payload)

    @staticmethod
    def _merge_front_spans(payload: dict, spans: list[dict]) -> None:
        """Prepend the front's routing spans to the worker's timing.

        The route span closes now — response relay time is part of
        routing — so the final tree reads ``front.route`` ⊇
        ``shard.replica`` ⊇ batch spans (one shared monotonic clock
        across front and worker processes).
        """
        result = payload.get("result")
        if not payload.get("ok") or not isinstance(result, dict):
            return
        timing = result.get("timing")
        if not isinstance(timing, dict):
            return
        closed = []
        for span in spans:
            span = dict(span)
            if span.get("end_us") is None:
                span["end_us"] = now_us()
            closed.append(span)
        timing["spans"] = closed + list(timing.get("spans", ()))

    async def _fail_link_pending(self, link: _ShardLink) -> None:
        stranded = [
            internal
            for internal, forward in self._pending.items()
            if forward.link is link
        ]
        for internal in stranded:
            forward = self._unregister(internal)
            if forward is None:
                continue
            if forward.sink[0] == "future":
                future = forward.sink[1]
                if not future.done():
                    future.set_exception(
                        ConnectionError("shard worker disconnected")
                    )
                continue
            if await self._failover(link, forward):
                continue
            response = error_response(
                forward.sink[2],
                ConnectionError("shard worker disconnected"),
            )
            await self._resolve(forward.sink, response.to_wire())

    async def _failover(self, dead: _ShardLink, forward: _Forward) -> bool:
        """Resend one stranded request to a sibling replica.

        Every served op is a pure function of the request (``shutdown``
        and ``reload`` never take this path — they are sent per-link),
        so replaying it on a sibling is safe. ``attempts`` bounds the
        chain: each replica is tried at most once, so a cascade of
        dying replicas degrades to the fail-fast error, not a loop.
        """
        if forward.payload is None:
            return False
        siblings = [
            link
            for link in self._groups[dead.shard]
            if not link.disconnected and id(link) not in forward.attempts
        ]
        for sibling in sorted(siblings, key=lambda link: link.pending):
            internal = self._register(
                sibling, forward.sink, forward.payload, forward.attempts
            )
            retry = self._pending[internal]
            if forward.spans is not None:
                # The re-forward hop stays visible in the final tree as
                # a front.retry span naming both replicas.
                retry.spans = list(forward.spans) + [{
                    "name": "front.retry",
                    "parent": "front.route",
                    "start_us": now_us(),
                    "end_us": None,
                    "shard": dead.shard,
                    "from_replica": dead.replica,
                    "to_replica": sibling.replica,
                }]
            resent = dict(forward.payload)
            resent["id"] = internal
            try:
                await sibling.send(resent)
                if retry.spans is not None:
                    retry.spans[-1]["end_us"] = now_us()
                return True
            except (ConnectionError, OSError):
                self._unregister(internal)
        return False

    # -- client side ---------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        await self.transport.handle_connection(
            reader, writer, before_close=self._drain_client
        )

    async def _drain_client(self, connection: Connection) -> None:
        """Wait for this client's forwarded responses before hanging up.

        A pipelining client may half-close its write side (``nc`` does)
        while its answers are still crossing the shard links; closing
        the writer at EOF would silently drop them.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + DRAIN_TIMEOUT
        while any(
            forward.sink[0] == "client" and forward.sink[1] is connection
            for forward in self._pending.values()
        ):
            if loop.time() > deadline:
                break
            await asyncio.sleep(0.005)

    async def _handle_request(
        self, connection: Connection, payload: Any, request_id
    ) -> Response | None:
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        op = payload.get("op")
        if op == "ping":
            return await self._merged_ping(request_id)
        if op == "metrics":
            return await self._merged_metrics(request_id)
        if op == "circuits":
            return await self._merged_circuits(request_id)
        if op == "reload":
            return await self._route_reload(payload, request_id)
        if op == "shutdown":
            raise ProtocolError(
                "shutdown is not enabled on the sharding front"
            )
        circuit = payload.get("circuit")
        if not circuit or not isinstance(circuit, str):
            raise ProtocolError("request needs a 'circuit' name")
        shard = self._table.get(circuit)
        if shard is None:
            raise UnknownCircuitError(circuit, sorted(self._table))
        link = self._pick_link(shard, circuit)
        # A traced request gets a front.route span and its trace field
        # rewritten so the worker's shard.replica span nests under it.
        trace = payload.get("trace")
        if trace is not None:
            trace = dict(trace) if isinstance(trace, dict) else {}
            trace["parent"] = "front.route"
            payload = {**payload, "trace": trace}
        internal = self._register(
            link, ("client", connection, request_id), dict(payload)
        )
        if trace is not None:
            self._pending[internal].spans = [{
                "name": "front.route",
                "start_us": now_us(),
                "end_us": None,
                "shard": shard,
                "replica": link.replica,
            }]
        forwarded = dict(payload)
        forwarded["id"] = internal
        try:
            await link.send(forwarded)
        except (ConnectionError, OSError):
            forward = self._unregister(internal)
            if forward is None:
                # The pump noticed the dead replica first and already
                # failed this request over; the send error is stale.
                return None
            # The replica died between pick and send: fail over now
            # instead of bouncing the error back to the client.
            if await self._failover(link, forward):
                return None
            raise
        return None  # the pump (or the fail-over path) answers this one

    # -- fan-out ops ---------------------------------------------------
    async def _fanout(
        self, links: Sequence[_ShardLink], payload: Mapping[str, Any]
    ) -> list[tuple[_ShardLink, dict | None]]:
        """Send one op to many workers; ``None`` marks an unreachable one."""
        futures: list[tuple[_ShardLink, int, asyncio.Future]] = []
        for link in links:
            future = asyncio.get_running_loop().create_future()
            internal = self._register(link, ("future", future))
            try:
                await link.send({**payload, "id": internal})
            except (ConnectionError, OSError):
                self._unregister(internal)
                continue
            futures.append((link, internal, future))
        results: dict[int, dict | None] = {id(link): None for link in links}
        for link, internal, future in futures:
            try:
                results[id(link)] = await asyncio.wait_for(
                    future, timeout=FANOUT_TIMEOUT
                )
            except (asyncio.TimeoutError, ConnectionError):
                # Unregister a timed-out fan-out so stop()'s drain loop
                # does not wait on a sink that can never resolve.
                self._unregister(internal)
        return [(link, results[id(link)]) for link in links]

    async def _merged_ping(self, request_id) -> Response:
        """Fleet health in one probe: every worker's ping, merged."""
        answers = await self._fanout(
            [link for link in self.links if not link.disconnected],
            {"op": "ping"},
        )
        workers = []
        merged_formats: set[str] | None = None
        all_native = bool(answers)
        for link, payload in answers:
            entry: dict = {"shard": link.shard, "replica": link.replica}
            if payload is None or not payload.get("ok"):
                entry["healthy"] = False
                all_native = False
            else:
                result = payload["result"]
                entry["healthy"] = True
                for key in ("uptime_s", "inflight", "circuits", "version"):
                    if key in result:
                        entry[key] = result[key]
                # Per-replica load shape: admitted-but-unanswered depth
                # summed over circuits, and the live coalesce factor.
                metrics = result.get("metrics") or {}
                entry["queue_depth"] = sum(
                    circuit.get("queue_depth", 0)
                    for circuit in (metrics.get("circuits") or {}).values()
                )
                batching = result.get("batching") or {}
                entry["mean_batch"] = round(
                    batching.get("mean_batch", 0.0), 3
                )
                backends = result.get("backends") or {}
                entry["backends"] = backends
                formats = set(backends.get("native_formats") or ())
                all_native = all_native and bool(backends.get("native"))
                merged_formats = (
                    formats
                    if merged_formats is None
                    else merged_formats & formats
                )
            workers.append(entry)
        dead = [
            {"shard": link.shard, "replica": link.replica, "healthy": False}
            for link in self.links
            if link.disconnected
        ]
        result = {
            "server": "problp-serve-front",
            "shards": len(self._groups),
            "replicas": [len(group) for group in self._groups],
            "workers": workers + dead,
            "circuits": len(self._table),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "inflight": self.transport.inflight,
            "overloaded": self.overloaded,
            # Fleet-level backend surface: conservative (intersection
            # across healthy workers), so a client probing the front
            # sees only capabilities *every* replica can honor.
            "backends": {
                "numpy": True,
                "native": all_native,
                "native_formats": sorted(merged_formats or ()),
            },
            "metrics_schema_version": METRICS_SCHEMA_VERSION,
            "capabilities": {"theta_batch": True, "reload": True,
                             "metrics": True, "trace": True},
        }
        return Response(id=request_id, ok=True, result=result)

    async def _merged_metrics(self, request_id) -> Response:
        """Every replica's metric families, merged under shard/replica
        labels, plus the front's own series."""
        answers = await self._fanout(
            [link for link in self.links if not link.disconnected],
            {"op": "metrics"},
        )
        tagged = [(self._front_families(), {"worker": "front"})]
        for link, payload in answers:
            if payload is None or not payload.get("ok"):
                continue
            families = (payload.get("result") or {}).get("families") or []
            tagged.append((
                families,
                {"shard": str(link.shard), "replica": str(link.replica)},
            ))
        return Response(
            id=request_id,
            ok=True,
            result={
                "schema_version": METRICS_SCHEMA_VERSION,
                "families": merge_families(tagged),
            },
        )

    def _front_families(self) -> list[dict]:
        """The router's own few series (it runs no engine, no batcher)."""
        return [
            {
                "name": "problp_front_uptime_seconds",
                "type": "gauge",
                "help": "Sharding-front uptime (monotonic clock).",
                "samples": [{
                    "labels": {},
                    "value": time.monotonic() - self._started,
                }],
            },
            {
                "name": "problp_front_overloaded_total",
                "type": "counter",
                "help": "Requests the front shed with the overloaded "
                        "error code.",
                "samples": [{"labels": {}, "value": self.overloaded}],
            },
            {
                "name": "problp_front_pending_forwards",
                "type": "gauge",
                "help": "Forwarded requests awaiting a worker response.",
                "samples": [{"labels": {}, "value": len(self._pending)}],
            },
        ]

    async def _merged_circuits(self, request_id) -> Response:
        """One replica per shard describes its circuits; merged listing."""
        primaries = []
        for shard, group in enumerate(self._groups):
            healthy = [link for link in group if not link.disconnected]
            if healthy:
                # A dead shard group drops out of the merged listing.
                primaries.append(min(healthy, key=lambda lk: lk.pending))
        answers = await self._fanout(primaries, {"op": "circuits"})
        merged: list[dict] = []
        for _, payload in answers:
            if payload is not None and payload.get("ok"):
                merged.extend(payload["result"]["circuits"])
        return Response(id=request_id, ok=True, result={"circuits": merged})

    async def _route_reload(self, payload: dict, request_id) -> Response:
        """Hot-reload across the fleet: table + every affected replica.

        Removals go to the shard that owns each name; additions go to
        the shard currently serving the fewest circuits (deterministic
        tie-break on shard index). Each affected shard's mutation is
        sent to **all** of its replicas — replicas must stay identical
        for fail-over to stay sound. The routing table commits only
        after every replica acknowledged; a partially-failed reload
        returns the first worker error (reloads are idempotent per
        name, so retrying after a fix converges).
        """
        from .protocol import parse_request

        request = parse_request({**payload, "id": request_id})
        per_shard: dict[int, dict] = {}
        for name in request.remove:
            shard = self._table.get(name)
            if shard is None:
                raise UnknownCircuitError(name, sorted(self._table))
            per_shard.setdefault(shard, {"add": [], "remove": []})[
                "remove"
            ].append(name)
        counts = {shard: 0 for shard in range(len(self._groups))}
        for name, shard in self._table.items():
            counts[shard] += 1
        for shard, plan in per_shard.items():
            counts[shard] -= len(plan["remove"])
        removed = set(request.remove)
        for item in request.add:
            name = item["name"]
            if name in self._table and name not in removed:
                raise ProtocolError(
                    f"circuit {name!r} is already served; remove it in "
                    f"the same reload to replace it"
                )
            if name in removed:
                # A replace must land on the shard that owned the name —
                # its replicas process remove+add as one atomic step.
                shard = self._table[name]
            else:
                shard = min(counts, key=lambda s: (counts[s], s))
            per_shard.setdefault(shard, {"add": [], "remove": []})[
                "add"
            ].append(dict(item))
            counts[shard] += 1
        failures: list[str] = []
        for shard, plan in sorted(per_shard.items()):
            healthy = [
                link
                for link in self._groups[shard]
                if not link.disconnected
            ]
            if not healthy:
                failures.append(f"shard {shard}: all replicas disconnected")
                continue
            op: dict = {"op": "reload"}
            if plan["add"]:
                op["add"] = plan["add"]
            if plan["remove"]:
                op["remove"] = plan["remove"]
            for link, answer in await self._fanout(healthy, op):
                if answer is None:
                    failures.append(
                        f"shard {shard} replica {link.replica}: unreachable"
                    )
                elif not answer.get("ok"):
                    error = answer.get("error") or {}
                    failures.append(
                        f"shard {shard} replica {link.replica}: "
                        f"[{error.get('code')}] {error.get('message')}"
                    )
        if failures:
            return error_response(
                request_id,
                RuntimeError(
                    "reload failed on some workers (retry once fixed — "
                    "reloads are idempotent per name): "
                    + "; ".join(failures)
                ),
            )
        for shard, plan in per_shard.items():
            for name in plan["remove"]:
                self._table.pop(name, None)
            for item in plan["add"]:
                self._table[item["name"]] = shard
        return Response(
            id=request_id,
            ok=True,
            result={
                "added": [item["name"] for item in request.add],
                "removed": list(request.remove),
                "circuits": len(self._table),
            },
        )


def _is_address(group: Any) -> bool:
    """True for one plain ``(host, port)`` pair (legacy flat layout)."""
    return (
        isinstance(group, (tuple, list))
        and len(group) == 2
        and isinstance(group[0], str)
        and isinstance(group[1], int)
    )


class ShardedServer:
    """Spawn replicated circuit-shard workers plus a routing front.

    ``registry`` entries must be declarative (:class:`CircuitSource`):
    workers re-compile their own shard from the specs — the compiled
    artifacts themselves never cross process boundaries. ``replicas``
    spawns that many identical workers per shard; the front
    load-balances per request across them and fails over when one dies.
    """

    def __init__(
        self,
        registry: CircuitRegistry | Iterable[CircuitSource],
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replicas: int = 1,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        worker_threads: int = 4,
        metrics_interval: float | None = None,
        max_inflight: int = 0,
        max_inflight_per_connection: int = 0,
        trace_sample_rate: float = 0.0,
        slow_ms: float | None = None,
    ) -> None:
        if not isinstance(registry, CircuitRegistry):
            registry = CircuitRegistry.from_sources(registry)
        if shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        self._registry = registry
        self._requested_shards = shards
        self.replicas = replicas
        self._host = host
        self._port = port
        self._worker_kwargs = {
            "batch_window": batch_window,
            "max_batch": max_batch,
            "worker_threads": worker_threads,
            "metrics_interval": metrics_interval,
            "trace_sample_rate": trace_sample_rate,
            "slow_ms": slow_ms,
        }
        self._front_limits = {
            "max_inflight": max_inflight,
            "max_inflight_per_connection": max_inflight_per_connection,
        }
        self._processes: list[multiprocessing.Process] = []
        self._front: BackgroundServer | None = None
        self.partitions: list[tuple[CircuitSource, ...]] = []
        #: One address group per shard: ``[[(host, port), ...], ...]``.
        self.shard_addresses: list[list[tuple[str, int]]] = []
        #: Worker processes in the same shape as ``shard_addresses`` —
        #: ``replica_processes[shard][replica]`` (test/chaos hook).
        self.replica_processes: list[list[multiprocessing.Process]] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardedServer":
        if self._front is not None:
            raise RuntimeError("sharded server already started")
        partitions = [
            group
            for group in self._registry.partition(self._requested_shards)
            if group  # skip empty shards when circuits < shards
        ]
        if not partitions:
            raise ValueError("registry holds no circuits to shard")
        self.partitions = partitions
        context = multiprocessing.get_context()
        pipes: list[list] = []
        for group in partitions:
            shard_pipes = []
            shard_processes = []
            for _replica in range(self.replicas):
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(
                        group,
                        # Workers are reachable only by the front on
                        # this machine and honor the shutdown op —
                        # loopback unconditionally, whatever the front
                        # binds.
                        "127.0.0.1",
                        self._worker_kwargs,
                        child_conn,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                shard_processes.append(process)
                shard_pipes.append(parent_conn)
            pipes.append(shard_pipes)
            self.replica_processes.append(shard_processes)
        try:
            for shard_pipes in pipes:
                addresses = []
                for parent_conn in shard_pipes:
                    if not parent_conn.poll(timeout=120):
                        raise RuntimeError(
                            "shard worker did not come up in time"
                        )
                    addresses.append(tuple(parent_conn.recv()))
                    parent_conn.close()
                self.shard_addresses.append(addresses)
        except BaseException:
            self._terminate_workers()
            raise
        table = routing_table(partitions)
        addresses = [list(group) for group in self.shard_addresses]
        host, port = self._host, self._port
        limits = dict(self._front_limits)
        self._front = BackgroundServer(
            factory=lambda: ShardRouter(
                addresses, table, host, port, **limits
            )
        )
        try:
            self._front.start()
        except BaseException:
            self._front = None
            self._terminate_workers()
            raise
        return self

    @property
    def host(self) -> str:
        assert self._front is not None, "call start() first"
        return self._front.host

    @property
    def port(self) -> int:
        assert self._front is not None, "call start() first"
        return self._front.port

    def kill_replica(self, shard: int, replica: int) -> None:
        """Hard-kill one worker (SIGKILL) — the chaos/failover hook."""
        process = self.replica_processes[shard][replica]
        process.kill()
        process.join(timeout=10)

    def stop(self) -> None:
        """Drain the front, shut workers down, join the processes."""
        if self._front is not None:
            self._front.stop()
            self._front = None
        for process in self._processes:
            process.join(timeout=30)
        self._terminate_workers()

    def _terminate_workers(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():
                # SIGTERM ignored (e.g. wedged in native code): escalate
                # so stop() never leaves orphan workers behind.
                process.kill()
                process.join(timeout=5)
        self._processes = []
        self.replica_processes = []

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
