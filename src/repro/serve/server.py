"""The asyncio serving layer over cached tapes.

:class:`ProbLPServer` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over TCP (stdlib ``asyncio`` only). Its
core is the :class:`~repro.serve.batching.MicroBatcher`: concurrent
``eval``/``marginals`` requests against the same (circuit, format,
workload) coalesce within a small window and are answered by **one**
vectorized tape replay, results scattered back per request. Heavyweight
one-off work (``optimize`` format searches, ``hw`` design reports) runs
on the same worker thread pool without batching.

Connection handling rides the shared
:class:`~repro.serve.transport.NdjsonTransport` (the same loop the
sharding/replication front uses), which also enforces the server's
backpressure: per-connection and global in-flight limits answered with
the typed ``overloaded`` error instead of unbounded buffering. Live
per-circuit metrics (:mod:`repro.serve.metrics`) ride every request and
surface through ``ping``/``circuits`` and the optional
``--metrics-interval`` log line.

:class:`BackgroundServer` runs the whole thing on a dedicated event-loop
thread — the embedding used by tests, the benchmark harness and the
sharding front.
"""

from __future__ import annotations

import asyncio
import random
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from .. import __version__
from ..arith.fixedpoint import FixedPointFormat
from ..obs.metrics import METRICS_SCHEMA_VERSION, REGISTRY
from ..obs.tracing import SpanRing, Trace
from .batching import (
    DEFAULT_BATCH_WINDOW,
    DEFAULT_MAX_BATCH,
    BatchKey,
    MicroBatcher,
)
from .metrics import ServeMetrics
from .protocol import (
    STREAM_LIMIT,
    CircuitsRequest,
    EvalRequest,
    HwRequest,
    MarginalsRequest,
    MetricsRequest,
    OptimizeRequest,
    PingRequest,
    ProtocolError,
    ReloadRequest,
    Request,
    Response,
    ShutdownRequest,
    ThetaBatchRequest,
    ok_response,
    parse_request,
)
from .registry import CircuitRegistry
from .transport import Connection, NdjsonTransport

_EXECUTOR_SECONDS = REGISTRY.histogram(
    "problp_executor_seconds",
    "Wall time of one coalesced batch execution on a worker thread.",
    labelnames=("workload", "backend", "fmt"),
)


def _fmt_kind(fmt) -> str:
    if fmt is None:
        return "none"
    return "fixed" if isinstance(fmt, FixedPointFormat) else "float"

#: Default worker threads: enough to overlap a batch flush with an
#: optimize/hw search without oversubscribing numpy.
DEFAULT_WORKER_THREADS = 4

#: Default backpressure limits. Per-connection: a well-behaved pipelined
#: client stays far under this; global: a few max-size micro-batch
#: rounds of headroom before load is shed with ``overloaded``.
DEFAULT_MAX_INFLIGHT_PER_CONNECTION = 1024
DEFAULT_MAX_INFLIGHT = 4096


class ProbLPServer:
    """Serve a :class:`CircuitRegistry` over asyncio TCP.

    Parameters
    ----------
    registry:
        The circuits to serve.
    host, port:
        Bind address; port 0 picks an ephemeral port (read ``.port``
        after :meth:`start`).
    batch_window, max_batch:
        Micro-batching knobs (seconds, requests).
    allow_shutdown:
        Honor the ``shutdown`` op. Off by default; the sharding layer
        enables it on its (loopback-bound) workers for graceful drain.
    worker_threads:
        Thread-pool width for batch flushes and optimize/hw work.
    max_inflight_per_connection, max_inflight:
        Admission limits (0 disables): requests beyond either are
        refused immediately with the ``overloaded`` wire error rather
        than queued without bound.
    metrics_interval:
        When set, log one metrics line (qps / queue depth / p50 / p99
        per circuit) every that-many seconds while serving.
    metrics_log:
        Where the interval line goes (default: stderr).
    trace_sample_rate:
        Probability (0..1) that an *untraced* circuit request is traced
        anyway; sampled traces attach ``result.timing`` exactly like
        explicitly traced ones. Requests carrying a ``trace`` field are
        always traced regardless of the rate.
    slow_ms:
        When set, every circuit request is timed internally (no wire
        overhead) and ones slower than this threshold are written to the
        metrics log as slow-query lines; finished traces land in
        ``span_ring`` either way.
    """

    def __init__(
        self,
        registry: CircuitRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        allow_shutdown: bool = False,
        worker_threads: int = DEFAULT_WORKER_THREADS,
        max_inflight_per_connection: int = DEFAULT_MAX_INFLIGHT_PER_CONNECTION,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        metrics_interval: float | None = None,
        metrics_log: Callable[[str], None] | None = None,
        trace_sample_rate: float = 0.0,
        slow_ms: float | None = None,
        span_ring_size: int = 256,
    ) -> None:
        self.registry = registry
        self._host = host
        self._port = port
        self.allow_shutdown = allow_shutdown
        self._executor = ThreadPoolExecutor(
            max_workers=worker_threads, thread_name_prefix="problp-serve"
        )
        self.batcher = MicroBatcher(
            self._execute_batch,
            window=batch_window,
            max_batch=max_batch,
            executor=self._executor,
        )
        self.metrics = ServeMetrics()
        self.transport = NdjsonTransport(
            self._handle_request,
            max_inflight_per_connection=max_inflight_per_connection,
            max_inflight_total=max_inflight,
            on_overload=self.metrics.record_overload,
        )
        self._metrics_interval = metrics_interval
        self._metrics_log = metrics_log or (
            lambda line: print(line, file=sys.stderr)
        )
        self._metrics_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        self._trace_sample_rate = trace_sample_rate
        self._slow_s = None if slow_ms is None else slow_ms / 1e3
        self.span_ring = SpanRing(span_ring_size)

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self.transport.handle_connection,
            self._host,
            self._port,
            limit=STREAM_LIMIT,
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        if self._metrics_interval:
            self._metrics_task = asyncio.ensure_future(
                self._metrics_loop(self._metrics_interval)
            )

    async def _metrics_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self._metrics_log(
                f"problp serve [{self._host}:{self._port}] "
                + self.metrics.log_line()
            )

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown` (or the shutdown op)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Drain in-flight work, then close sockets and workers.

        Graceful: stop accepting first, let every coalesced batch and
        pending response finish, then hang up on idle clients (3.12's
        ``wait_closed`` waits for connection handlers, so lingering
        clients must be disconnected explicitly).
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            self._metrics_task = None
        await self.batcher.drain()
        await self.transport.drain()
        self.transport.close_connections()
        await self.transport.wait_closed()
        if server is not None:
            await server.wait_closed()
        self.batcher.close()
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.metrics.close()

    # -- request handling ----------------------------------------------
    async def _handle_request(
        self, connection: Connection, payload: Any, request_id
    ) -> Response:
        """One request line → one response (the transport's handler)."""
        request = parse_request(payload)
        circuit = getattr(request, "circuit", None)
        if circuit is None:
            return ok_response(request, await self._respond(request))
        trace = self._trace_for(request)
        record = self.metrics.circuit(circuit)
        record.queue_depth += 1
        start = time.monotonic()
        ok = False
        try:
            result = await self._respond(request, trace)
            ok = True
            if trace is not None:
                result = self._finish_trace(trace, request, result, ok=True)
            return ok_response(request, result)
        finally:
            if trace is not None and not ok:
                self._finish_trace(trace, request, None, ok=False)
            record.queue_depth -= 1
            record.record(time.monotonic() - start, ok=ok)

    def _trace_for(self, request: Request) -> Trace | None:
        """The trace context for one circuit request, or None.

        Explicitly traced requests always trace (and emit timing);
        ``trace_sample_rate`` promotes a random slice of the rest;
        ``--slow-ms`` times everything internally without emitting.
        """
        wire = getattr(request, "trace", None)
        parent = None
        if wire is not None:
            trace = Trace(wire.get("id"), emit=True)
            parent = wire.get("parent")
        elif (
            self._trace_sample_rate > 0.0
            and random.random() < self._trace_sample_rate
        ):
            trace = Trace(emit=True)
        elif self._slow_s is not None:
            trace = Trace(emit=False)
        else:
            return None
        trace.span(
            "shard.replica",
            parent=parent,
            op=request.op,
            circuit=getattr(request, "circuit", None),
        )
        return trace

    def _finish_trace(
        self, trace: Trace, request: Request, result, *, ok: bool
    ):
        """Close the root span, feed the ring/slow log, attach timing."""
        root = trace.root.end()
        duration_ms = root.duration_us / 1e3
        self.span_ring.record({
            "trace_id": trace.trace_id,
            "op": request.op,
            "circuit": getattr(request, "circuit", None),
            "ok": ok,
            "duration_ms": round(duration_ms, 3),
            "spans": [span.to_dict() for span in trace.spans],
        })
        if self._slow_s is not None and duration_ms >= self._slow_s * 1e3:
            breakdown = " ".join(
                f"{span.name}={span.duration_us}us"
                for span in trace.spans
                if span.duration_us is not None
            )
            self._metrics_log(
                f"problp serve slow-query trace={trace.trace_id} "
                f"op={request.op} "
                f"circuit={getattr(request, 'circuit', None)} "
                f"dur_ms={duration_ms:.3f} {breakdown}"
            )
        if ok and trace.emit:
            result = dict(result)
            result["timing"] = trace.to_timing()
        return result

    async def _respond(
        self, request: Request, trace: Trace | None = None
    ) -> dict:
        if isinstance(request, PingRequest):
            return {
                "server": "problp-serve",
                "version": __version__,
                "protocol": 1,
                "circuits": len(self.registry),
                "uptime_s": round(self.metrics.uptime_s, 3),
                "inflight": self.transport.inflight,
                "batching": self.batcher.stats.to_dict(),
                "backends": self._backend_availability(),
                "metrics": self.metrics.snapshot(),
                "metrics_schema_version": METRICS_SCHEMA_VERSION,
                # Protocol capabilities clients probe before relying on
                # newer ops (θ tiles since PR 7, hot reload since PR 9,
                # metrics/tracing since PR 10).
                "capabilities": {"theta_batch": True, "reload": True,
                                 "metrics": True, "trace": True},
            }
        if isinstance(request, MetricsRequest):
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "families": REGISTRY.collect(),
            }
        if isinstance(request, CircuitsRequest):
            # describe() may lazily build marginal indexes — off-loop,
            # like every other potentially heavy request body.
            loop = asyncio.get_running_loop()
            circuits = await loop.run_in_executor(
                self._executor, self.registry.describe
            )
            for info in circuits:
                snapshot = self.metrics.circuit_snapshot(info["name"])
                if snapshot is not None:
                    info["metrics"] = snapshot
            return {"circuits": circuits}
        if isinstance(request, ShutdownRequest):
            if not self.allow_shutdown:
                raise ProtocolError(
                    "shutdown is not enabled on this server"
                )
            self.request_shutdown()
            return {"stopping": True}
        if isinstance(request, ReloadRequest):
            return self.registry.apply_reload(
                add=request.add, remove=request.remove
            )
        if isinstance(request, EvalRequest):
            key = BatchKey(
                circuit=request.circuit, kind="eval", fmt=request.fmt
            )
            return await self.batcher.submit(key, request, trace)
        if isinstance(request, MarginalsRequest):
            key = BatchKey(
                circuit=request.circuit,
                kind="marginals",
                fmt=request.fmt,
                joint=request.joint,
            )
            return await self.batcher.submit(key, request, trace)
        if isinstance(request, ThetaBatchRequest):
            key = BatchKey(
                circuit=request.circuit, kind="theta", fmt=request.fmt
            )
            return await self.batcher.submit(key, request, trace)
        if isinstance(request, OptimizeRequest):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._run_optimize, request
            )
        if isinstance(request, HwRequest):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._run_hw, request
            )
        raise ProtocolError(f"unhandled request type {type(request).__name__}")

    @staticmethod
    def _backend_availability() -> dict:
        from ..engine import (
            native_available,
            native_unavailable_reason,
            requested_backend,
        )

        payload: dict = {
            "numpy": True,
            "native": native_available(),
            "requested": requested_backend(),
        }
        if payload["native"]:
            # Codegen v2 capabilities: int64 fixed *and* emulated-float
            # word kernels, plus runtime-parameter (θ) entry points —
            # clients probe these before routing quantized rasters.
            payload["native_formats"] = ["fixed", "float"]
            payload["native_theta"] = True
        reason = native_unavailable_reason()
        if reason is not None:
            payload["native_unavailable_reason"] = reason
        return payload

    # -- blocking executors (worker threads) ---------------------------
    def _execute_batch(
        self, key: BatchKey, requests: Sequence[Any]
    ) -> list[dict]:
        """One coalesced replay, timed into the executor histogram."""
        started = time.monotonic()
        results = self._execute_batch_inner(key, requests)
        backend = (
            results[0].get("backend", "unknown") if results else "unknown"
        )
        _EXECUTOR_SECONDS.labels(key.kind, backend, _fmt_kind(key.fmt)).observe(
            time.monotonic() - started
        )
        return results

    def _execute_batch_inner(
        self, key: BatchKey, requests: Sequence[Any]
    ) -> list[dict]:
        """One coalesced tape replay; one result dict per request."""
        self.metrics.circuit(key.circuit).record_batch(len(requests))
        entry = self.registry.entry(key.circuit)
        session = entry.session
        batch = [request.evidence for request in requests]
        size = len(batch)
        if key.kind == "eval":
            # The side-effect-free dispatch predictor: concurrent batch
            # flushes on other formats may rewrite the session's last
            # recorded fallback reason between our sweep and the
            # scatter, so ask for this batch's routing explicitly.
            backend, fallback = session.dispatch_plan(fmt=key.fmt)
            exact = session.evaluate_batch(batch, strict=True)
            quantized = (
                session.evaluate_quantized_batch(key.fmt, batch, strict=True)
                if key.fmt is not None
                else None
            )
            results = []
            for row in range(size):
                result: dict = {
                    "value": float(exact[row]),
                    "batched": size,
                    "backend": backend,
                }
                if fallback:
                    result["fallback_reason"] = fallback
                if quantized is not None:
                    result["quantized"] = float(quantized[row])
                results.append(result)
            return results
        if key.kind == "marginals":
            # Validate the cheap part first: a typo'd variable name must
            # fail before the batched sweeps run, not after (the whole
            # coalesced result would be discarded on the way out).
            per_request_variables = [
                self._marginal_variables(session, request)
                for request in requests
            ]
            backend, fallback = session.dispatch_plan(fmt=key.fmt)
            exact = session.marginals_batch(
                batch, strict=True, joint=key.joint
            )
            quantized = (
                session.quantized_marginals_batch(
                    key.fmt, batch, strict=True, joint=key.joint
                )
                if key.fmt is not None
                else None
            )
            field = "joints" if key.joint else "posteriors"
            results = []
            for row, variables in enumerate(per_request_variables):
                result = {
                    field: {
                        variable: [
                            float(p) for p in exact[variable][:, row]
                        ]
                        for variable in variables
                    },
                    "batched": size,
                    "backend": backend,
                }
                if fallback:
                    result["fallback_reason"] = fallback
                if quantized is not None:
                    result["quantized"] = {
                        variable: [
                            float(p) for p in quantized[variable][:, row]
                        ]
                        for variable in variables
                    }
                results.append(result)
            return results
        if key.kind == "theta":
            return self._execute_theta_batch(session, key, requests)
        raise ProtocolError(f"unknown batch kind {key.kind!r}")

    @staticmethod
    def _execute_theta_batch(
        session, key: BatchKey, requests: Sequence[Any]
    ) -> list[dict]:
        """One coalesced θ sweep over every tile in the bucket.

        Tiles of one (circuit, format) bucket are stacked into a single
        ``(total_rows, n_params)`` matrix, each tile's shared evidence
        repeated per row, and the whole raster slice runs as **one**
        batched replay (plus one quantized sweep when a format is set);
        row slices are scattered back per request — so a client
        streaming one request per map tile costs tape sweeps per
        *bucket*, not per tile.
        """
        theta = np.vstack(
            [
                np.asarray(request.theta, dtype=np.float64)
                for request in requests
            ]
        )
        evidence_rows: list = []
        for request in requests:
            evidence_rows.extend([request.evidence] * len(request.theta))
        # θ sweeps ride the runtime-parameter kernel entry points when
        # the native module supports them; the side-effect-free planner
        # tells us which backend this bucket actually lands on (and why
        # not native, when it doesn't).
        backend, fallback = session.dispatch_plan(fmt=key.fmt, theta=True)
        exact = session.evaluate_batch(evidence_rows, strict=True, theta=theta)
        quantized = (
            session.evaluate_quantized_batch(
                key.fmt, evidence_rows, strict=True, theta=theta
            )
            if key.fmt is not None
            else None
        )
        results = []
        start = 0
        for request in requests:
            stop = start + len(request.theta)
            result: dict = {
                "values": [float(v) for v in exact[start:stop]],
                "batched": len(requests),
                "rows": int(theta.shape[0]),
                "backend": backend,
            }
            if fallback:
                result["fallback_reason"] = fallback
            if quantized is not None:
                result["quantized"] = [
                    float(v) for v in quantized[start:stop]
                ]
            results.append(result)
            start = stop
        return results

    @staticmethod
    def _marginal_variables(session, request) -> Sequence[str]:
        known = session.marginal_index.variables
        if request.variables is None:
            return known
        known_set = set(known)
        unknown = [v for v in request.variables if v not in known_set]
        if unknown:
            raise ProtocolError(
                f"circuit has no indicators for variable(s) {unknown}"
            )
        return request.variables

    def _run_optimize(self, request: OptimizeRequest) -> dict:
        entry = self.registry.entry(request.circuit)
        framework = entry.framework(
            request.query,
            request.tolerance,
            max_bits=request.max_bits,
            variant=request.variant,
            rounding=request.rounding,
        )
        result = framework.optimize(workload=request.workload)
        return result.to_json_dict()

    def _run_hw(self, request: HwRequest) -> dict:
        entry = self.registry.entry(request.circuit)
        framework = entry.framework(
            request.query,
            request.tolerance,
            max_bits=request.max_bits,
            rounding=request.rounding,
        )
        result = None
        fmt = request.fmt
        if fmt is None:
            result = framework.analyze(request.workload)
            fmt = result.selected_format
        design = framework.generate_hardware(
            fmt=fmt, result=result, workload=request.workload
        )
        payload = design.report_dict()
        payload["selected_by_search"] = request.fmt is None
        if request.include_rtl:
            payload["verilog"] = design.verilog()
        return payload


class BackgroundServer:
    """A :class:`ProbLPServer` on its own event-loop thread.

    The embedding used wherever the caller is synchronous: tests, the
    serving benchmark, and the sharding front. ``start()`` blocks until
    the socket is bound (so ``.port`` is valid), ``stop()`` drains and
    joins. Usable as a context manager.

    ``factory`` generalizes the runner to any server-shaped object
    (``start`` / ``serve_until_shutdown`` / ``request_shutdown`` plus
    ``host`` / ``port``) — the sharding front's router rides the same
    loop thread this way.
    """

    def __init__(
        self,
        registry: CircuitRegistry | None = None,
        *,
        factory: Any = None,
        **kwargs: Any,
    ) -> None:
        if factory is None:
            if registry is None:
                raise ValueError("need a registry or a factory")
            factory = lambda: ProbLPServer(registry, **kwargs)  # noqa: E731
        elif kwargs or registry is not None:
            raise ValueError("factory and registry/kwargs are exclusive")
        self._factory = factory
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: Any = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="problp-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise RuntimeError(
                "serving loop failed to start"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("serving loop did not come up in time")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — reported to starter
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = self._factory()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    @property
    def host(self) -> str:
        assert self.server is not None, "call start() first"
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server is not None, "call start() first"
        return self.server.port

    def stop(self) -> None:
        """Request shutdown, drain, and join the loop thread."""
        if self._thread is None:
            return
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=60)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
