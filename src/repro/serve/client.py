"""A small synchronous client for the serving protocol.

:class:`ServeClient` speaks newline-delimited JSON over **one
persistent socket**. The connection is opened lazily on the first
request and reused for every request after it — reconnecting per call
would defeat both the server's connection-level admission control and
the micro-batching window. It supports two shapes of traffic:

* :meth:`request` — send one request, wait for its answer (the
  "sequential per-request dispatch" baseline);
* :meth:`request_many` — send a whole burst of requests *pipelined*
  (all lines written before any response is read). Pipelining is what
  lets the server's micro-batching queue coalesce the burst into one
  vectorized tape replay; responses are matched back by id, so order on
  the wire does not matter.

Lifecycle is uniform: :meth:`close` is idempotent, the context manager
closes on exit, and a client whose connection dropped (server restart,
mid-response timeout) transparently dials again on its next request —
with the stale response stash cleared, so an answer from the old
connection can never satisfy a request on the new one.

For many concurrent callers sharing a fleet of persistent connections
with ``overloaded``-aware retry, see :class:`~repro.serve.pool.ClientPool`.

Used by the test suite, ``benchmarks/bench_serving.py`` and the
sharding front's drain logic; applications with an event loop of their
own can speak the protocol directly with ``asyncio.open_connection``.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterable, Mapping, Sequence

from .protocol import (
    Request,
    Response,
    ServeError,
    format_spec,
)

__all__ = ["ServeClient", "ServeError"]


def _apply_format(payload: dict, fmt) -> None:
    """Attach format/rounding wire fields (spec string or format object)."""
    if fmt is None:
        return
    if isinstance(fmt, str):
        payload["format"] = fmt
    else:
        payload["format"] = format_spec(fmt)
        payload["rounding"] = fmt.rounding.value


class ServeClient:
    """Blocking protocol client over one reused connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        *,
        lazy: bool = False,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._recv_file = None
        self._next_id = 0
        #: Ids awaiting a response (explicit and auto-assigned alike) —
        #: auto-assignment skips them so it never collides with a
        #: caller-supplied id in the same pipeline.
        self._in_flight: set[Any] = set()
        #: Responses that arrived while waiting for a different id.
        self._stash: dict[Any, Response] = {}
        if not lazy:
            self._connect()

    # -- connection lifecycle -------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._recv_file = self._sock.makefile("rb")

    def _ensure_connected(self) -> socket.socket:
        """The live socket — dialing (or re-dialing) when needed.

        Reconnection starts a clean request session: pending ids and
        stashed responses belonged to the dead connection and are
        dropped, so a stale answer can never be matched to a fresh
        request.
        """
        if self._sock is None:
            self._in_flight.clear()
            self._stash.clear()
            self._connect()
        assert self._sock is not None
        return self._sock

    def close(self) -> None:
        """Hang up. Idempotent; the client can be used again (it
        reconnects on the next request)."""
        recv_file, self._recv_file = self._recv_file, None
        sock, self._sock = self._sock, None
        try:
            if recv_file is not None:
                recv_file.close()
        except OSError:
            pass
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------
    def _payload_of(
        self, request: Request | Mapping[str, Any], reserved: set
    ) -> dict:
        payload = (
            dict(request.to_wire())
            if isinstance(request, Request)
            else dict(request)
        )
        if payload.get("id") is None:
            while True:
                self._next_id += 1
                if (
                    self._next_id not in reserved
                    and self._next_id not in self._in_flight
                ):
                    break
            payload["id"] = self._next_id
        return payload

    def _send_lines(self, payloads: Sequence[dict]) -> None:
        data = b"".join(
            (json.dumps(payload) + "\n").encode("utf-8")
            for payload in payloads
        )
        try:
            self._ensure_connected().sendall(data)
        except (ConnectionError, OSError):
            # The kept-alive socket went stale (server restart, idle
            # reset). Nothing of this burst was answered, so one
            # reconnect-and-resend is safe.
            self.close()
            self._ensure_connected().sendall(data)

    def _read_response(self) -> Response:
        if self._recv_file is None:
            raise ConnectionError("client is not connected")
        try:
            line = self._recv_file.readline()
        except (TimeoutError, OSError):
            # A timed-out buffered read may stop mid-line; the stream
            # can no longer be trusted to frame responses. Drop the
            # connection — the next request dials fresh.
            self.close()
            raise ConnectionError(
                "timed out mid-response; the connection was dropped — "
                "the next request reconnects"
            ) from None
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        return Response.from_wire(json.loads(line))

    def _wait_for(self, request_id) -> Response:
        try:
            if request_id in self._stash:
                return self._stash.pop(request_id)
            while True:
                response = self._read_response()
                if response.id == request_id:
                    return response
                if response.id is None:
                    # The server could not attribute the request (e.g.
                    # it rejected the id itself); surface the error to
                    # the current waiter instead of stalling forever.
                    return response
                self._stash[response.id] = response
        finally:
            self._in_flight.discard(request_id)

    # -- request surface -----------------------------------------------
    def request(self, request: Request | Mapping[str, Any]) -> Response:
        """One request, one (possibly out-of-order) matched response.

        A kept-alive connection that turns out to be dead (server
        restarted since the last call) is retried once on a fresh dial —
        but only when this request is the *only* traffic on the
        connection, so a pipelined burst can never be double-executed.
        """
        payload = self._payload_of(request, reserved=set())
        for attempt in (0, 1):
            self._in_flight.add(payload["id"])
            try:
                self._send_lines([payload])
                return self._wait_for(payload["id"])
            except ConnectionError:
                self.close()
                if attempt or self._in_flight or self._stash:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def request_many(
        self, requests: Iterable[Request | Mapping[str, Any]]
    ) -> list[Response]:
        """Pipeline a burst; responses returned in request order.

        All request lines hit the server before any response is read —
        concurrent handling on the server side coalesces compatible
        requests into micro-batches.
        """
        requests = list(requests)
        explicit = {
            (
                request.id
                if isinstance(request, Request)
                else request.get("id")
            )
            for request in requests
        }
        explicit.discard(None)
        payloads = [
            self._payload_of(request, reserved=explicit)
            for request in requests
        ]
        self._in_flight.update(payload["id"] for payload in payloads)
        self._send_lines(payloads)
        return [self._wait_for(payload["id"]) for payload in payloads]

    # -- convenience wrappers -------------------------------------------
    def ping(self) -> dict:
        return dict(self.request({"op": "ping"}).raise_for_error().result)

    def metrics(self) -> dict:
        """The server's metric families (merged across replicas when
        sharded); ``{"schema_version": int, "families": [...]}``."""
        return dict(self.request({"op": "metrics"}).raise_for_error().result)

    def circuits(self) -> list[dict]:
        response = self.request({"op": "circuits"}).raise_for_error()
        return list(response.result["circuits"])

    def eval(
        self,
        circuit: str,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
        *,
        trace: bool | Mapping[str, str] = False,
    ) -> dict:
        """One root evaluation; returns the result payload.

        ``trace=True`` (or an explicit ``{"id": …}`` context) asks the
        server for a ``timing`` span breakdown alongside the values.
        """
        payload: dict[str, Any] = {
            "op": "eval",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
        }
        if trace:
            payload["trace"] = dict(trace) if isinstance(trace, Mapping) else {}
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def marginals(
        self,
        circuit: str,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
        joint: bool = False,
        variables: Sequence[str] | None = None,
    ) -> dict:
        payload: dict[str, Any] = {
            "op": "marginals",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
            "joint": joint,
        }
        if variables is not None:
            payload["variables"] = list(variables)
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def theta_batch(
        self,
        circuit: str,
        theta,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
    ) -> dict:
        """One θ-sweep tile: ``len(theta)`` root values, shared evidence.

        ``theta`` is any matrix-shaped iterable of parameter rows (a
        numpy array works). Stream one call per raster tile — the
        server's micro-batcher stacks concurrent tiles of one
        (circuit, format) bucket into a single batched tape replay.
        """
        payload: dict[str, Any] = {
            "op": "theta_batch",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
            "theta": [[float(value) for value in row] for row in theta],
        }
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def optimize(self, circuit: str, **fields: Any) -> dict:
        payload = {"op": "optimize", "circuit": circuit, **fields}
        return dict(self.request(payload).raise_for_error().result)

    def hw(self, circuit: str, **fields: Any) -> dict:
        payload = {"op": "hw", "circuit": circuit, **fields}
        return dict(self.request(payload).raise_for_error().result)

    def reload(
        self,
        add: Iterable[Mapping[str, Any]] = (),
        remove: Iterable[str] = (),
    ) -> dict:
        """Hot-reload served circuits; see :class:`ReloadRequest`."""
        payload: dict[str, Any] = {"op": "reload"}
        add = [dict(item) for item in add]
        remove = list(remove)
        if add:
            payload["add"] = add
        if remove:
            payload["remove"] = remove
        return dict(self.request(payload).raise_for_error().result)

    def shutdown(self) -> dict:
        return dict(self.request({"op": "shutdown"}).raise_for_error().result)
