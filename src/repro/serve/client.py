"""A small synchronous client for the serving protocol.

:class:`ServeClient` speaks newline-delimited JSON over a plain socket.
It supports two shapes of traffic:

* :meth:`request` — send one request, wait for its answer (the
  "sequential per-request dispatch" baseline);
* :meth:`request_many` — send a whole burst of requests *pipelined*
  (all lines written before any response is read). Pipelining is what
  lets the server's micro-batching queue coalesce the burst into one
  vectorized tape replay; responses are matched back by id, so order on
  the wire does not matter.

Used by the test suite, ``benchmarks/bench_serving.py`` and the
sharding front's drain logic; applications with an event loop of their
own can speak the protocol directly with ``asyncio.open_connection``.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterable, Mapping, Sequence

from .protocol import (
    Request,
    Response,
    ServeError,
    format_spec,
)

__all__ = ["ServeClient", "ServeError"]


def _apply_format(payload: dict, fmt) -> None:
    """Attach format/rounding wire fields (spec string or format object)."""
    if fmt is None:
        return
    if isinstance(fmt, str):
        payload["format"] = fmt
    else:
        payload["format"] = format_spec(fmt)
        payload["rounding"] = fmt.rounding.value


class ServeClient:
    """Blocking protocol client (context-manager friendly)."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._recv_file = self._sock.makefile("rb")
        self._next_id = 0
        #: Ids awaiting a response (explicit and auto-assigned alike) —
        #: auto-assignment skips them so it never collides with a
        #: caller-supplied id in the same pipeline.
        self._in_flight: set[Any] = set()
        #: Responses that arrived while waiting for a different id.
        self._stash: dict[Any, Response] = {}

    # -- plumbing ------------------------------------------------------
    def _payload_of(
        self, request: Request | Mapping[str, Any], reserved: set
    ) -> dict:
        payload = (
            dict(request.to_wire())
            if isinstance(request, Request)
            else dict(request)
        )
        if payload.get("id") is None:
            while True:
                self._next_id += 1
                if (
                    self._next_id not in reserved
                    and self._next_id not in self._in_flight
                ):
                    break
            payload["id"] = self._next_id
        return payload

    def _send_lines(self, payloads: Sequence[dict]) -> None:
        data = b"".join(
            (json.dumps(payload) + "\n").encode("utf-8")
            for payload in payloads
        )
        self._sock.sendall(data)

    def _read_response(self) -> Response:
        try:
            line = self._recv_file.readline()
        except (TimeoutError, OSError):
            # A timed-out buffered read may stop mid-line; the stream
            # can no longer be trusted to frame responses. Fail loudly
            # and permanently instead of desynchronizing on reuse.
            self.close()
            raise ConnectionError(
                "timed out mid-response; the connection is no longer "
                "usable — reconnect with a fresh ServeClient"
            ) from None
        if not line:
            raise ConnectionError("server closed the connection")
        return Response.from_wire(json.loads(line))

    def _wait_for(self, request_id) -> Response:
        try:
            if request_id in self._stash:
                return self._stash.pop(request_id)
            while True:
                response = self._read_response()
                if response.id == request_id:
                    return response
                if response.id is None:
                    # The server could not attribute the request (e.g.
                    # it rejected the id itself); surface the error to
                    # the current waiter instead of stalling forever.
                    return response
                self._stash[response.id] = response
        finally:
            self._in_flight.discard(request_id)

    # -- request surface -----------------------------------------------
    def request(self, request: Request | Mapping[str, Any]) -> Response:
        """One request, one (possibly out-of-order) matched response."""
        payload = self._payload_of(request, reserved=set())
        self._in_flight.add(payload["id"])
        self._send_lines([payload])
        return self._wait_for(payload["id"])

    def request_many(
        self, requests: Iterable[Request | Mapping[str, Any]]
    ) -> list[Response]:
        """Pipeline a burst; responses returned in request order.

        All request lines hit the server before any response is read —
        concurrent handling on the server side coalesces compatible
        requests into micro-batches.
        """
        requests = list(requests)
        explicit = {
            (
                request.id
                if isinstance(request, Request)
                else request.get("id")
            )
            for request in requests
        }
        explicit.discard(None)
        payloads = [
            self._payload_of(request, reserved=explicit)
            for request in requests
        ]
        self._in_flight.update(payload["id"] for payload in payloads)
        self._send_lines(payloads)
        return [self._wait_for(payload["id"]) for payload in payloads]

    # -- convenience wrappers -------------------------------------------
    def ping(self) -> dict:
        return dict(self.request({"op": "ping"}).raise_for_error().result)

    def circuits(self) -> list[dict]:
        response = self.request({"op": "circuits"}).raise_for_error()
        return list(response.result["circuits"])

    def eval(
        self,
        circuit: str,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
    ) -> dict:
        """One root evaluation; returns the result payload."""
        payload: dict[str, Any] = {
            "op": "eval",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
        }
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def marginals(
        self,
        circuit: str,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
        joint: bool = False,
        variables: Sequence[str] | None = None,
    ) -> dict:
        payload: dict[str, Any] = {
            "op": "marginals",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
            "joint": joint,
        }
        if variables is not None:
            payload["variables"] = list(variables)
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def theta_batch(
        self,
        circuit: str,
        theta,
        evidence: Mapping[str, int] | None = None,
        fmt=None,
    ) -> dict:
        """One θ-sweep tile: ``len(theta)`` root values, shared evidence.

        ``theta`` is any matrix-shaped iterable of parameter rows (a
        numpy array works). Stream one call per raster tile — the
        server's micro-batcher stacks concurrent tiles of one
        (circuit, format) bucket into a single batched tape replay.
        """
        payload: dict[str, Any] = {
            "op": "theta_batch",
            "circuit": circuit,
            "evidence": dict(evidence or {}),
            "theta": [[float(value) for value in row] for row in theta],
        }
        _apply_format(payload, fmt)
        return dict(self.request(payload).raise_for_error().result)

    def optimize(self, circuit: str, **fields: Any) -> dict:
        payload = {"op": "optimize", "circuit": circuit, **fields}
        return dict(self.request(payload).raise_for_error().result)

    def hw(self, circuit: str, **fields: Any) -> dict:
        payload = {"op": "hw", "circuit": circuit, **fields}
        return dict(self.request(payload).raise_for_error().result)

    def shutdown(self) -> dict:
        return dict(self.request({"op": "shutdown"}).raise_for_error().result)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._recv_file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
