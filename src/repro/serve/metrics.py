"""Live serving metrics: per-circuit qps, batching, queue depth, latency.

The server records one sample per finished request and one sample per
coalesced batch flush. Everything here is **lock-cheap by design**: the
hot-path mutators only touch per-circuit integer counters and a
fixed-size latency ring, all of which are single CPython bytecode-level
operations protected by the GIL — no lock is taken per request. The only
lock in the module guards *creation* of a per-circuit record (a one-time
event per circuit name), and quantile math happens at snapshot time
(``ping`` / ``circuits`` / the ``--metrics-interval`` log line), never on
the request path. Counters are therefore approximate under extreme
concurrency, which is the correct trade for an observability surface.

Since PR 10 this module is re-platformed onto the process-wide
:mod:`repro.obs.metrics` registry: each :class:`ServeMetrics` registers
one snapshot-time *collector* that renders its per-circuit state as
``problp_serve_*`` Prometheus families next to the engine's counters —
nothing new is paid on the request path.  All clocks here are
``time.monotonic()`` so NTP steps can't corrupt qps/p50/p99.
"""

from __future__ import annotations

import math
import threading
import time

from ..obs.metrics import REGISTRY

__all__ = [
    "LATENCY_WINDOW",
    "CircuitMetrics",
    "RateMeter",
    "ServeMetrics",
]

#: Latency ring size per circuit: enough samples for a stable p99 while
#: keeping snapshot sorting trivial.
LATENCY_WINDOW = 512

#: Width of one qps bucket (seconds). Rates blend the current and the
#: previous bucket, so a reported qps describes roughly the last
#: 5–10 seconds of traffic rather than the process lifetime.
RATE_BUCKET = 5.0


class RateMeter:
    """A two-bucket sliding-window event rate (events per second).

    ``tick()`` is one attribute bump on the hot path; ``rate()`` blends
    the previous bucket with the in-progress one so the estimate decays
    smoothly instead of sawtoothing at bucket boundaries.
    """

    __slots__ = ("_bucket", "_current", "_previous", "window")

    def __init__(self, window: float = RATE_BUCKET) -> None:
        self.window = window
        self._bucket = -1
        self._current = 0
        self._previous = 0

    def _roll(self, now: float) -> None:
        bucket = int(now // self.window)
        if bucket != self._bucket:
            self._previous = (
                self._current if bucket == self._bucket + 1 else 0
            )
            self._current = 0
            self._bucket = bucket

    def tick(self, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        self._roll(now)
        self._current += 1

    def rate(self, now: float | None = None) -> float:
        now = time.monotonic() if now is None else now
        self._roll(now)
        fraction = (now % self.window) / self.window
        blended = self._current + self._previous * (1.0 - fraction)
        return blended / self.window


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted sample list."""
    rank = min(len(samples) - 1, max(0, math.ceil(q * len(samples)) - 1))
    return samples[rank]


class CircuitMetrics:
    """Counters and a latency ring for one served circuit."""

    __slots__ = (
        "name",
        "requests",
        "errors",
        "batches",
        "batched_requests",
        "queue_depth",
        "_rate",
        "_latencies",
        "_latency_index",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.requests = 0
        self.errors = 0
        #: Coalesced flushes and the requests they carried; their ratio
        #: is the live batch-coalescing factor.
        self.batches = 0
        self.batched_requests = 0
        #: Requests admitted but not yet answered.
        self.queue_depth = 0
        self._rate = RateMeter()
        self._latencies: list[float] = []
        self._latency_index = 0

    # -- hot path ------------------------------------------------------
    def record(self, latency_s: float, *, ok: bool = True) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        self._rate.tick()
        if len(self._latencies) < LATENCY_WINDOW:
            self._latencies.append(latency_s)
        else:
            self._latencies[self._latency_index] = latency_s
            self._latency_index = (
                self._latency_index + 1
            ) % LATENCY_WINDOW

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size

    # -- snapshot path -------------------------------------------------
    def snapshot(self) -> dict:
        ordered = sorted(self._latencies)
        payload = {
            "requests": self.requests,
            "errors": self.errors,
            "qps": round(self._rate.rate(), 3),
            "queue_depth": self.queue_depth,
            "batches": self.batches,
            "mean_batch": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
        }
        if ordered:
            payload["p50_ms"] = round(_quantile(ordered, 0.50) * 1e3, 3)
            payload["p99_ms"] = round(_quantile(ordered, 0.99) * 1e3, 3)
        return payload


class ServeMetrics:
    """The server-wide metrics registry (plus overload/global counters).

    Registers itself as a snapshot-time collector on the process
    :data:`~repro.obs.metrics.REGISTRY`; call :meth:`close` when the
    owning server stops so serial in-process servers (tests) don't
    stack collectors.
    """

    def __init__(self, registry=REGISTRY) -> None:
        self.started = time.monotonic()
        self.overloaded = 0
        self._circuits: dict[str, CircuitMetrics] = {}
        self._create_lock = threading.Lock()
        self._registry = registry
        if registry is not None:
            registry.register_collector(self._collect)

    def close(self) -> None:
        """Unregister the Prometheus collector (idempotent)."""
        if self._registry is not None:
            self._registry.unregister_collector(self._collect)
            self._registry = None

    def _collect(self):
        """Prometheus families from the live per-circuit state."""
        with self._create_lock:
            circuits = sorted(self._circuits.items())
        snaps = [(name, record.snapshot()) for name, record in circuits]

        def family(suffix, kind, help, key, predicate=None):
            return {
                "name": f"problp_serve_{suffix}",
                "type": kind,
                "help": help,
                "samples": [
                    {"labels": {"circuit": name}, "value": snap[key]}
                    for name, snap in snaps
                    if predicate is None or predicate(snap)
                ],
            }

        return [
            {
                "name": "problp_serve_uptime_seconds",
                "type": "gauge",
                "help": "Server uptime (monotonic clock).",
                "samples": [{"labels": {}, "value": self.uptime_s}],
            },
            {
                "name": "problp_serve_overloaded_total",
                "type": "counter",
                "help": "Requests shed with the overloaded error code.",
                "samples": [{"labels": {}, "value": self.overloaded}],
            },
            family("requests_total", "counter",
                   "Finished requests per circuit.", "requests"),
            family("errors_total", "counter",
                   "Finished requests that answered with an error.",
                   "errors"),
            family("qps", "gauge",
                   "Sliding-window request rate per circuit.", "qps"),
            family("queue_depth", "gauge",
                   "Requests admitted but not yet answered.",
                   "queue_depth"),
            family("batches_total", "counter",
                   "Coalesced micro-batch flushes per circuit.",
                   "batches"),
            family("mean_batch", "gauge",
                   "Mean requests per coalesced flush.", "mean_batch"),
            family("latency_p50_ms", "gauge",
                   "Median request latency over the ring window.",
                   "p50_ms", predicate=lambda s: "p50_ms" in s),
            family("latency_p99_ms", "gauge",
                   "p99 request latency over the ring window.",
                   "p99_ms", predicate=lambda s: "p99_ms" in s),
        ]

    # -- hot path ------------------------------------------------------
    def circuit(self, name: str) -> CircuitMetrics:
        record = self._circuits.get(name)
        if record is None:
            with self._create_lock:
                record = self._circuits.setdefault(
                    name, CircuitMetrics(name)
                )
        return record

    def record_overload(self) -> None:
        self.overloaded += 1

    # -- snapshot path -------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def snapshot(self) -> dict:
        per_circuit = {
            name: record.snapshot()
            for name, record in sorted(self._circuits.items())
        }
        return {
            "uptime_s": round(self.uptime_s, 3),
            "overloaded": self.overloaded,
            "requests": sum(c["requests"] for c in per_circuit.values()),
            "qps": round(
                sum(c["qps"] for c in per_circuit.values()), 3
            ),
            "circuits": per_circuit,
        }

    def circuit_snapshot(self, name: str) -> dict | None:
        record = self._circuits.get(name)
        return record.snapshot() if record is not None else None

    def log_line(self) -> str:
        """One human-scannable line for ``--metrics-interval`` logging."""
        snap = self.snapshot()
        parts = [
            f"qps={snap['qps']:g}",
            f"requests={snap['requests']}",
            f"overloaded={snap['overloaded']}",
        ]
        for name, circuit in snap["circuits"].items():
            if not circuit["requests"]:
                continue
            detail = (
                f"{name}: qps={circuit['qps']:g} "
                f"depth={circuit['queue_depth']}"
            )
            if "p50_ms" in circuit:
                detail += (
                    f" p50={circuit['p50_ms']:g}ms "
                    f"p99={circuit['p99_ms']:g}ms"
                )
            if circuit["batches"]:
                detail += f" batch={circuit['mean_batch']:.1f}"
            parts.append(detail)
        return " | ".join(parts)
