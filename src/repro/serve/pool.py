"""A thread-safe pool of persistent serving connections.

Threaded applications (and the soak benchmark) want many workers
hammering one server without a dial per request and without tripping
over each other's response streams. :class:`ClientPool` keeps a fixed
fleet of lazily-dialed :class:`~repro.serve.client.ServeClient`
connections; a worker checks one out, runs any number of requests on
it, and hands it back. Connections are created on first checkout, so a
pool of 16 costs nothing until 16 workers are actually concurrent.

The pool is also the client side of the server's **backpressure**: a
response carrying the typed ``overloaded`` error code means the server
shed the request at admission instead of queueing without bound. That
code is explicitly retryable — :meth:`request` (and the convenience
wrappers built on it) sleeps a growing backoff and resends, up to
``max_retries`` attempts, before surfacing the error. Every other error
code propagates immediately: a ``bad_request`` does not become less bad
by retrying.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Mapping, TypeVar
from contextlib import contextmanager

from .client import ServeClient
from .protocol import Response, ServeError

__all__ = ["ClientPool"]

T = TypeVar("T")

#: The wire code the pool treats as "back off and retry".
RETRYABLE_CODE = "overloaded"


class ClientPool:
    """A bounded fleet of reusable serving connections.

    Parameters
    ----------
    host, port:
        The serving front (single-process server or sharding front —
        the pool does not care which).
    size:
        Maximum simultaneously checked-out connections. Checkout blocks
        (bounded by ``checkout_timeout``) when the whole fleet is busy —
        the pool itself is a client-side concurrency limit.
    max_retries:
        Attempts per request before an ``overloaded`` response is
        surfaced to the caller as the usual :class:`ServeError`.
    backoff:
        First retry sleep in seconds; doubles per attempt and is capped
        at ``max_backoff``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 8,
        timeout: float = 60.0,
        checkout_timeout: float = 60.0,
        max_retries: int = 8,
        backoff: float = 0.02,
        max_backoff: float = 0.5,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._checkout_timeout = checkout_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._idle: list[ServeClient] = []
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(size)
        self._closed = False
        self.size = size
        #: Total ``overloaded`` refusals absorbed by retries (telemetry
        #: for benchmarks: how hard the server pushed back).
        self.retries = 0

    # -- checkout / checkin ---------------------------------------------
    @contextmanager
    def connection(self) -> Iterator[ServeClient]:
        """Check a connection out for exclusive use, then return it.

        The checked-out client is a plain :class:`ServeClient` — run
        pipelined bursts on it, use convenience wrappers, anything. A
        connection that raises :class:`ConnectionError` is discarded
        instead of returned, so one dead socket never haunts the pool.
        """
        client = self._checkout()
        broken = False
        try:
            yield client
        except ConnectionError:
            broken = True
            raise
        finally:
            self._checkin(client, broken=broken)

    def _checkout(self) -> ServeClient:
        if self._closed:
            raise RuntimeError("pool is closed")
        if not self._slots.acquire(timeout=self._checkout_timeout):
            raise TimeoutError(
                f"no pool connection free after "
                f"{self._checkout_timeout:g}s (size {self.size})"
            )
        with self._lock:
            if self._idle:
                return self._idle.pop()
        # Dial outside the lock; lazy=True defers even the dial to the
        # first actual request on this connection.
        return ServeClient(
            self._host, self._port, timeout=self._timeout, lazy=True
        )

    def _checkin(self, client: ServeClient, *, broken: bool) -> None:
        try:
            if broken or self._closed:
                client.close()
            else:
                with self._lock:
                    self._idle.append(client)
        finally:
            self._slots.release()

    # -- retrying request surface ---------------------------------------
    def request(self, payload: Mapping[str, Any] | Any) -> Response:
        """One request with ``overloaded``-aware retry.

        Each attempt checks a connection out and back in, so a request
        stuck behind a full server never monopolizes a pool slot while
        it sleeps off the backoff.
        """
        delay = self.backoff
        for attempt in range(self.max_retries):
            with self.connection() as client:
                response = client.request(payload)
            if response.ok or response.error_code != RETRYABLE_CODE:
                return response
            self.retries += 1
            if attempt + 1 < self.max_retries:
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
        return response

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one :class:`ServeClient` convenience wrapper with retry.

        ``pool.call("theta_batch", "landscape", tile)`` behaves exactly
        like ``client.theta_batch("landscape", tile)`` — including
        raising :class:`ServeError` — but on a pooled connection with
        ``overloaded`` retried.
        """
        delay = self.backoff
        for attempt in range(self.max_retries):
            try:
                with self.connection() as client:
                    return getattr(client, method)(*args, **kwargs)
            except ServeError as error:
                if (
                    error.code != RETRYABLE_CODE
                    or attempt + 1 >= self.max_retries
                ):
                    raise
                self.retries += 1
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def map(
        self, fn: Callable[[ServeClient], T], workers: int
    ) -> list[T]:
        """Run ``fn(client)`` on ``workers`` threads, one connection each."""
        results: list[T] = [None] * workers  # type: ignore[list-item]
        errors: list[BaseException] = []

        def run(index: int) -> None:
            try:
                with self.connection() as client:
                    results[index] = fn(client)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(index,), daemon=True)
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    # -- convenience passthroughs ---------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def eval(self, circuit: str, *args: Any, **kwargs: Any) -> dict:
        return self.call("eval", circuit, *args, **kwargs)

    def marginals(self, circuit: str, *args: Any, **kwargs: Any) -> dict:
        return self.call("marginals", circuit, *args, **kwargs)

    def theta_batch(self, circuit: str, *args: Any, **kwargs: Any) -> dict:
        return self.call("theta_batch", circuit, *args, **kwargs)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close every idle connection; checked-out ones close at checkin."""
        self._closed = True
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
