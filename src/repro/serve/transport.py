"""The shared ndJSON connection transport for every serving front.

:class:`ProbLPServer` and the sharding/replication front
(:class:`~repro.serve.sharding.ShardRouter`) used to carry two
near-identical copies of the same per-connection machinery: a readline
loop hardened against resets, oversized lines and half-closed sockets; a
per-connection write lock; one task per request line so a slow request
never head-of-line blocks the pipeline; and the drain-then-hang-up
shutdown dance. :class:`NdjsonTransport` is that machinery, written
once.

The transport also owns **admission control**: per-connection and global
in-flight limits, checked *before* a request line becomes a task. A
request beyond either limit is answered immediately with the typed
``overloaded`` wire error instead of buffering without bound — clients
(see :class:`~repro.serve.pool.ClientPool`) treat that code as
backpressure and retry after a beat.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

from .protocol import (
    ProtocolError,
    Response,
    ServerOverloadedError,
    error_response,
)

__all__ = ["Connection", "NdjsonTransport", "encode_line"]


def encode_line(payload: dict) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return (json.dumps(payload) + "\n").encode("utf-8")


class Connection:
    """One accepted client socket: writer, write lock, in-flight tasks."""

    __slots__ = ("writer", "lock", "tasks")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()

    @property
    def inflight(self) -> int:
        return len(self.tasks)

    async def send(self, payload: dict) -> None:
        """Write one response line; a vanished client is not an error."""
        try:
            async with self.lock:
                self.writer.write(encode_line(payload))
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to scatter back to


class NdjsonTransport:
    """Per-connection read loops plus admission control, shared by fronts.

    Parameters
    ----------
    handle:
        ``async (connection, payload, request_id) -> Response | None``.
        The per-front request logic. A returned :class:`Response` is
        written back on the request's connection; ``None`` means the
        front answers later through another path (the router's response
        pumps do). Exceptions are mapped to wire errors here, once.
    max_inflight_per_connection, max_inflight_total:
        Admission limits (0 disables a limit). A request that would
        exceed either is refused with the ``overloaded`` error code.
    extra_inflight:
        Optional extra load counted against the global limit — the
        router counts its forwarded-but-unanswered requests this way,
        since those leave the line task before the worker responds.
    on_overload:
        Optional callback invoked once per shed request (metrics).
    """

    def __init__(
        self,
        handle: Callable[
            [Connection, Any, int | str | None],
            Awaitable[Response | None],
        ],
        *,
        max_inflight_per_connection: int = 0,
        max_inflight_total: int = 0,
        extra_inflight: Callable[[], int] | None = None,
        on_overload: Callable[[], None] | None = None,
    ) -> None:
        self._handle = handle
        self.max_inflight_per_connection = max_inflight_per_connection
        self.max_inflight_total = max_inflight_total
        self._extra_inflight = extra_inflight
        self._on_overload = on_overload
        self.connections: set[Connection] = set()
        #: Every in-flight request task across connections, so shutdown
        #: can drain responses that are still being computed.
        self._tasks: set[asyncio.Task] = set()
        self._handlers: set[asyncio.Task] = set()

    # -- load accounting -----------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests admitted and not yet answered (all connections)."""
        total = len(self._tasks)
        if self._extra_inflight is not None:
            total += self._extra_inflight()
        return total

    def _admit(self, connection: Connection) -> str | None:
        """``None`` to admit, else the refusal message."""
        per_connection = self.max_inflight_per_connection
        if per_connection and connection.inflight >= per_connection:
            return (
                f"connection already has {connection.inflight} requests "
                f"in flight (limit {per_connection}); retry after a "
                f"response arrives"
            )
        total = self.max_inflight_total
        if total and self.inflight >= total:
            return (
                f"server already has {self.inflight} requests in flight "
                f"(limit {total}); retry shortly"
            )
        return None

    # -- the shared connection loop ------------------------------------
    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        before_close: Callable[[Connection], Awaitable[None]] | None = None,
    ) -> None:
        connection = Connection(writer)
        self.connections.add(connection)
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
            handler.add_done_callback(self._handlers.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # A line beyond the stream limit cannot be resynced;
                    # hang up rather than die with an unretrieved error.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._serve_line(connection, line)
        finally:
            self.connections.discard(connection)
            if connection.tasks:
                await asyncio.gather(
                    *list(connection.tasks), return_exceptions=True
                )
            if before_close is not None:
                await before_close(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(self, connection: Connection, line: bytes) -> None:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            await connection.send(
                error_response(
                    None,
                    ProtocolError(f"request is not valid JSON: {error}"),
                ).to_wire()
            )
            return
        request_id = None
        if isinstance(payload, dict):
            raw_id = payload.get("id")
            if isinstance(raw_id, (int, str)):
                request_id = raw_id
            elif raw_id is not None:
                # Reject before any handling — an answer to a request
                # with an unusable id comes back unattributable.
                await connection.send(
                    error_response(
                        None,
                        ProtocolError(
                            "request id must be an integer or string"
                        ),
                    ).to_wire()
                )
                return
        refusal = self._admit(connection)
        if refusal is not None:
            if self._on_overload is not None:
                self._on_overload()
            await connection.send(
                error_response(
                    request_id, ServerOverloadedError(refusal)
                ).to_wire()
            )
            return
        task = asyncio.ensure_future(
            self._run_line(connection, payload, request_id)
        )
        for registry in (connection.tasks, self._tasks):
            registry.add(task)
            task.add_done_callback(registry.discard)

    async def _run_line(
        self, connection: Connection, payload: Any, request_id
    ) -> None:
        try:
            response = await self._handle(connection, payload, request_id)
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            response = error_response(request_id, error)
        if response is not None:
            await connection.send(response.to_wire())

    # -- shutdown plumbing ---------------------------------------------
    async def drain(self) -> None:
        """Wait for every admitted request task to finish."""
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def close_connections(self) -> None:
        """Hang up on idle clients (drain first for a graceful stop)."""
        for connection in list(self.connections):
            try:
                connection.writer.close()
            except (ConnectionError, OSError):
                pass

    async def wait_closed(self) -> None:
        """Wait for every connection handler coroutine to return."""
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
