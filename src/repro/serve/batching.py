"""The micro-batching queue: coalesce concurrent queries into one replay.

Single queries are the natural unit for clients, but the engine's unit
of throughput is the *batch*: one vectorized tape replay answers a whole
evidence batch for nearly the cost of one query. The
:class:`MicroBatcher` bridges the two — concurrent requests that agree
on a :class:`BatchKey` (circuit, workload kind, format) are held for a
small window (or until ``max_batch`` accumulate), executed as **one**
``evaluate_batch`` / ``marginals_batch`` / ``quantized_marginals_batch``
call on a worker thread, and the per-row results are scattered back to
each request's future.

Error attribution: when a coalesced batch fails as a whole (one bad
evidence variable, one zero-probability instance), the batcher falls
back to per-request execution so each caller receives *its own* error —
a stranger's malformed query never poisons a neighbor's answer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence

from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..obs.metrics import REGISTRY
from ..obs.tracing import now_us

AnyFormat = FixedPointFormat | FloatFormat

#: Coalescing window. Long enough to gather a pipelined burst, short
#: enough to stay invisible next to a tape replay.
DEFAULT_BATCH_WINDOW = 0.002
DEFAULT_MAX_BATCH = 256

_WAIT_SECONDS = REGISTRY.histogram(
    "problp_batch_wait_seconds",
    "Time from a bucket's first request to its flush (coalesce wait).",
    labelnames=("kind",),
)
_BATCH_SIZE = REGISTRY.histogram(
    "problp_batch_size",
    "Requests coalesced into one flushed batch.",
    labelnames=("kind",),
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)


@dataclass(frozen=True)
class BatchKey:
    """What must agree for two requests to share one tape replay.

    Formats are frozen dataclasses carrying their rounding mode, so the
    key cleanly separates e.g. ``fixed:1:15`` nearest-even traffic from
    truncate traffic.
    """

    circuit: str
    kind: str  # "eval" | "marginals" | "theta"
    fmt: AnyFormat | None = None
    joint: bool = False


@dataclass
class BatcherStats:
    """Aggregate counters, surfaced by the server's ``ping`` op."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0

    def record(self, size: int) -> None:
        self.requests += size
        self.batches += 1
        self.largest_batch = max(self.largest_batch, size)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }


class MicroBatcher:
    """Coalesce per-key requests within a window; scatter results back.

    ``dispatch(key, requests)`` is the (blocking) batch executor — it
    runs on ``executor`` via ``run_in_executor`` and must return one
    result per request, in order. The batcher itself lives on the event
    loop: ``submit`` is the only entry point and must be awaited on the
    loop thread.
    """

    def __init__(
        self,
        dispatch: Callable[[BatchKey, Sequence[Any]], Sequence[Any]],
        *,
        window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        executor=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._dispatch = dispatch
        self.window = window
        self.max_batch = max_batch
        self._executor = executor
        self._pending: dict[BatchKey, list[tuple]] = {}
        self._opened: dict[BatchKey, float] = {}
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self.stats = BatcherStats()

    def submit(self, key: BatchKey, request: Any, trace=None) -> Awaitable[Any]:
        """Enqueue one request; resolves to its scattered result.

        A traced request (``trace`` is a :class:`repro.obs.tracing.Trace`)
        gets ``batch.wait`` / ``batch.execute`` / ``scatter`` spans
        stamped on it as its batch moves through the queue.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        wait_span = trace.span("batch.wait") if trace is not None else None
        bucket.append((request, future, trace, wait_span))
        if len(bucket) == 1:
            self._opened[key] = time.monotonic()
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif len(bucket) == 1:
            # First request of a fresh bucket opens the window.
            self._timers[key] = loop.call_later(
                self.window, self._flush, key
            )
        return future

    def _flush(self, key: BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        task = asyncio.ensure_future(self._run(key, batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(
        self, key: BatchKey, batch: list[tuple]
    ) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _, _, _ in batch]
        self.stats.record(len(requests))
        opened = self._opened.pop(key, None)
        if opened is not None:
            _WAIT_SECONDS.labels(key.kind).observe(time.monotonic() - opened)
        _BATCH_SIZE.labels(key.kind).observe(len(requests))
        execute_start = now_us()
        for _, _, _, wait_span in batch:
            if wait_span is not None:
                wait_span.end(execute_start)
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, key, requests
            )
            execute_end = now_us()
            for _, _, trace, _ in batch:
                if trace is not None:
                    trace.span(
                        "batch.execute",
                        start_us=execute_start,
                        batch_size=len(requests),
                    ).end(execute_end)
            # strict: a dispatch returning the wrong count must fail
            # loudly (and per-request, below) — a silent zip truncation
            # would strand the trailing futures forever.
            for (_, future, trace, _), result in zip(
                batch, results, strict=True
            ):
                scatter = (
                    trace.span("scatter", start_us=execute_end)
                    if trace is not None else None
                )
                if not future.done():
                    future.set_result(result)
                if scatter is not None:
                    scatter.end()
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            if len(batch) == 1:
                _, future, _, _ = batch[0]
                if not future.done():
                    future.set_exception(error)
            else:
                # Attribute the failure: re-run each request alone so
                # only the offending ones error — concurrently, so the
                # innocent neighbors pay pool latency, not a serial
                # sweep of up to max_batch single-row replays.
                await asyncio.gather(
                    *(
                        self._fail_over(loop, key, request, future)
                        for request, future, _, _ in batch
                    )
                )

    async def _fail_over(
        self, loop, key: BatchKey, request: Any, future: asyncio.Future
    ) -> None:
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, key, [request]
            )
            (result,) = results
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            if not future.done():
                future.set_exception(error)
            return
        if not future.done():
            future.set_result(result)

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        for key in list(self._pending):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def close(self) -> None:
        """Cancel timers and reject whatever is still queued."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for batch in self._pending.values():
            for _, future, _, _ in batch:
                if not future.done():
                    future.cancel()
        self._pending.clear()
        self._opened.clear()
