"""The micro-batching queue: coalesce concurrent queries into one replay.

Single queries are the natural unit for clients, but the engine's unit
of throughput is the *batch*: one vectorized tape replay answers a whole
evidence batch for nearly the cost of one query. The
:class:`MicroBatcher` bridges the two — concurrent requests that agree
on a :class:`BatchKey` (circuit, workload kind, format) are held for a
small window (or until ``max_batch`` accumulate), executed as **one**
``evaluate_batch`` / ``marginals_batch`` / ``quantized_marginals_batch``
call on a worker thread, and the per-row results are scattered back to
each request's future.

Error attribution: when a coalesced batch fails as a whole (one bad
evidence variable, one zero-probability instance), the batcher falls
back to per-request execution so each caller receives *its own* error —
a stranger's malformed query never poisons a neighbor's answer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence

from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat

AnyFormat = FixedPointFormat | FloatFormat

#: Coalescing window. Long enough to gather a pipelined burst, short
#: enough to stay invisible next to a tape replay.
DEFAULT_BATCH_WINDOW = 0.002
DEFAULT_MAX_BATCH = 256


@dataclass(frozen=True)
class BatchKey:
    """What must agree for two requests to share one tape replay.

    Formats are frozen dataclasses carrying their rounding mode, so the
    key cleanly separates e.g. ``fixed:1:15`` nearest-even traffic from
    truncate traffic.
    """

    circuit: str
    kind: str  # "eval" | "marginals" | "theta"
    fmt: AnyFormat | None = None
    joint: bool = False


@dataclass
class BatcherStats:
    """Aggregate counters, surfaced by the server's ``ping`` op."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0

    def record(self, size: int) -> None:
        self.requests += size
        self.batches += 1
        self.largest_batch = max(self.largest_batch, size)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }


class MicroBatcher:
    """Coalesce per-key requests within a window; scatter results back.

    ``dispatch(key, requests)`` is the (blocking) batch executor — it
    runs on ``executor`` via ``run_in_executor`` and must return one
    result per request, in order. The batcher itself lives on the event
    loop: ``submit`` is the only entry point and must be awaited on the
    loop thread.
    """

    def __init__(
        self,
        dispatch: Callable[[BatchKey, Sequence[Any]], Sequence[Any]],
        *,
        window: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        executor=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._dispatch = dispatch
        self.window = window
        self.max_batch = max_batch
        self._executor = executor
        self._pending: dict[BatchKey, list[tuple[Any, asyncio.Future]]] = {}
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self.stats = BatcherStats()

    def submit(self, key: BatchKey, request: Any) -> Awaitable[Any]:
        """Enqueue one request; resolves to its scattered result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append((request, future))
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif len(bucket) == 1:
            # First request of a fresh bucket opens the window.
            self._timers[key] = loop.call_later(
                self.window, self._flush, key
            )
        return future

    def _flush(self, key: BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        task = asyncio.ensure_future(self._run(key, batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(
        self, key: BatchKey, batch: list[tuple[Any, asyncio.Future]]
    ) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _ in batch]
        self.stats.record(len(requests))
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, key, requests
            )
            # strict: a dispatch returning the wrong count must fail
            # loudly (and per-request, below) — a silent zip truncation
            # would strand the trailing futures forever.
            for (_, future), result in zip(batch, results, strict=True):
                if not future.done():
                    future.set_result(result)
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            if len(batch) == 1:
                _, future = batch[0]
                if not future.done():
                    future.set_exception(error)
            else:
                # Attribute the failure: re-run each request alone so
                # only the offending ones error — concurrently, so the
                # innocent neighbors pay pool latency, not a serial
                # sweep of up to max_batch single-row replays.
                await asyncio.gather(
                    *(
                        self._fail_over(loop, key, request, future)
                        for request, future in batch
                    )
                )

    async def _fail_over(
        self, loop, key: BatchKey, request: Any, future: asyncio.Future
    ) -> None:
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, key, [request]
            )
            (result,) = results
        except Exception as error:  # noqa: BLE001 — mapped to wire errors
            if not future.done():
                future.set_exception(error)
            return
        if not future.done():
            future.set_result(result)

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        for key in list(self._pending):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def close(self) -> None:
        """Cancel timers and reject whatever is still queued."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for batch in self._pending.values():
            for _, future in batch:
                if not future.done():
                    future.cancel()
        self._pending.clear()
