"""Textual specs shared by the CLI and the serving protocol.

The one place that knows how ``fixed:1:15`` / ``float:8:14`` and
``abs:0.01`` / ``rel:0.01`` are spelled. Deliberately light — it pulls
in only ``arith`` formats and ``core.queries`` tolerances, so front
ends (``problp`` argument parsing, the serve wire protocol) can share
the parsers without importing each other's machinery.
"""

from __future__ import annotations

from .arith.fixedpoint import FixedPointFormat
from .arith.floatingpoint import FloatFormat
from .core.queries import ErrorTolerance

AnyFormat = FixedPointFormat | FloatFormat


class SpecError(ValueError):
    """A malformed textual spec; the message is user-presentable."""


def parse_format_spec(text: str) -> AnyFormat:
    """``fixed:I:F`` or ``float:E:M`` → a number format."""
    try:
        kind, first, second = str(text).split(":", 2)
        first, second = int(first), int(second)
    except ValueError:
        raise SpecError(
            f"format must look like 'fixed:1:15' (I:F) or 'float:8:14' "
            f"(E:M), got {text!r}"
        ) from None
    if kind == "fixed":
        return FixedPointFormat(first, second)
    if kind == "float":
        return FloatFormat(first, second)
    raise SpecError(f"format kind must be 'fixed' or 'float', got {kind!r}")


def format_spec(fmt: AnyFormat | None) -> str | None:
    """The spec spelling of a format (inverse of :func:`parse_format_spec`)."""
    if fmt is None:
        return None
    if isinstance(fmt, FixedPointFormat):
        return f"fixed:{fmt.integer_bits}:{fmt.fraction_bits}"
    if isinstance(fmt, FloatFormat):
        return f"float:{fmt.exponent_bits}:{fmt.mantissa_bits}"
    raise TypeError(f"unsupported format type {type(fmt).__name__}")


def parse_tolerance_spec(text: str) -> ErrorTolerance:
    """``abs:0.01`` or ``rel:0.01`` → an :class:`ErrorTolerance`."""
    try:
        kind, raw_value = str(text).split(":", 1)
        value = float(raw_value)
    except ValueError:
        raise SpecError(
            f"tolerance must look like 'abs:0.01' or 'rel:0.01', "
            f"got {text!r}"
        ) from None
    if kind == "abs":
        return ErrorTolerance.absolute(value)
    if kind == "rel":
        return ErrorTolerance.relative(value)
    raise SpecError(f"tolerance kind must be 'abs' or 'rel', got {kind!r}")


def tolerance_spec(tolerance: ErrorTolerance) -> str:
    """The spec spelling of a tolerance (value round-trips exactly)."""
    kind = "abs" if tolerance.kind.value == "absolute" else "rel"
    return f"{kind}:{tolerance.value!r}"
