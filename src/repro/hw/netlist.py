"""Hardware design container: datapath program + format + encodings.

:class:`HardwareDesign` is the output of ProbLP's hardware generation
stage. It bundles the binary circuit, the selected number format, the
lowered :class:`~repro.hw.program.DatapathProgram` (forward evaluation
or the backward marginal pass), the shared pipeline schedule, the
quantized constant encodings, and derived metrics (latency, register
counts, the post-synthesis-proxy energy). The Verilog emitter and both
simulators consume the same program object, which is what makes the
simulators a meaningful check of the emitted RTL: they share one source
of structural truth, itself derived from the engine's compiled tape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointBackend, FixedPointFormat
from ..arith.floatingpoint import FloatBackend, FloatFormat, FloatNumber
from ..energy.estimate import (
    datapath_bits,
    operator_energy,
    register_energy,
)
from ..energy.models import EnergyModel, PAPER_MODEL
from ..errors import NonBinaryCircuitError
from .pipeline import PipelineSchedule, schedule_pipeline
from .program import DatapathProgram, coerce_direction, lower_program


def encode_fixed_word(backend: FixedPointBackend, value: float) -> int:
    """Quantize ``value`` and return the raw N-bit mantissa word."""
    return backend.from_real(value).mantissa


def encode_float_word(backend: FloatBackend, value: float) -> int:
    """Quantize ``value`` and return the packed (E|M) word.

    Layout: biased exponent in the high E bits (0 encodes the number
    zero), mantissa fraction (hidden bit stripped) in the low M bits.
    """
    number = backend.from_real(value)
    return pack_float_word(number)


def pack_float_word(number: FloatNumber) -> int:
    fmt = number.fmt
    if number.is_zero:
        return 0
    biased = number.exponent + fmt.bias
    fraction = number.mantissa - (1 << fmt.mantissa_bits)
    return (biased << fmt.mantissa_bits) | fraction


def unpack_float_word(word: int, fmt: FloatFormat) -> FloatNumber:
    """Inverse of :func:`pack_float_word`."""
    mask = (1 << fmt.mantissa_bits) - 1
    biased = word >> fmt.mantissa_bits
    fraction = word & mask
    if biased == 0:
        return FloatNumber(0, 0, fmt)
    mantissa = fraction | (1 << fmt.mantissa_bits)
    return FloatNumber(mantissa, biased - fmt.bias, fmt)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Post-synthesis-proxy energy, per evaluation, in femtojoules."""

    operators_fj: float
    registers_fj: float

    @property
    def total_fj(self) -> float:
        return self.operators_fj + self.registers_fj

    @property
    def total_nj(self) -> float:
        return self.total_fj / 1.0e6


class HardwareDesign:
    """A fully pipelined custom datapath for one arithmetic circuit.

    ``workload`` selects what the datapath computes: ``"joint"`` (or
    ``"forward"``, the default) implements the upward evaluation with the
    circuit root as its one result; ``"marginals"`` (or ``"backward"``)
    additionally implements the backward (derivative) pass, emitting the
    joint marginal ``Pr(x, e\\X)`` of every λ leaf as one aligned output
    word per indicator — a marginal-serving accelerator.
    """

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        fmt: FixedPointFormat | FloatFormat,
        energy_model: EnergyModel = PAPER_MODEL,
        module_name: str | None = None,
        workload: str = "joint",
    ) -> None:
        if not circuit.is_binary:
            raise NonBinaryCircuitError(
                "hardware generation requires a binary circuit; apply "
                "repro.ac.transform.binarize first"
            )
        self.circuit = circuit
        self.fmt = fmt
        self.energy_model = energy_model
        self.direction = coerce_direction(workload)
        self.program: DatapathProgram = lower_program(circuit, self.direction)
        default_name = _sanitize(circuit.name)
        if self.is_marginal:
            default_name = f"{default_name}_marginals"
        self.module_name = module_name or default_name
        self._schedule: PipelineSchedule | None = None
        self.word_bits = datapath_bits(fmt)
        self.is_fixed = isinstance(fmt, FixedPointFormat)
        self._encode_constants()

    @property
    def is_marginal(self) -> bool:
        """True for backward-pass (marginal-serving) designs."""
        return self.direction == "marginals"

    @property
    def schedule(self) -> PipelineSchedule:
        """The *forward evaluation* pipeline schedule of the circuit.

        Stage map and register accounting of the upward sweep only —
        identical to this design's datapath on forward designs. On
        marginal designs the implemented datapath is the backward
        program; its latency/register metrics live on :attr:`program`
        (and :attr:`latency_cycles`), not here.
        """
        if self._schedule is None:
            self._schedule = schedule_pipeline(self.circuit)
        return self._schedule

    def _encode_constants(self) -> None:
        if self.is_fixed:
            backend = FixedPointBackend(self.fmt)
            encode = lambda v: encode_fixed_word(backend, v)  # noqa: E731
            self.one_word = backend.one().mantissa
        else:
            backend = FloatBackend(self.fmt)
            encode = lambda v: encode_float_word(backend, v)  # noqa: E731
            self.one_word = pack_float_word(backend.one())
        self.zero_word = 0
        self.constant_words: dict[int, int] = {
            int(slot): encode(float(value))
            for slot, value in zip(
                self.program.param_slots, self.program.param_values
            )
        }

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def latency_cycles(self) -> int:
        """Cycles from λ input to the corresponding (aligned) outputs."""
        return self.program.latency

    @property
    def throughput_evals_per_cycle(self) -> float:
        """Fully pipelined: one evaluation per cycle."""
        return 1.0

    def energy_proxy(self) -> EnergyBreakdown:
        """Netlist-level energy per evaluation (operators + registers).

        This is the reproduction's stand-in for the paper's post-synthesis
        measurement (see DESIGN.md §4). Operator counts come straight from
        the datapath program's opcode arrays, so backward-pass designs are
        priced by the hardware they actually instantiate.
        """
        operators = operator_energy(
            self.program.operator_counts, self.fmt, self.energy_model
        )
        registers = register_energy(
            self.program.total_registers, self.word_bits, self.energy_model
        )
        return EnergyBreakdown(operators_fj=operators, registers_fj=registers)

    def describe(self) -> str:
        counts = self.program.operator_counts
        energy = self.energy_proxy()
        fmt_text = (
            self.fmt.describe()
            if hasattr(self.fmt, "describe")
            else repr(self.fmt)
        )
        kind = " [marginals]" if self.is_marginal else ""
        return (
            f"HardwareDesign({self.module_name}{kind}: {fmt_text}, "
            f"{counts.adders} add + {counts.multipliers} mul + "
            f"{counts.max_units} max, {self.program.total_registers} regs, "
            f"latency {self.latency_cycles} cycles, "
            f"{energy.total_nj:.3g} nJ/eval proxy)"
        )

    def report_dict(self) -> dict:
        """JSON-friendly design report (the ``problp hw`` payload)."""
        counts = self.program.operator_counts
        energy = self.energy_proxy()
        if self.is_fixed:
            fmt_payload = {
                "kind": "fixed",
                "integer_bits": self.fmt.integer_bits,
                "fraction_bits": self.fmt.fraction_bits,
                "rounding": self.fmt.rounding.value,
            }
        else:
            fmt_payload = {
                "kind": "float",
                "exponent_bits": self.fmt.exponent_bits,
                "mantissa_bits": self.fmt.mantissa_bits,
                "rounding": self.fmt.rounding.value,
            }
        return {
            "module": self.module_name,
            "circuit": self.circuit.name,
            "workload": (
                "marginals" if self.is_marginal else "joint"
            ),
            "format": fmt_payload,
            "word_bits": self.word_bits,
            "latency_cycles": self.latency_cycles,
            "throughput_evals_per_cycle": self.throughput_evals_per_cycle,
            "outputs": len(self.program.output_slots),
            "operators": {
                "adders": counts.adders,
                "multipliers": counts.multipliers,
                "max_units": counts.max_units,
            },
            "registers": {
                "operator": self.program.operator_registers,
                "input": self.program.input_registers,
                "balance": self.program.balance_registers,
                "total": self.program.total_registers,
            },
            "energy": {
                "operators_fj": energy.operators_fj,
                "registers_fj": energy.registers_fj,
                "total_nj": energy.total_nj,
            },
        }

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def verilog(self) -> str:
        """Emit the complete Verilog RTL for this design."""
        from .verilog import emit_verilog

        return emit_verilog(self)

    def __repr__(self) -> str:
        return self.describe()


def _sanitize(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"m_{cleaned}"
    return cleaned


def generate_hardware(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat | FloatFormat,
    energy_model: EnergyModel = PAPER_MODEL,
    module_name: str | None = None,
    workload: str = "joint",
) -> HardwareDesign:
    """Generate a fully pipelined hardware design for a binary circuit."""
    return HardwareDesign(circuit, fmt, energy_model, module_name, workload)


__all__ = [
    "EnergyBreakdown",
    "HardwareDesign",
    "encode_fixed_word",
    "encode_float_word",
    "generate_hardware",
    "pack_float_word",
    "unpack_float_word",
]
