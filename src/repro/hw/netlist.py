"""Hardware design container: circuit + format + pipeline + encodings.

:class:`HardwareDesign` is the output of ProbLP's hardware generation
stage. It bundles the binary circuit, the selected number format, the
pipeline schedule, the quantized constant encodings, and derived metrics
(latency, register counts, the post-synthesis-proxy energy). The Verilog
emitter and the cycle-accurate simulator both consume this object, which
is what makes the simulator a meaningful check of the emitted RTL: they
share one source of structural truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from ..arith.fixedpoint import FixedPointBackend, FixedPointFormat
from ..arith.floatingpoint import FloatBackend, FloatFormat, FloatNumber
from ..energy.estimate import (
    count_operators,
    datapath_bits,
    fixed_circuit_energy,
    float_circuit_energy,
    register_energy,
)
from ..energy.models import EnergyModel, PAPER_MODEL
from .pipeline import PipelineSchedule, schedule_pipeline


def encode_fixed_word(backend: FixedPointBackend, value: float) -> int:
    """Quantize ``value`` and return the raw N-bit mantissa word."""
    return backend.from_real(value).mantissa


def encode_float_word(backend: FloatBackend, value: float) -> int:
    """Quantize ``value`` and return the packed (E|M) word.

    Layout: biased exponent in the high E bits (0 encodes the number
    zero), mantissa fraction (hidden bit stripped) in the low M bits.
    """
    number = backend.from_real(value)
    return pack_float_word(number)


def pack_float_word(number: FloatNumber) -> int:
    fmt = number.fmt
    if number.is_zero:
        return 0
    biased = number.exponent + fmt.bias
    fraction = number.mantissa - (1 << fmt.mantissa_bits)
    return (biased << fmt.mantissa_bits) | fraction


def unpack_float_word(word: int, fmt: FloatFormat) -> FloatNumber:
    """Inverse of :func:`pack_float_word`."""
    mask = (1 << fmt.mantissa_bits) - 1
    biased = word >> fmt.mantissa_bits
    fraction = word & mask
    if biased == 0:
        return FloatNumber(0, 0, fmt)
    mantissa = fraction | (1 << fmt.mantissa_bits)
    return FloatNumber(mantissa, biased - fmt.bias, fmt)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Post-synthesis-proxy energy, per evaluation, in femtojoules."""

    operators_fj: float
    registers_fj: float

    @property
    def total_fj(self) -> float:
        return self.operators_fj + self.registers_fj

    @property
    def total_nj(self) -> float:
        return self.total_fj / 1.0e6


class HardwareDesign:
    """A fully pipelined custom datapath for one arithmetic circuit."""

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        fmt: FixedPointFormat | FloatFormat,
        energy_model: EnergyModel = PAPER_MODEL,
        module_name: str | None = None,
    ) -> None:
        if not circuit.is_binary:
            raise ValueError(
                "hardware generation requires a binary circuit; apply "
                "repro.ac.transform.binarize first"
            )
        self.circuit = circuit
        self.fmt = fmt
        self.energy_model = energy_model
        self.module_name = module_name or _sanitize(circuit.name)
        self.schedule: PipelineSchedule = schedule_pipeline(circuit)
        self.word_bits = datapath_bits(fmt)
        self.is_fixed = isinstance(fmt, FixedPointFormat)
        self._encode_constants()

    def _encode_constants(self) -> None:
        if self.is_fixed:
            backend = FixedPointBackend(self.fmt)
            encode = lambda v: encode_fixed_word(backend, v)  # noqa: E731
            self.one_word = backend.one().mantissa
        else:
            backend = FloatBackend(self.fmt)
            encode = lambda v: encode_float_word(backend, v)  # noqa: E731
            self.one_word = pack_float_word(backend.one())
        self.zero_word = 0
        self.constant_words: dict[int, int] = {}
        for index, node in enumerate(self.circuit.nodes):
            if node.op is OpType.PARAMETER:
                self.constant_words[index] = encode(node.value)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def latency_cycles(self) -> int:
        """Cycles from λ input to the corresponding root output."""
        return self.schedule.latency

    @property
    def throughput_evals_per_cycle(self) -> float:
        """Fully pipelined: one evaluation per cycle."""
        return 1.0

    def energy_proxy(self) -> EnergyBreakdown:
        """Netlist-level energy per evaluation (operators + registers).

        This is the reproduction's stand-in for the paper's post-synthesis
        measurement (see DESIGN.md §4).
        """
        if self.is_fixed:
            operators = fixed_circuit_energy(
                self.circuit, self.fmt, self.energy_model
            )
        else:
            operators = float_circuit_energy(
                self.circuit, self.fmt, self.energy_model
            )
        registers = register_energy(
            self.schedule.total_registers, self.word_bits, self.energy_model
        )
        return EnergyBreakdown(operators_fj=operators, registers_fj=registers)

    def describe(self) -> str:
        counts = count_operators(self.circuit)
        energy = self.energy_proxy()
        fmt_text = (
            self.fmt.describe()
            if hasattr(self.fmt, "describe")
            else repr(self.fmt)
        )
        return (
            f"HardwareDesign({self.module_name}: {fmt_text}, "
            f"{counts.adders} add + {counts.multipliers} mul + "
            f"{counts.max_units} max, {self.schedule.total_registers} regs, "
            f"latency {self.latency_cycles} cycles, "
            f"{energy.total_nj:.3g} nJ/eval proxy)"
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def verilog(self) -> str:
        """Emit the complete Verilog RTL for this design."""
        from .verilog import emit_verilog

        return emit_verilog(self)

    def __repr__(self) -> str:
        return self.describe()


def _sanitize(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"m_{cleaned}"
    return cleaned


def generate_hardware(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat | FloatFormat,
    energy_model: EnergyModel = PAPER_MODEL,
    module_name: str | None = None,
) -> HardwareDesign:
    """Generate a fully pipelined hardware design for a binary circuit."""
    return HardwareDesign(circuit, fmt, energy_model, module_name)
