"""The datapath IR of generated hardware: a tape lowered to a netlist.

A :class:`DatapathProgram` is the single-assignment op stream one
pipelined datapath implements, derived from the compiled
:class:`~repro.engine.tape.Tape` — the same artifact every software
sweep replays — so analysis, netlist, Verilog and both simulators share
one source of structural truth:

* the **forward** program is the tape's op stream verbatim (binary
  circuits compile to exactly one op per operator node, slot indices
  coincide with node indices) with the circuit root as its one output;
* the **marginals** program appends the tape's cached
  :class:`~repro.engine.tape.BackwardProgram` in SSA form: every adjoint
  accumulation allocates a fresh slot, product-rule contributions become
  explicit multiplier ops seeded by a constant-one parameter at the root,
  and the adjoints of the λ leaves — the joint marginals ``Pr(x, e\\X)``
  of the differential approach — become the outputs. The lowering
  mirrors the engine's backward executors op for op (same contribution
  order, accumulation into exact zero elided because adding the exact
  zero word is error-free in both number systems), so the simulated
  design is bit-identical to
  :meth:`~repro.engine.session.InferenceSession.quantized_marginals_batch`.

Pipeline structure is derived from the same dependency levels the
engine's :class:`~repro.engine.analysis.ForwardSchedule` computes
(stage = level; one output register per operator; balancing registers
wherever an input was produced more than one stage earlier, constants
excepted; outputs below the design latency get alignment registers so
every result of one input appears in the same cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..energy.estimate import OperatorCounts, counts_from_opcodes
from ..engine.analysis import schedule_segments, tape_analysis_for
from ..engine.tape import OP_COPY, OP_PRODUCT, OP_SUM, Tape, tape_for
from ..errors import NonBinaryCircuitError

#: Output label of the forward program's single root result.
ROOT_OUTPUT = "result"


def _require_binary(circuit: ArithmeticCircuit) -> None:
    if not circuit.is_binary:
        raise NonBinaryCircuitError(
            "hardware generation requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )


@dataclass(frozen=True, eq=False)
class DatapathProgram:
    """A single-assignment datapath netlist with pipeline structure."""

    name: str
    #: ``"forward"`` (joint evaluations) or ``"marginals"`` (backward pass).
    direction: str
    num_slots: int
    #: ``(n_ops,)`` int32 op arrays in execution order (single assignment).
    opcodes: np.ndarray
    dests: np.ndarray
    lefts: np.ndarray
    rights: np.ndarray
    #: Constant (θ) slots with their real values and source labels.
    param_slots: np.ndarray
    param_values: np.ndarray
    param_labels: tuple[str, ...]
    #: Registered λ input slots, aligned with their ``(variable, state)``.
    indicator_slots: np.ndarray
    indicator_keys: tuple[tuple[str, int], ...]
    #: Result slots, their Verilog port names, and structured keys
    #: (``None`` for the forward root; ``(variable, state)`` per marginal).
    output_slots: np.ndarray
    output_names: tuple[str, ...]
    output_keys: tuple[tuple[str, int] | None, ...]
    #: ``(num_slots,)`` pipeline stage of every slot (constants 0).
    levels: np.ndarray
    #: Constant mask over slots (constants impose no path timing).
    is_constant: np.ndarray
    _op_tuples: list[tuple[int, int, int, int]] | None = field(
        default=None, repr=False
    )
    _segments: tuple | None = field(default=None, repr=False)

    # -- stream views ---------------------------------------------------
    @property
    def num_operations(self) -> int:
        return len(self.opcodes)

    @property
    def op_tuples(self) -> list[tuple[int, int, int, int]]:
        """The op stream as plain int tuples (cached; per-cycle oracle)."""
        cached = self._op_tuples
        if cached is None:
            cached = [
                (int(o), int(d), int(l), int(r))
                for o, d, l, r in zip(
                    self.opcodes, self.dests, self.lefts, self.rights
                )
            ]
            object.__setattr__(self, "_op_tuples", cached)
        return cached

    @property
    def segments(self) -> tuple:
        """``(level, opcode)`` segments for vectorized stream replay.

        Built by the same :func:`repro.engine.analysis.schedule_segments`
        the tape analysis uses — the stream simulator's sweeps and the
        engine's analysis replays share one scheduling implementation.
        """
        cached = self._segments
        if cached is None:
            cached = schedule_segments(
                self.opcodes,
                self.dests,
                self.lefts,
                self.rights,
                self.levels[self.dests],
            )
            object.__setattr__(self, "_segments", cached)
        return cached

    # -- pipeline metrics -------------------------------------------------
    @property
    def latency(self) -> int:
        """Cycles from λ input to the aligned outputs (deepest output)."""
        if len(self.output_slots) == 0:
            return 0
        return int(self.levels[self.output_slots].max())

    @property
    def operator_registers(self) -> int:
        """One output register per operator (fully pipelined)."""
        return self.num_operations

    @property
    def input_registers(self) -> int:
        """Stage-0 registers for the λ indicator words."""
        return len(self.indicator_slots)

    def input_delay(self, position: int, port: int) -> int:
        """Balancing registers on one op input port (0 for constants)."""
        opcode = int(self.opcodes[position])
        if port == 1 and opcode == OP_COPY:
            return 0  # copies have a single input
        source = int((self.rights if port else self.lefts)[position])
        if self.is_constant[source]:
            return 0
        dest = int(self.dests[position])
        return int(self.levels[dest]) - 1 - int(self.levels[source])

    def output_delay(self, index: int) -> int:
        """Alignment registers between output ``index`` and the latency."""
        slot = int(self.output_slots[index])
        if self.is_constant[slot]:
            return 0  # constant wire: valid at every stage
        return self.latency - int(self.levels[slot])

    @property
    def balance_registers(self) -> int:
        """All balancing registers: input-path plus output alignment."""
        if self.num_operations == 0:
            edges = 0
        else:
            dest_levels = self.levels[self.dests]
            left = np.where(
                self.is_constant[self.lefts],
                0,
                dest_levels - 1 - self.levels[self.lefts],
            )
            right = np.where(
                self.is_constant[self.rights] | (self.opcodes == OP_COPY),
                0,
                dest_levels - 1 - self.levels[self.rights],
            )
            edges = int(left.sum() + right.sum())
        alignment = sum(
            self.output_delay(index) for index in range(len(self.output_slots))
        )
        return edges + alignment

    @property
    def total_registers(self) -> int:
        return (
            self.operator_registers
            + self.input_registers
            + self.balance_registers
        )

    @property
    def operator_counts(self) -> OperatorCounts:
        """Two-input adder/multiplier/comparator counts of the datapath."""
        return counts_from_opcodes(self.opcodes)

    def describe(self) -> str:
        counts = self.operator_counts
        return (
            f"DatapathProgram({self.name!r} [{self.direction}]: "
            f"{counts.adders} add + {counts.multipliers} mul + "
            f"{counts.max_units} max over {self.num_slots} slots, "
            f"{len(self.output_slots)} output(s), latency {self.latency})"
        )


def _param_labels(circuit: ArithmeticCircuit, tape: Tape) -> tuple[str, ...]:
    """Source label per θ slot (tape param slots are node indices)."""
    labels = []
    for slot in tape.param_slots:
        node = circuit.node(int(slot))
        labels.append(node.label or f"theta_{int(slot)}")
    return tuple(labels)


def forward_program(
    circuit: ArithmeticCircuit, tape: Tape | None = None
) -> DatapathProgram:
    """Lower a binary circuit's tape to its forward datapath program.

    Slot indices coincide with circuit node indices and the per-slot
    stages are exactly the engine's cached
    :class:`~repro.engine.analysis.ForwardSchedule` levels — the one
    levelization shared with :func:`repro.hw.pipeline.schedule_pipeline`.
    """
    _require_binary(circuit)
    if tape is None:
        tape = tape_for(circuit)
    levels = tape_analysis_for(tape).schedule.levels.astype(np.int64)
    is_constant = np.zeros(tape.num_slots, dtype=bool)
    is_constant[tape.param_slots] = True
    root = tape.require_root()
    return DatapathProgram(
        name=circuit.name,
        direction="forward",
        num_slots=tape.num_slots,
        opcodes=tape.opcodes,
        dests=tape.dests,
        lefts=tape.lefts,
        rights=tape.rights,
        param_slots=tape.param_slots,
        param_values=tape.param_values[tape.param_ids],
        param_labels=_param_labels(circuit, tape),
        indicator_slots=tape.indicator_slots,
        indicator_keys=tape.indicator_keys,
        output_slots=np.asarray([root], dtype=np.int64),
        output_names=(ROOT_OUTPUT,),
        output_keys=(None,),
        levels=levels,
        is_constant=is_constant,
    )


def marginals_program(
    circuit: ArithmeticCircuit, tape: Tape | None = None
) -> DatapathProgram:
    """Lower a tape plus its backward program to a marginal datapath.

    The adjoint sweep is converted to single-assignment form: the root
    adjoint is a constant-one parameter, each product-rule contribution
    is an explicit multiplier (``seed × sibling value``, the executor's
    operand order), and each accumulation into an already-live adjoint is
    an explicit adder (``current + contribution``). Accumulations into
    the exact zero are elided — adding the exact zero word is error-free
    in both number systems, so the lowering stays bit-identical to the
    engine's backward executors. Ops whose destination lies outside the
    root cone contribute exact zeros and are dropped entirely.

    Outputs are the λ-leaf adjoints in indicator-table order; a λ leaf
    outside the root cone maps to a constant zero.
    """
    _require_binary(circuit)
    if tape is None:
        tape = tape_for(circuit)
    tape.require_differentiable()
    root = tape.require_root()

    opcodes = list(tape.opcodes)
    dests = list(tape.dests)
    lefts = list(tape.lefts)
    rights = list(tape.rights)
    param_slots = [int(s) for s in tape.param_slots]
    param_values = [float(v) for v in tape.param_values[tape.param_ids]]
    param_labels = list(_param_labels(circuit, tape))

    next_slot = tape.num_slots
    one_slot = next_slot
    next_slot += 1
    param_slots.append(one_slot)
    param_values.append(1.0)
    param_labels.append("adjoint_seed")

    def emit(opcode: int, left: int, right: int) -> int:
        nonlocal next_slot
        dest = next_slot
        next_slot += 1
        opcodes.append(opcode)
        dests.append(dest)
        lefts.append(left)
        rights.append(right)
        return dest

    # Current adjoint slot per forward slot; absent means exact zero.
    adjoints: dict[int, int] = {root: one_slot}

    def accumulate(slot: int, contribution: int) -> None:
        current = adjoints.get(slot)
        adjoints[slot] = (
            contribution
            if current is None
            else emit(OP_SUM, current, contribution)
        )

    for opcode, dest, left, right in tape.backward.op_tuples:
        seed = adjoints.get(dest)
        if seed is None:
            continue  # outside the root cone: adjoint is exactly zero
        if opcode == OP_PRODUCT:
            accumulate(left, emit(OP_PRODUCT, seed, right))
            accumulate(right, emit(OP_PRODUCT, seed, left))
        elif opcode == OP_SUM:
            accumulate(left, seed)
            accumulate(right, seed)
        else:  # OP_COPY
            accumulate(left, seed)

    zero_slot: int | None = None
    output_slots = []
    output_names = []
    output_keys = []
    for slot, (variable, state) in zip(
        tape.indicator_slots, tape.indicator_keys
    ):
        adjoint = adjoints.get(int(slot))
        if adjoint is None:
            if zero_slot is None:
                zero_slot = next_slot
                next_slot += 1
                param_slots.append(zero_slot)
                param_values.append(0.0)
                param_labels.append("adjoint_zero")
            adjoint = zero_slot
        output_slots.append(adjoint)
        output_names.append(f"{ROOT_OUTPUT}_{variable}_{state}")
        output_keys.append((variable, int(state)))

    num_slots = next_slot
    opcodes_arr = np.asarray(opcodes, dtype=np.int32)
    dests_arr = np.asarray(dests, dtype=np.int32)
    lefts_arr = np.asarray(lefts, dtype=np.int32)
    rights_arr = np.asarray(rights, dtype=np.int32)
    is_constant = np.zeros(num_slots, dtype=bool)
    is_constant[param_slots] = True

    # Stage assignment with the same rule the forward schedule uses:
    # constants at 0, each op one stage after its latest non-constant
    # input (constants are level 0, so max over all inputs is identical).
    levels = [0] * num_slots
    const_list = is_constant.tolist()
    for opcode, dest, left, right in zip(opcodes, dests, lefts, rights):
        arrival = 0 if const_list[left] else levels[left]
        if opcode != OP_COPY and not const_list[right]:
            right_level = levels[right]
            if right_level > arrival:
                arrival = right_level
        levels[dest] = arrival + 1

    return DatapathProgram(
        name=circuit.name,
        direction="marginals",
        num_slots=num_slots,
        opcodes=opcodes_arr,
        dests=dests_arr,
        lefts=lefts_arr,
        rights=rights_arr,
        param_slots=np.asarray(param_slots, dtype=np.int32),
        param_values=np.asarray(param_values, dtype=np.float64),
        param_labels=tuple(param_labels),
        indicator_slots=tape.indicator_slots,
        indicator_keys=tape.indicator_keys,
        output_slots=np.asarray(output_slots, dtype=np.int64),
        output_names=tuple(output_names),
        output_keys=tuple(output_keys),
        levels=np.asarray(levels, dtype=np.int64),
        is_constant=is_constant,
    )


#: Lowerers by direction name (the hw-facing workload vocabulary).
_LOWERERS = {
    "forward": forward_program,
    "marginals": marginals_program,
}


def coerce_direction(workload) -> str:
    """Map a workload spec (enum or string) to a program direction.

    ``"joint"`` / ``"forward"`` → forward; ``"marginals"`` /
    ``"backward"`` → marginals. Accepts the optimizer's ``Workload``
    enum via its ``value``.
    """
    value = getattr(workload, "value", workload)
    if value in ("joint", "forward"):
        return "forward"
    if value in ("marginals", "backward"):
        return "marginals"
    raise ValueError(
        f"workload must be one of: joint, marginals; got {workload!r}"
    )


def lower_program(
    circuit: ArithmeticCircuit, direction: str, tape: Tape | None = None
) -> DatapathProgram:
    """Lower a circuit's tape to the datapath of the given direction."""
    return _LOWERERS[direction](circuit, tape)
