"""Pipeline scheduling and register balancing (§3.4, Figure 4).

The generated hardware is fully parallel and fully pipelined: every
operator output is registered, and a new set of indicator inputs can be
accepted every cycle. Operators are assigned to stages by longest-path
depth; whenever an operator's input was produced more than one stage
earlier, extra *balancing registers* are inserted on that path (the
paper's "mismatch in path timings", e.g. the A→G path of Figure 4).

θ parameters are hardware constants — they need no alignment registers.
λ indicator words are registered at stage 0 and delayed like any other
signal.

Stage assignment is **tape-native**: the dependency levels the engine's
:class:`~repro.engine.analysis.ForwardSchedule` computes for vectorized
analysis sweeps are exactly the stage boundaries a fully pipelined
mapping needs (constants and λ leaves at level 0, each operator one
level after its latest input — constants sit at level 0, so they impose
no constraint), so this module reads the cached schedule instead of
re-walking nodes, and register accounting is a vectorized reduction over
the tape's edge arrays. One source of levelization truth for analysis,
netlist, Verilog and both simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from ..engine.analysis import tape_analysis_for
from ..engine.tape import OP_COPY, tape_for
from ..errors import NonBinaryCircuitError


@dataclass(frozen=True)
class PipelineSchedule:
    """Stage assignment and register accounting for a binary circuit."""

    stages: tuple[int, ...]
    latency: int
    operator_registers: int
    input_registers: int
    balance_registers: int

    @property
    def total_registers(self) -> int:
        return (
            self.operator_registers
            + self.input_registers
            + self.balance_registers
        )


def schedule_pipeline(circuit: ArithmeticCircuit) -> PipelineSchedule:
    """Assign pipeline stages and count every register in the design.

    Stage 0 holds the registered λ input words; an operator is scheduled
    one stage after its latest-arriving input. A child signal produced at
    stage ``c`` and consumed by an operator at stage ``s`` crosses
    ``s - 1 - c`` extra balancing registers (constants excepted).

    Stages are read off the tape's cached
    :class:`~repro.engine.analysis.ForwardSchedule` dependency levels
    (byte-equal: a binary circuit's tape has one op per operator node and
    slot indices coincide with node indices); register counts reduce over
    the tape's edge arrays instead of walking node objects.
    """
    if not circuit.is_binary:
        raise NonBinaryCircuitError(
            "pipeline scheduling requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    tape = tape_for(circuit)
    levels = tape_analysis_for(tape).schedule.levels
    # Binary circuits compile without scratch slots: slots == nodes.
    stages = tuple(int(level) for level in levels)

    is_constant = np.zeros(tape.num_slots, dtype=bool)
    is_constant[tape.param_slots] = True
    if tape.num_operations:
        dest_levels = levels[tape.dests]
        left_delays = np.where(
            is_constant[tape.lefts],
            0,
            dest_levels - 1 - levels[tape.lefts],
        )
        # Copies (degenerate fan-in-1 operators) have one input; their
        # duplicated right operand must not be double-counted.
        right_delays = np.where(
            is_constant[tape.rights] | (tape.opcodes == OP_COPY),
            0,
            dest_levels - 1 - levels[tape.rights],
        )
        balance_registers = int(left_delays.sum() + right_delays.sum())
    else:
        balance_registers = 0

    latency = stages[circuit.root]
    return PipelineSchedule(
        stages=stages,
        latency=latency,
        operator_registers=tape.num_operations,
        input_registers=len(tape.indicator_slots),
        balance_registers=balance_registers,
    )


def delay_of_edge(
    schedule: PipelineSchedule,
    circuit: ArithmeticCircuit,
    child: int,
    parent: int,
) -> int:
    """Balancing registers on the child→parent path (0 for constants)."""
    if circuit.node(child).op is OpType.PARAMETER:
        return 0
    return schedule.stages[parent] - 1 - schedule.stages[child]
