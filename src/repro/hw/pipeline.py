"""Pipeline scheduling and register balancing (§3.4, Figure 4).

The generated hardware is fully parallel and fully pipelined: every
operator output is registered, and a new set of indicator inputs can be
accepted every cycle. Operators are assigned to stages by longest-path
depth; whenever an operator's input was produced more than one stage
earlier, extra *balancing registers* are inserted on that path (the
paper's "mismatch in path timings", e.g. the A→G path of Figure 4).

θ parameters are hardware constants — they need no alignment registers.
λ indicator words are registered at stage 0 and delayed like any other
signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType


@dataclass(frozen=True)
class PipelineSchedule:
    """Stage assignment and register accounting for a binary circuit."""

    stages: tuple[int, ...]
    latency: int
    operator_registers: int
    input_registers: int
    balance_registers: int

    @property
    def total_registers(self) -> int:
        return (
            self.operator_registers
            + self.input_registers
            + self.balance_registers
        )


def schedule_pipeline(circuit: ArithmeticCircuit) -> PipelineSchedule:
    """Assign pipeline stages and count every register in the design.

    Stage 0 holds the registered λ input words; an operator is scheduled
    one stage after its latest-arriving input. A child signal produced at
    stage ``c`` and consumed by an operator at stage ``s`` crosses
    ``s - 1 - c`` extra balancing registers (constants excepted).
    """
    if not circuit.is_binary:
        raise ValueError(
            "pipeline scheduling requires a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    nodes = circuit.nodes
    stages = [0] * len(nodes)
    operator_registers = 0
    input_registers = 0
    balance_registers = 0

    for index, node in enumerate(nodes):
        if node.op is OpType.PARAMETER:
            stages[index] = 0  # constant: available at every stage
        elif node.op is OpType.INDICATOR:
            stages[index] = 0
            input_registers += 1
        else:
            arrival = 0
            for child in node.children:
                if nodes[child].op is OpType.PARAMETER:
                    continue  # constants impose no timing constraint
                arrival = max(arrival, stages[child])
            stages[index] = arrival + 1
            operator_registers += 1
            for child in node.children:
                if nodes[child].op is OpType.PARAMETER:
                    continue
                balance_registers += stages[index] - 1 - stages[child]

    latency = stages[circuit.root]
    return PipelineSchedule(
        stages=tuple(stages),
        latency=latency,
        operator_registers=operator_registers,
        input_registers=input_registers,
        balance_registers=balance_registers,
    )


def delay_of_edge(
    schedule: PipelineSchedule,
    circuit: ArithmeticCircuit,
    child: int,
    parent: int,
) -> int:
    """Balancing registers on the child→parent path (0 for constants)."""
    if circuit.node(child).op is OpType.PARAMETER:
        return 0
    return schedule.stages[parent] - 1 - schedule.stages[child]
