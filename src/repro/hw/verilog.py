"""Verilog RTL emission for generated hardware designs (§3.4).

The emitter prints a self-contained Verilog file:

* a small library of parameterized operator modules — fixed-point
  add/mult/max with round-to-nearest-even, and behavioral normalized
  floating-point add/mult/max (guard/round/sticky rounding, exact-zero
  encoding, no subnormals/inf/NaN, matching
  :mod:`repro.arith.floatingpoint` bit for bit);
* one flat top-level module per design: λ indicator bits in, one result
  word out, fully pipelined with an output register per operator and
  explicit balancing registers per input port.

The top module is printed from the same
:class:`~repro.hw.program.DatapathProgram` both simulators execute, so
the simulators' equivalence checks (see :mod:`repro.hw.verify`) cover
the emitted netlist topology — forward evaluation datapaths and
backward-pass marginal accelerators alike (the latter emit one aligned
result port per λ leaf). Operator modules mirror the Python golden
models; ProbLP's max/min-value analysis guarantees the exponent/integer
ranges can't over- or underflow in these datapaths.
"""

from __future__ import annotations

from ..engine.tape import OP_COPY, OP_MAX, OP_PRODUCT, OP_SUM
from .netlist import HardwareDesign

_FIXED_LIBRARY = """
// ---------------------------------------------------------------------
// Fixed-point operator library (unsigned, WIDTH = I + F bits).
// Multiplication rounds to nearest-even; addition is exact (ProbLP's
// max-value analysis sizes I so that no overflow can occur).
// ---------------------------------------------------------------------
module problp_fixed_add #(
    parameter WIDTH = 16
) (
    input  wire             clk,
    input  wire [WIDTH-1:0] a,
    input  wire [WIDTH-1:0] b,
    output reg  [WIDTH-1:0] y
);
    always @(posedge clk) y <= a + b;
endmodule

module problp_fixed_mult #(
    parameter WIDTH = 16,
    parameter FRAC  = 15  // must be >= 2
) (
    input  wire             clk,
    input  wire [WIDTH-1:0] a,
    input  wire [WIDTH-1:0] b,
    output reg  [WIDTH-1:0] y
);
    wire [2*WIDTH-1:0] product   = a * b;
    wire [WIDTH-1:0]   truncated = product[FRAC+WIDTH-1:FRAC];
    wire               guard     = product[FRAC-1];
    wire               sticky    = |product[FRAC-2:0];
    wire               round_up  = guard & (sticky | truncated[0]);
    always @(posedge clk) y <= truncated + {{(WIDTH-1){1'b0}}, round_up};
endmodule

module problp_fixed_max #(
    parameter WIDTH = 16
) (
    input  wire             clk,
    input  wire [WIDTH-1:0] a,
    input  wire [WIDTH-1:0] b,
    output reg  [WIDTH-1:0] y
);
    always @(posedge clk) y <= (a >= b) ? a : b;
endmodule
"""

_FLOAT_LIBRARY = """
// ---------------------------------------------------------------------
// Normalized floating-point operator library (sign-less, WORD = E + M).
// Word layout: [WORD-1:M] biased exponent (0 encodes the value zero),
// [M-1:0] mantissa fraction with hidden leading one. Round to nearest
// even on an exact wide intermediate (guard + sticky), no subnormals,
// no inf/NaN: ProbLP range analysis guarantees in-range results.
// ---------------------------------------------------------------------
module problp_float_add #(
    parameter EXP = 8,
    parameter MAN = 14
) (
    input  wire               clk,
    input  wire [EXP+MAN-1:0] a,
    input  wire [EXP+MAN-1:0] b,
    output reg  [EXP+MAN-1:0] y
);
    localparam WORD = EXP + MAN;
    localparam WIDE = 2*MAN + 5;      // {carry, M+1 mantissa, M+3 tail}
    localparam TAIL = MAN + 3;

    wire [EXP-1:0] ea = a[WORD-1:MAN];
    wire [EXP-1:0] eb = b[WORD-1:MAN];
    wire           a_zero = (ea == {EXP{1'b0}});
    wire           b_zero = (eb == {EXP{1'b0}});
    wire [MAN:0]   ma = {1'b1, a[MAN-1:0]};
    wire [MAN:0]   mb = {1'b1, b[MAN-1:0]};

    wire           a_ge    = (ea >= eb);
    wire [EXP-1:0] e_big   = a_ge ? ea : eb;
    wire [MAN:0]   m_big   = a_ge ? ma : mb;
    wire [MAN:0]   m_small = a_ge ? mb : ma;
    wire [EXP-1:0] ediff   = a_ge ? (ea - eb) : (eb - ea);

    // Exact alignment within a TAIL-bit window; larger shifts collapse
    // to a sticky crumb (cannot influence nearest-even any other way).
    wire           far         = (ediff > TAIL);
    wire [WIDE-1:0] big_wide   = {1'b0, m_big, {TAIL{1'b0}}};
    wire [WIDE-1:0] small_wide = far ? {{(WIDE-1){1'b0}}, 1'b1}
                               : ({1'b0, m_small, {TAIL{1'b0}}} >> ediff[$clog2(TAIL+1):0]);
    wire [WIDE-1:0] sum_wide   = big_wide + small_wide;

    integer p;
    reg [WIDE-1:0] rem;
    reg [MAN+1:0]  mant;
    reg            guard_bit, sticky_bit;
    reg signed [EXP+1:0] e_res;
    reg [WORD-1:0] result;
    always @* begin
        // Normalize: locate the most significant one.
        p = WIDE - 1;
        while (p > 0 && !sum_wide[p]) p = p - 1;
        mant = sum_wide >> (p - MAN);
        rem = sum_wide & ((({{(WIDE-1){1'b0}}, 1'b1}) << (p - MAN)) - 1);
        guard_bit = rem[p-MAN-1];
        sticky_bit = |(rem & ((({{(WIDE-1){1'b0}}, 1'b1}) << (p - MAN - 1)) - 1));
        if (guard_bit & (sticky_bit | mant[0])) mant = mant + 1;
        e_res = $signed({2'b00, e_big}) + p - (2*MAN + 3);
        if (mant[MAN+1]) begin               // rounding carried out
            mant = mant >> 1;
            e_res = e_res + 1;
        end
        result = {e_res[EXP-1:0], mant[MAN-1:0]};
        if (a_zero) result = b;
        if (b_zero) result = a;
        if (a_zero & b_zero) result = {WORD{1'b0}};
    end
    always @(posedge clk) y <= result;
endmodule

module problp_float_mult #(
    parameter EXP = 8,
    parameter MAN = 14
) (
    input  wire               clk,
    input  wire [EXP+MAN-1:0] a,
    input  wire [EXP+MAN-1:0] b,
    output reg  [EXP+MAN-1:0] y
);
    localparam WORD = EXP + MAN;
    localparam BIAS = (1 << (EXP - 1)) - 1;

    wire [EXP-1:0] ea = a[WORD-1:MAN];
    wire [EXP-1:0] eb = b[WORD-1:MAN];
    wire           any_zero = (ea == {EXP{1'b0}}) | (eb == {EXP{1'b0}});
    wire [MAN:0]   ma = {1'b1, a[MAN-1:0]};
    wire [MAN:0]   mb = {1'b1, b[MAN-1:0]};
    wire [2*MAN+1:0] product = ma * mb;   // MSB at 2*MAN+1 or 2*MAN

    reg [MAN+1:0]  mant;
    reg            guard_bit, sticky_bit;
    reg signed [EXP+1:0] e_res;
    reg [WORD-1:0] result;
    always @* begin
        e_res = $signed({2'b00, ea}) + $signed({2'b00, eb}) - BIAS;
        if (product[2*MAN+1]) begin
            mant = product[2*MAN+1:MAN];
            guard_bit = product[MAN-1];
            sticky_bit = |product[MAN-2:0];
            e_res = e_res + 1;
        end else begin
            mant = product[2*MAN:MAN-1];
            guard_bit = product[MAN-2];
            sticky_bit = |product[MAN-3:0];
        end
        if (guard_bit & (sticky_bit | mant[0])) mant = mant + 1;
        if (mant[MAN+1]) begin
            mant = mant >> 1;
            e_res = e_res + 1;
        end
        result = any_zero ? {WORD{1'b0}} : {e_res[EXP-1:0], mant[MAN-1:0]};
    end
    always @(posedge clk) y <= result;
endmodule

module problp_float_max #(
    parameter EXP = 8,
    parameter MAN = 14
) (
    input  wire               clk,
    input  wire [EXP+MAN-1:0] a,
    input  wire [EXP+MAN-1:0] b,
    output reg  [EXP+MAN-1:0] y
);
    // Biased-exponent-then-mantissa ordering equals numeric ordering for
    // normalized sign-less words, and the zero word is the minimum.
    always @(posedge clk) y <= (a >= b) ? a : b;
endmodule
"""


def _word_literal(width: int, value: int) -> str:
    return f"{width}'h{value:0{(width + 3) // 4}x}"


def _library_text(fixed: bool, rounding) -> str:
    """Operator library for the design's rounding mode.

    Truncation drops the round-up logic: the wide result's low bits are
    simply discarded, matching :class:`repro.arith.rounding.RoundingMode`
    ``TRUNCATE`` semantics (and the doubled error constant the analysis
    charges for it).
    """
    from ..arith.rounding import RoundingMode

    text = _FIXED_LIBRARY if fixed else _FLOAT_LIBRARY
    if rounding is not RoundingMode.TRUNCATE:
        return text
    if fixed:
        return text.replace(
            "    wire               round_up  = guard & (sticky | truncated[0]);",
            "    wire               round_up  = 1'b0;  // truncation mode",
        )
    return text.replace(
        "        if (guard_bit & (sticky_bit | mant[0])) mant = mant + 1;",
        "        // truncation mode: discard guard/sticky bits",
    )


def emit_verilog(design: HardwareDesign) -> str:
    """Emit the full RTL file for a hardware design.

    Walks the design's :class:`~repro.hw.program.DatapathProgram` — the
    same schedule-shared structure both simulators execute — so forward
    and backward-pass designs print through one path. Wire names keep the
    seed convention (slot indices coincide with circuit node indices on
    forward designs): ``n<slot>_r`` for λ registers, ``n<slot>_y`` for
    operator outputs, ``C<slot>`` for θ constants, ``d<slot>_<port>_<k>``
    for balancing registers, ``o<index>_<k>`` for output alignment.
    """
    program = design.program
    width = design.word_bits
    fixed = design.is_fixed

    if fixed and design.fmt.fraction_bits < 2:
        raise ValueError(
            "the emitted fixed-point multiplier requires at least 2 "
            "fraction bits (ProbLP's search starts at 2)"
        )
    if not fixed and design.fmt.mantissa_bits < 3:
        raise ValueError(
            "the emitted float operators require at least 3 mantissa bits"
        )

    lines: list[str] = []
    out = lines.append
    fmt_text = design.fmt.describe()
    counts = program.operator_counts
    out("// ------------------------------------------------------------------")
    out(f"// Generated by ProbLP: module {design.module_name}")
    workload = "marginals (backward pass)" if design.is_marginal else "joint"
    out(f"// Workload: {workload}  |  outputs: {len(program.output_slots)}")
    out(f"// Format: {fmt_text}  |  word width: {width} bits")
    out(
        f"// Operators: {counts.adders} add, {counts.multipliers} mult, "
        f"{counts.max_units} max"
    )
    out(
        f"// Pipeline: latency {design.latency_cycles} cycles, "
        f"{program.total_registers} registers "
        f"({program.operator_registers} operator + "
        f"{program.input_registers} input + "
        f"{program.balance_registers} balancing)"
    )
    out("// Throughput: one AC evaluation per clock cycle.")
    out(f"// Rounding: {design.fmt.rounding.value}")
    out("// ------------------------------------------------------------------")
    out(_library_text(fixed, design.fmt.rounding))

    # ------------------------------------------------------------------
    # Top module
    # ------------------------------------------------------------------
    indicator_slots = [int(slot) for slot in program.indicator_slots]
    port_names = {
        slot: f"lambda_{variable}_{state}"
        for slot, (variable, state) in zip(
            indicator_slots, program.indicator_keys
        )
    }
    out(f"module {design.module_name} (")
    out("    input  wire clk,")
    for slot in indicator_slots:
        out(f"    input  wire {port_names[slot]},")
    for position, name in enumerate(program.output_names):
        comma = "," if position < len(program.output_names) - 1 else ""
        out(f"    output wire [{width - 1}:0] {name}{comma}")
    out(");")
    out(f"    localparam [{width - 1}:0] WORD_ONE  = "
        f"{_word_literal(width, design.one_word)};")
    out(f"    localparam [{width - 1}:0] WORD_ZERO = "
        f"{_word_literal(width, design.zero_word)};")
    out("")
    out("    // θ parameter constants (quantized to the target format)")
    labels = dict(
        zip((int(s) for s in program.param_slots), program.param_labels)
    )
    values = dict(
        zip((int(s) for s in program.param_slots), program.param_values)
    )
    for slot, word in sorted(design.constant_words.items()):
        out(
            f"    localparam [{width - 1}:0] C{slot} = "
            f"{_word_literal(width, word)};  // {labels[slot]} = "
            f"{float(values[slot]):.6g}"
        )
    out("")
    out("    // Stage-0 registers for λ indicator words")
    for slot in indicator_slots:
        out(f"    reg [{width - 1}:0] n{slot}_r;")
        out(
            f"    always @(posedge clk) n{slot}_r <= "
            f"{port_names[slot]} ? WORD_ONE : WORD_ZERO;"
        )
    out("")
    out("    // Balancing registers (path-timing alignment, Figure 4)")
    source_expr: dict[int, str] = {
        int(slot): f"C{int(slot)}" for slot in program.param_slots
    }
    for slot in indicator_slots:
        source_expr[slot] = f"n{slot}_r"
    for dest in program.dests:
        source_expr[int(dest)] = f"n{int(dest)}_y"

    def emit_chain(source: int, depth: int, stem: str) -> str:
        """Print a delay chain and return its tail expression."""
        previous = source_expr[source]
        for k in range(1, depth + 1):
            name = f"{stem}_{k}"
            out(f"    reg [{width - 1}:0] {name};")
            out(f"    always @(posedge clk) {name} <= {previous};")
            previous = name
        return previous

    port_expr: dict[tuple[int, int], str] = {}
    for position, (opcode, dest, left, right) in enumerate(
        program.op_tuples
    ):
        ports = ((0, left),) if opcode == OP_COPY else ((0, left), (1, right))
        for port, source in ports:
            depth = program.input_delay(position, port)
            if depth <= 0:
                port_expr[(dest, port)] = source_expr[source]
            else:
                port_expr[(dest, port)] = emit_chain(
                    source, depth, f"d{dest}_{port}"
                )
    out("")
    out("    // Pipelined operators (output registers inside the modules)")
    prefix = "problp_fixed" if fixed else "problp_float"
    if fixed:
        mult_param = f"#(.WIDTH({width}), .FRAC({design.fmt.fraction_bits}))"
        other_param = f"#(.WIDTH({width}))"
    else:
        shared = (
            f"#(.EXP({design.fmt.exponent_bits}), "
            f".MAN({design.fmt.mantissa_bits}))"
        )
        mult_param = other_param = shared
    kind_of = {OP_SUM: "add", OP_PRODUCT: "mult", OP_MAX: "max"}
    for opcode, dest, left, right in program.op_tuples:
        if opcode == OP_COPY:
            # Degenerate fan-in-1 operator: a plain pipeline register.
            out(f"    reg [{width - 1}:0] n{dest}_y;")
            out(
                f"    always @(posedge clk) n{dest}_y <= "
                f"{port_expr[(dest, 0)]};"
            )
            continue
        kind = kind_of[opcode]
        param = mult_param if kind == "mult" else other_param
        a = port_expr[(dest, 0)]
        b = port_expr[(dest, 1)]
        out(f"    wire [{width - 1}:0] n{dest}_y;")
        out(
            f"    {prefix}_{kind} {param} u{dest} "
            f"(.clk(clk), .a({a}), .b({b}), .y(n{dest}_y));"
        )
    out("")
    if design.is_marginal:
        out("    // Output alignment registers (all results in one cycle)")
    for index, name in enumerate(program.output_names):
        slot = int(program.output_slots[index])
        depth = program.output_delay(index)
        expr = (
            emit_chain(slot, depth, f"o{index}")
            if depth > 0
            else source_expr[slot]
        )
        out(f"    assign {name} = {expr};")
    out("endmodule")
    return "\n".join(lines) + "\n"
