"""Vectorized whole-stream simulation of generated hardware.

:class:`StreamSimulator` verifies long input streams against a pipelined
:class:`~repro.hw.netlist.HardwareDesign` orders of magnitude faster
than the per-cycle oracle (:class:`~repro.hw.simulator.PipelineSimulator`).
The key observation: in a *balanced* fully pipelined datapath, the
register at stage ℓ holds, at cycle ``c``, exactly the level-ℓ value of
the input presented at cycle ``c - ℓ``. Advancing every pipeline
register over a whole stream is therefore equivalent to replaying the
design's :class:`~repro.hw.program.DatapathProgram` once per input — and
that replay vectorizes over the *entire stream* as batched numpy sweeps
over the program's ``(level, opcode)`` segments, with the engine's
bit-exact word kernels (:class:`~repro.engine.executors.FixedWordKernel`
/ :class:`~repro.engine.executors.FloatWordKernel`) as the operator
semantics. Formats too wide for the int64 kernels fall back to a scalar
big-int program walk per input — still one walk per input instead of one
per cycle, and bit-identical either way.

X-propagation is modeled as a **validity plane**: an input presented as
``None`` (Verilog ``X``) makes exactly the output words ``latency``
cycles later invalid, so the "outputs valid exactly after ``latency``
cycles" property is still expressed and checked. The differential test
suite pins this simulator bit-identical to the per-cycle oracle — whose
registers genuinely go through X — so a broken balancing-register
structure cannot hide behind the validity shortcut.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..arith.fixedpoint import FixedPointBackend
from ..arith.floatingpoint import FloatBackend
from ..engine.encoder import EvidenceEncoder
from ..engine.executors import FixedWordKernel, FloatWordKernel
from ..engine.tape import OP_MAX, OP_PRODUCT, OP_SUM
from .netlist import HardwareDesign, pack_float_word


class StreamSimulator:
    """Simulate a :class:`HardwareDesign` over whole input streams."""

    def __init__(self, design: HardwareDesign) -> None:
        self.design = design
        self.program = design.program
        self.fmt = design.fmt
        self.latency = design.latency_cycles
        self.encoder = EvidenceEncoder(self.program.indicator_keys)
        self.vectorized = bool(design.fmt.fits_int64_products)
        if not self.vectorized:
            # Wide-format fallback: scalar big-int program walks.
            self._backend = (
                FixedPointBackend(design.fmt)
                if design.is_fixed
                else FloatBackend(design.fmt)
            )
            return
        if design.is_fixed:
            kernel = FixedWordKernel(design.fmt)
            self._kernel = kernel
            self._param_words = kernel.encode_params(
                self.program.param_values
            )
        else:
            kernel = FloatWordKernel(design.fmt)
            self._kernel = kernel
            self._param_m, self._param_e = kernel.encode_params(
                self.program.param_values
            )

    # ------------------------------------------------------------------
    # Core replay
    # ------------------------------------------------------------------
    def output_words(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = True,
    ) -> np.ndarray:
        """Result words per output and stream position.

        Shape ``(num_outputs, len(batch))`` int64 — raw mantissa words
        for fixed point, packed (E|M) storage words for float, exactly
        the words the emitted RTL would drive on its result ports.
        """
        if len(evidence_batch) == 0:
            return np.empty(
                (len(self.program.output_slots), 0), dtype=np.int64
            )
        if not self.vectorized:
            # Object dtype: wide-format words overflow int64 by design.
            words, _ = self._scalar_outputs(evidence_batch, strict)
            return words
        if self.design.is_fixed:
            slots = self._fixed_planes(evidence_batch, strict)
            return slots[self.program.output_slots].copy()
        mantissas, exponents = self._float_planes(evidence_batch, strict)
        outputs = self.program.output_slots
        return np.asarray(
            self._kernel.pack(mantissas[outputs], exponents[outputs])
        )

    def output_values(
        self,
        evidence_batch: Sequence[Mapping[str, int]],
        strict: bool = True,
    ) -> np.ndarray:
        """Float64 result values, shape ``(num_outputs, len(batch))``."""
        if len(evidence_batch) == 0:
            return np.empty((len(self.program.output_slots), 0))
        if not self.vectorized:
            _, values = self._scalar_outputs(evidence_batch, strict)
            return values
        if self.design.is_fixed:
            slots = self._fixed_planes(evidence_batch, strict)
            return self._kernel.to_real(slots[self.program.output_slots])
        mantissas, exponents = self._float_planes(evidence_batch, strict)
        outputs = self.program.output_slots
        return self._kernel.to_real(mantissas[outputs], exponents[outputs])

    def _fixed_planes(self, evidence_batch, strict) -> np.ndarray:
        """Int64 word plane of every program slot, ``(num_slots, n)``."""
        program = self.program
        kernel = self._kernel
        active = self.encoder.encode(evidence_batch, strict=strict)
        slots = np.zeros(
            (program.num_slots, len(evidence_batch)), dtype=np.int64
        )
        slots[program.param_slots] = self._param_words[:, None]
        slots[program.indicator_slots] = np.where(
            active, kernel.one_word, 0
        )
        for opcode, dests, lefts, rights in program.segments:
            left = slots[lefts]
            right = slots[rights]
            if opcode == OP_SUM:
                slots[dests] = kernel.add(left, right)
            elif opcode == OP_PRODUCT:
                slots[dests] = kernel.multiply(left, right)
            elif opcode == OP_MAX:
                slots[dests] = kernel.maximum(left, right)
            else:  # OP_COPY
                slots[dests] = left
        return slots

    def _float_planes(self, evidence_batch, strict):
        """(mantissa, exponent) planes of every slot, ``(num_slots, n)``."""
        program = self.program
        kernel = self._kernel
        active = self.encoder.encode(evidence_batch, strict=strict)
        n = len(evidence_batch)
        mantissas = np.zeros((program.num_slots, n), dtype=np.int64)
        exponents = np.zeros((program.num_slots, n), dtype=np.int64)
        mantissas[program.param_slots] = self._param_m[:, None]
        exponents[program.param_slots] = self._param_e[:, None]
        one_m, one_e = kernel.one
        mantissas[program.indicator_slots] = np.where(active, one_m, 0)
        exponents[program.indicator_slots] = np.where(active, one_e, 0)
        for opcode, dests, lefts, rights in program.segments:
            if opcode == OP_SUM:
                m, e = kernel.add(
                    mantissas[lefts], exponents[lefts],
                    mantissas[rights], exponents[rights],
                )
            elif opcode == OP_PRODUCT:
                m, e = kernel.multiply(
                    mantissas[lefts], exponents[lefts],
                    mantissas[rights], exponents[rights],
                )
            elif opcode == OP_MAX:
                m, e = kernel.maximum(
                    mantissas[lefts], exponents[lefts],
                    mantissas[rights], exponents[rights],
                )
            else:  # OP_COPY
                m, e = mantissas[lefts], exponents[lefts]
            mantissas[dests] = m
            exponents[dests] = e
        return mantissas, exponents

    # -- scalar big-int fallback ----------------------------------------
    def _scalar_outputs(
        self, evidence_batch, strict: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(words, values)`` per output for formats beyond int64 lanes.

        One big-int program walk per input — bit-identical to the
        per-cycle oracle by construction (same backend ops, same stream)
        but one walk per *input* instead of one per cycle.
        """
        program = self.program
        backend = self._backend
        constants = {
            int(slot): backend.from_real(float(value))
            for slot, value in zip(program.param_slots, program.param_values)
        }
        one, zero = backend.one(), backend.zero()
        word_columns = []
        value_columns = []
        for evidence in evidence_batch:
            active = self.encoder.encode_one(evidence, strict=strict)
            values: list[Any] = [None] * program.num_slots
            for slot, constant in constants.items():
                values[slot] = constant
            for position, slot in enumerate(program.indicator_slots):
                values[slot] = one if active[position] else zero
            for opcode, dest, left, right in program.op_tuples:
                if opcode == OP_SUM:
                    values[dest] = backend.add(values[left], values[right])
                elif opcode == OP_PRODUCT:
                    values[dest] = backend.multiply(
                        values[left], values[right]
                    )
                elif opcode == OP_MAX:
                    values[dest] = backend.maximum(
                        values[left], values[right]
                    )
                else:  # OP_COPY
                    values[dest] = values[left]
            outputs = [values[int(s)] for s in program.output_slots]
            if self.design.is_fixed:
                word_columns.append([value.mantissa for value in outputs])
            else:
                word_columns.append(
                    [pack_float_word(value) for value in outputs]
                )
            value_columns.append(
                [backend.to_real(value) for value in outputs]
            )
        words = np.asarray(word_columns, dtype=object).T
        return words, np.asarray(value_columns, dtype=np.float64).T

    # ------------------------------------------------------------------
    # Stream-level interfaces
    # ------------------------------------------------------------------
    def run_stream(
        self, evidence_stream: Sequence[Mapping[str, int]]
    ) -> list[float]:
        """Aligned first-output values of a full-rate stream.

        Same contract as
        :meth:`~repro.hw.simulator.PipelineSimulator.run_stream`: output
        ``i`` is the (root, for forward designs) result of
        ``evidence_stream[i]`` after the pipeline latency.
        """
        return [
            float(value)
            for value in self.output_values(list(evidence_stream))[0]
        ]

    def run_stream_outputs(
        self, evidence_stream: Sequence[Mapping[str, int]]
    ) -> dict[tuple[str, int] | None, list[float]]:
        """Aligned values of every output (see the per-cycle oracle)."""
        values = self.output_values(list(evidence_stream))
        return {
            key: [float(v) for v in values[index]]
            for index, key in enumerate(self.program.output_keys)
        }

    def simulate(
        self,
        inputs: Sequence[Mapping[str, int] | None],
        cycles: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cycle-level trace with X modeled as a validity plane.

        ``inputs[c]`` is the λ assignment presented at cycle ``c``
        (``None`` presents X); cycles beyond the list present X. Returns
        ``(words, valid)`` where ``words`` has shape
        ``(num_outputs, cycles)`` — the output words visible *after* the
        clock edge of each cycle — and ``valid[c]`` is True exactly when
        the input of cycle ``c - latency`` existed and was not X. Words
        of invalid cycles are 0 for pipeline-computed outputs (the
        per-cycle oracle holds X there); outputs tied to a constant wire
        (a degenerate case of marginal designs, e.g. a λ leaf outside
        the root cone) hold their constant word at *every* cycle, exactly
        like the oracle, regardless of ``valid``.
        """
        inputs = list(inputs)
        if cycles is None:
            cycles = len(inputs) + self.latency
        present = [e for e in inputs if e is not None]
        words_present = self.output_words(present)
        num_outputs = len(self.program.output_slots)
        words = np.zeros((num_outputs, cycles), dtype=words_present.dtype)
        valid = np.zeros(cycles, dtype=bool)
        for index, slot in enumerate(self.program.output_slots):
            if self.program.is_constant[int(slot)]:
                words[index, :] = self.design.constant_words[int(slot)]
        position = 0
        for index, evidence in enumerate(inputs):
            if evidence is None:
                continue
            cycle = index + self.latency
            if cycle < cycles:
                words[:, cycle] = words_present[:, position]
                valid[cycle] = True
            position += 1
        return words, valid
