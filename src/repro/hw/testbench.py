"""Self-checking Verilog testbench generation.

Emits a testbench that drives the generated datapath with a stream of λ
vectors at full rate (one per cycle) and compares every output word
against the expected values computed by the golden Python model
(:class:`repro.hw.simulator.PipelineSimulator`). Running the testbench
under any Verilog simulator re-establishes offline exactly the
equivalence our cycle-accurate simulator checks in-process.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ac.nodes import OpType
from .netlist import HardwareDesign
from .simulator import PipelineSimulator


def _expected_words(
    design: HardwareDesign, vectors: Sequence[Mapping[str, int]]
) -> list[int]:
    """Golden output words for each vector, via the Python model."""
    from .netlist import pack_float_word

    simulator = PipelineSimulator(design)
    raw: list = []
    for vector in vectors:
        raw.append(simulator.step(vector))
    for _ in range(design.latency_cycles):
        raw.append(simulator.step(None))
    words = []
    for index in range(len(vectors)):
        value = raw[index + design.latency_cycles]
        if value is None:
            raise RuntimeError("pipeline produced X at expected-output time")
        if design.is_fixed:
            words.append(value.mantissa)
        else:
            words.append(pack_float_word(value))
    return words


def emit_testbench(
    design: HardwareDesign,
    vectors: Sequence[Mapping[str, int]],
    testbench_name: str | None = None,
) -> str:
    """Emit a self-checking testbench for ``design`` over ``vectors``."""
    if not vectors:
        raise ValueError("need at least one test vector")
    circuit = design.circuit
    indicator_nodes = [
        (index, node)
        for index, node in enumerate(circuit.nodes)
        if node.op is OpType.INDICATOR
    ]
    num_inputs = len(indicator_nodes)
    width = design.word_bits
    latency = design.latency_cycles
    name = testbench_name or f"{design.module_name}_tb"

    # Input bit per vector, in indicator order; λ = 1 unless contradicted.
    stimulus_bits = []
    for vector in vectors:
        lambda_values = circuit.indicator_assignment(vector)
        bits = "".join(
            "1"
            if lambda_values[(node.variable, node.state)] == 1.0
            else "0"
            for _, node in reversed(indicator_nodes)
        )
        stimulus_bits.append(bits)
    expected = _expected_words(design, vectors)

    lines: list[str] = []
    out = lines.append
    out("`timescale 1ns/1ps")
    out(f"module {name};")
    out("    reg clk = 1'b0;")
    out("    always #5 clk = ~clk;")
    out(f"    reg [{num_inputs - 1}:0] lambda_bits;")
    out(f"    wire [{width - 1}:0] result;")
    out("")
    out(f"    {design.module_name} dut (")
    out("        .clk(clk),")
    for position, (index, node) in enumerate(indicator_nodes):
        out(
            f"        .lambda_{node.variable}_{node.state}"
            f"(lambda_bits[{position}]),"
        )
    out("        .result(result)")
    out("    );")
    out("")
    total = len(vectors)
    out(f"    reg [{num_inputs - 1}:0] stimulus [0:{total - 1}];")
    out(f"    reg [{width - 1}:0] expected [0:{total - 1}];")
    out("    integer i, errors;")
    out("    initial begin")
    for index, bits in enumerate(stimulus_bits):
        out(f"        stimulus[{index}] = {num_inputs}'b{bits};")
    for index, word in enumerate(expected):
        out(
            f"        expected[{index}] = "
            f"{width}'h{word:0{(width + 3) // 4}x};"
        )
    out("        errors = 0;")
    out("        // Fill the pipe while streaming one vector per cycle.")
    out(f"        for (i = 0; i < {total + latency}; i = i + 1) begin")
    out(f"            if (i < {total}) lambda_bits = stimulus[i];")
    out("            @(posedge clk);")
    out("            #1;")
    out(f"            if (i >= {latency}) begin")
    out(f"                if (result !== expected[i - {latency}]) begin")
    out(
        '                    $display("MISMATCH vector %0d: got %h, '
        f'expected %h", i - {latency}, result, expected[i - {latency}]);'
    )
    out("                    errors = errors + 1;")
    out("                end")
    out("            end")
    out("        end")
    out('        if (errors == 0) $display("PASS: %0d vectors", '
        f"{total});")
    out('        else $display("FAIL: %0d mismatches", errors);')
    out("        $finish;")
    out("    end")
    out("endmodule")
    return "\n".join(lines) + "\n"
