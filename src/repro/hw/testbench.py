"""Self-checking Verilog testbench generation.

Emits a testbench that drives the generated datapath with a stream of λ
vectors at full rate (one per cycle) and compares every output word
against the expected values computed by the golden Python model
(:class:`repro.hw.simulator.PipelineSimulator`). Running the testbench
under any Verilog simulator re-establishes offline exactly the
equivalence our simulators check in-process. Backward-pass (marginal)
designs are supported: every aligned result port gets its own expected
array and comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .netlist import HardwareDesign
from .simulator import PipelineSimulator


def _expected_words(
    design: HardwareDesign, vectors: Sequence[Mapping[str, int]]
) -> list[list[int]]:
    """Golden output words per output port, via the Python model."""
    from .netlist import pack_float_word

    simulator = PipelineSimulator(design)
    raw: list = []
    for vector in vectors:
        simulator.step(vector)
        raw.append(simulator.output_values())
    for _ in range(design.latency_cycles):
        simulator.step(None)
        raw.append(simulator.output_values())
    num_outputs = len(design.program.output_slots)
    words: list[list[int]] = [[] for _ in range(num_outputs)]
    for index in range(len(vectors)):
        values = raw[index + design.latency_cycles]
        for position, value in enumerate(values):
            if value is None:
                raise RuntimeError(
                    "pipeline produced X at expected-output time"
                )
            if design.is_fixed:
                words[position].append(value.mantissa)
            else:
                words[position].append(pack_float_word(value))
    return words


def emit_testbench(
    design: HardwareDesign,
    vectors: Sequence[Mapping[str, int]],
    testbench_name: str | None = None,
) -> str:
    """Emit a self-checking testbench for ``design`` over ``vectors``."""
    if not vectors:
        raise ValueError("need at least one test vector")
    program = design.program
    indicator_slots = [int(slot) for slot in program.indicator_slots]
    num_inputs = len(indicator_slots)
    width = design.word_bits
    latency = design.latency_cycles
    name = testbench_name or f"{design.module_name}_tb"
    output_names = program.output_names

    # Input bit per vector, in indicator order; λ = 1 unless contradicted.
    encoder = PipelineSimulator(design).encoder
    stimulus_bits = []
    for vector in vectors:
        active = encoder.encode_one(vector, strict=True)
        bits = "".join(
            "1" if active[position] else "0"
            for position in reversed(range(num_inputs))
        )
        stimulus_bits.append(bits)
    expected = _expected_words(design, vectors)

    lines: list[str] = []
    out = lines.append
    out("`timescale 1ns/1ps")
    out(f"module {name};")
    out("    reg clk = 1'b0;")
    out("    always #5 clk = ~clk;")
    out(f"    reg [{num_inputs - 1}:0] lambda_bits;")
    for port in output_names:
        out(f"    wire [{width - 1}:0] {port};")
    out("")
    out(f"    {design.module_name} dut (")
    out("        .clk(clk),")
    for position, (slot, (variable, state)) in enumerate(
        zip(indicator_slots, program.indicator_keys)
    ):
        out(
            f"        .lambda_{variable}_{state}"
            f"(lambda_bits[{position}]),"
        )
    for position, port in enumerate(output_names):
        comma = "," if position < len(output_names) - 1 else ""
        out(f"        .{port}({port}){comma}")
    out("    );")
    out("")
    total = len(vectors)
    # Single-output designs keep the seed's plain ``expected`` array name;
    # multi-output (marginal) designs get one array per result port.
    array_names = (
        ["expected"]
        if len(output_names) == 1
        else [f"expected{position}" for position in range(len(output_names))]
    )
    out(f"    reg [{num_inputs - 1}:0] stimulus [0:{total - 1}];")
    for array in array_names:
        out(f"    reg [{width - 1}:0] {array} [0:{total - 1}];")
    out("    integer i, errors;")
    out("    initial begin")
    for index, bits in enumerate(stimulus_bits):
        out(f"        stimulus[{index}] = {num_inputs}'b{bits};")
    for position, array in enumerate(array_names):
        for index, word in enumerate(expected[position]):
            out(
                f"        {array}[{index}] = "
                f"{width}'h{word:0{(width + 3) // 4}x};"
            )
    out("        errors = 0;")
    out("        // Fill the pipe while streaming one vector per cycle.")
    out(f"        for (i = 0; i < {total + latency}; i = i + 1) begin")
    out(f"            if (i < {total}) lambda_bits = stimulus[i];")
    out("            @(posedge clk);")
    out("            #1;")
    out(f"            if (i >= {latency}) begin")
    for port, array in zip(output_names, array_names):
        out(
            f"                if ({port} !== "
            f"{array}[i - {latency}]) begin"
        )
        out(
            f'                    $display("MISMATCH {port} vector %0d: '
            f'got %h, expected %h", i - {latency}, {port}, '
            f"{array}[i - {latency}]);"
        )
        out("                    errors = errors + 1;")
        out("                end")
    out("            end")
    out("        end")
    out('        if (errors == 0) $display("PASS: %0d vectors", '
        f"{total});")
    out('        else $display("FAIL: %0d mismatches", errors);')
    out("        $finish;")
    out("    end")
    out("endmodule")
    return "\n".join(lines) + "\n"
