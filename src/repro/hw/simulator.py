"""Cycle-accurate simulation of generated hardware (the slow oracle).

The simulator executes the *same* structural description the Verilog
emitter prints — the design's :class:`~repro.hw.program.DatapathProgram`
with its operator output registers, balancing-register chains and output
alignment chains — one Python object per operator per cycle, with the
quantized arithmetic backends as the operator semantics. This validates
the two properties post-synthesis simulation establishes for the paper:
functional correctness of the pipelined netlist (register balancing
included) and bit-exactness of the quantized operators, at full
throughput of one evaluation per cycle.

Uninitialized registers hold ``None`` (the simulation analogue of
Verilog's ``X``); any operation on ``X`` yields ``X``, so the test that
outputs become valid exactly after ``latency`` cycles is meaningful.

This per-cycle sweep is the hardware layer's differential-test oracle —
the specification the vectorized :class:`~repro.hw.stream.StreamSimulator`
is pinned bit-identical to. Long-stream verification should use the
stream simulator; this one costs one Python dispatch per operator per
cycle by design.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..arith.fixedpoint import FixedPointBackend
from ..arith.floatingpoint import FloatBackend
from ..engine.encoder import EvidenceEncoder
from ..engine.tape import OP_COPY, OP_PRODUCT, OP_SUM
from .netlist import HardwareDesign


class PipelineSimulator:
    """Simulate a :class:`HardwareDesign` cycle by cycle."""

    def __init__(self, design: HardwareDesign) -> None:
        self.design = design
        self.circuit = design.circuit
        self.program = design.program
        self.backend = (
            FixedPointBackend(design.fmt)
            if design.is_fixed
            else FloatBackend(design.fmt)
        )
        self.encoder = EvidenceEncoder(self.program.indicator_keys)
        self._constants: dict[int, Any] = {
            int(slot): self.backend.from_real(float(value))
            for slot, value in zip(
                self.program.param_slots, self.program.param_values
            )
        }
        self._indicator_slots = [
            int(slot) for slot in self.program.indicator_slots
        ]
        self._ops = self.program.op_tuples
        # Balancing delay chains keyed by (dest, port) — one chain per
        # operator input port, exactly as the Verilog emitter instantiates
        # them (and as the program counts them). Output alignment chains
        # are keyed by (-1 - output_index, 0).
        self._delay_chains: dict[tuple[int, int], list[Any]] = {}
        self._chain_sources: dict[tuple[int, int], int] = {}
        for position, (_opcode, dest, left, right) in enumerate(self._ops):
            for port, source in ((0, left), (1, right)):
                depth = self.program.input_delay(position, port)
                if depth > 0:
                    self._delay_chains[(dest, port)] = [None] * depth
                    self._chain_sources[(dest, port)] = source
        self._output_slots = [int(s) for s in self.program.output_slots]
        for index, slot in enumerate(self._output_slots):
            depth = self.program.output_delay(index)
            if depth > 0:
                key = (-1 - index, 0)
                self._delay_chains[key] = [None] * depth
                self._chain_sources[key] = slot
        self.reset()

    def reset(self) -> None:
        """Clear all registers to X and the cycle counter to zero."""
        self._registers: dict[int, Any] = {
            index: None
            for index in self._indicator_slots
            + [op[1] for op in self._ops]
        }
        for key in self._delay_chains:
            self._delay_chains[key] = [None] * len(self._delay_chains[key])
        self.cycle = 0

    # ------------------------------------------------------------------
    def _source_value(self, source: int, dest: int, port: int) -> Any:
        """Value seen at ``dest``'s input ``port`` this cycle (pre-edge)."""
        constant = self._constants.get(source)
        if constant is not None:
            return constant
        chain = self._delay_chains.get((dest, port))
        if chain is not None:
            return chain[-1]
        return self._registers[source]

    def _compute(self, opcode: int, dest: int, left: int, right: int) -> Any:
        left_value = self._source_value(left, dest, 0)
        if opcode == OP_SUM:
            right_value = self._source_value(right, dest, 1)
            if left_value is None or right_value is None:
                return None  # X propagation
            return self.backend.add(left_value, right_value)
        if opcode == OP_PRODUCT:
            right_value = self._source_value(right, dest, 1)
            if left_value is None or right_value is None:
                return None
            return self.backend.multiply(left_value, right_value)
        if opcode == OP_COPY:
            return left_value  # register pass-through
        right_value = self._source_value(right, dest, 1)
        if left_value is None or right_value is None:
            return None
        return self.backend.maximum(left_value, right_value)

    def step(self, evidence: Mapping[str, int] | None) -> Any:
        """Advance one clock cycle.

        ``evidence`` is the λ assignment presented at the inputs during
        this cycle (``None`` presents X). Returns the first output's
        register value *after* the clock edge — for forward designs the
        root result of the evidence presented ``latency`` cycles earlier,
        or ``None`` while the pipe fills.
        """
        # Combinational phase: everything reads pre-edge register state.
        new_registers: dict[int, Any] = {}
        if evidence is None:
            for index in self._indicator_slots:
                new_registers[index] = None
        else:
            active = self.encoder.encode_one(evidence, strict=True)
            one, zero = self.backend.one(), self.backend.zero()
            for position, index in enumerate(self._indicator_slots):
                new_registers[index] = one if active[position] else zero
        for opcode, dest, left, right in self._ops:
            new_registers[dest] = self._compute(opcode, dest, left, right)
        new_chains = {
            key: [self._tap(self._chain_sources[key])] + chain[:-1]
            for key, chain in self._delay_chains.items()
        }
        # Clock edge: commit simultaneously.
        self._registers.update(new_registers)
        self._delay_chains = new_chains
        self.cycle += 1
        return self.output_value(0)

    def _tap(self, source: int) -> Any:
        """Pre-edge value entering a delay chain from ``source``."""
        constant = self._constants.get(source)
        if constant is not None:
            return constant
        return self._registers[source]

    def output_value(self, index: int) -> Any:
        """Post-edge value of output ``index`` (alignment chains included)."""
        if index >= len(self._output_slots):
            return None  # degenerate design without outputs
        chain = self._delay_chains.get((-1 - index, 0))
        if chain is not None:
            return chain[-1]
        slot = self._output_slots[index]
        constant = self._constants.get(slot)
        if constant is not None:
            return constant
        return self._registers.get(slot)

    def output_values(self) -> tuple[Any, ...]:
        """Post-edge values of every output, in program output order."""
        return tuple(
            self.output_value(index)
            for index in range(len(self._output_slots))
        )

    # ------------------------------------------------------------------
    def run_stream(
        self, evidence_stream: list[Mapping[str, int]]
    ) -> list[float]:
        """Feed one evidence per cycle; return the aligned root outputs.

        Output ``i`` corresponds to ``evidence_stream[i]``. The pipeline
        is flushed with idle cycles at the end, demonstrating full
        throughput: ``len(stream) + latency`` cycles total.
        """
        latency = self.design.latency_cycles
        outputs: list[float] = []
        raw: list[Any] = []
        for evidence in evidence_stream:
            raw.append(self.step(evidence))
        for _ in range(latency):
            raw.append(self.step(None))
        for index in range(len(evidence_stream)):
            value = raw[index + latency]
            if value is None:
                raise RuntimeError(
                    f"pipeline output {index} was X after {latency} cycles; "
                    f"register balancing is broken"
                )
            outputs.append(self.backend.to_real(value))
        return outputs

    def run_stream_outputs(
        self, evidence_stream: list[Mapping[str, int]]
    ) -> dict[tuple[str, int] | None, list[float]]:
        """Aligned values of *every* output for a full-rate stream.

        Returns ``{output_key: [value per stream position]}`` — for
        marginal designs one entry per λ leaf keyed ``(variable, state)``,
        for forward designs a single ``None``-keyed root entry.
        """
        latency = self.design.latency_cycles
        raw: list[tuple[Any, ...]] = []
        for evidence in evidence_stream:
            self.step(evidence)
            raw.append(self.output_values())
        for _ in range(latency):
            self.step(None)
            raw.append(self.output_values())
        results: dict[tuple[str, int] | None, list[float]] = {
            key: [] for key in self.program.output_keys
        }
        for index in range(len(evidence_stream)):
            values = raw[index + latency]
            for key, value in zip(self.program.output_keys, values):
                if value is None:
                    raise RuntimeError(
                        f"pipeline output {key} of vector {index} was X "
                        f"after {latency} cycles; register balancing is "
                        f"broken"
                    )
                results[key].append(self.backend.to_real(value))
        return results
