"""Cycle-accurate simulation of generated hardware.

The simulator executes the *same* structural description the Verilog
emitter prints — operator nodes, output registers, balancing-register
chains — with the quantized arithmetic backends as the operator
semantics. This validates the two properties post-synthesis simulation
establishes for the paper: functional correctness of the pipelined
netlist (register balancing included) and bit-exactness of the quantized
operators, at full throughput of one evaluation per cycle.

Uninitialized registers hold ``None`` (the simulation analogue of
Verilog's ``X``); any operation on ``X`` yields ``X``, so the test that
outputs become valid exactly after ``latency`` cycles is meaningful.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..ac.nodes import OpType
from ..arith.fixedpoint import FixedPointBackend
from ..arith.floatingpoint import FloatBackend
from .netlist import HardwareDesign
from .pipeline import delay_of_edge


class PipelineSimulator:
    """Simulate a :class:`HardwareDesign` cycle by cycle."""

    def __init__(self, design: HardwareDesign) -> None:
        self.design = design
        self.circuit = design.circuit
        self.backend = (
            FixedPointBackend(design.fmt)
            if design.is_fixed
            else FloatBackend(design.fmt)
        )
        self._constants: dict[int, Any] = {}
        for index, node in enumerate(self.circuit.nodes):
            if node.op is OpType.PARAMETER:
                self._constants[index] = self.backend.from_real(node.value)
        # Registered elements.
        self._lambda_nodes = [
            index
            for index, node in enumerate(self.circuit.nodes)
            if node.op is OpType.INDICATOR
        ]
        self._operator_nodes = [
            index
            for index, node in enumerate(self.circuit.nodes)
            if node.op.is_operator
        ]
        # Balancing delay chains keyed by (parent, port) — one chain per
        # operator input port, exactly as the Verilog emitter instantiates
        # them (and as the schedule counts them).
        self._delay_chains: dict[tuple[int, int], list[Any]] = {}
        self._chain_sources: dict[tuple[int, int], int] = {}
        for parent in self._operator_nodes:
            children = self.circuit.node(parent).children
            for port, child in enumerate(children):
                depth = delay_of_edge(design.schedule, self.circuit, child, parent)
                if depth > 0:
                    self._delay_chains[(parent, port)] = [None] * depth
                    self._chain_sources[(parent, port)] = child
        self.reset()

    def reset(self) -> None:
        """Clear all registers to X and the cycle counter to zero."""
        self._registers: dict[int, Any] = {
            index: None for index in self._lambda_nodes + self._operator_nodes
        }
        for key in self._delay_chains:
            self._delay_chains[key] = [None] * len(self._delay_chains[key])
        self.cycle = 0

    # ------------------------------------------------------------------
    def _source_value(self, child: int, parent: int, port: int) -> Any:
        """Value seen at ``parent``'s input ``port`` this cycle (pre-edge)."""
        if child in self._constants:
            return self._constants[child]
        chain = self._delay_chains.get((parent, port))
        if chain is not None:
            return chain[-1]
        return self._registers[child]

    def _compute(self, index: int) -> Any:
        node = self.circuit.node(index)
        left = self._source_value(node.children[0], index, 0)
        right = (
            self._source_value(node.children[1], index, 1)
            if len(node.children) > 1
            else left
        )
        if left is None or right is None:
            return None  # X propagation
        if node.op is OpType.SUM:
            return self.backend.add(left, right)
        if node.op is OpType.PRODUCT:
            return self.backend.multiply(left, right)
        return self.backend.maximum(left, right)

    def step(self, evidence: Mapping[str, int] | None) -> Any:
        """Advance one clock cycle.

        ``evidence`` is the λ assignment presented at the inputs during
        this cycle (``None`` presents X). Returns the root register value
        *after* the clock edge — the result of the evidence presented
        ``latency`` cycles earlier, or ``None`` while the pipe fills.
        """
        # Combinational phase: everything reads pre-edge register state.
        new_registers: dict[int, Any] = {}
        if evidence is None:
            for index in self._lambda_nodes:
                new_registers[index] = None
        else:
            lambda_values = self.circuit.indicator_assignment(evidence)
            one, zero = self.backend.one(), self.backend.zero()
            for index in self._lambda_nodes:
                node = self.circuit.node(index)
                lam = lambda_values[(node.variable, node.state)]
                new_registers[index] = one if lam == 1.0 else zero
        for index in self._operator_nodes:
            new_registers[index] = self._compute(index)
        new_chains = {
            key: [self._tap(self._chain_sources[key])] + chain[:-1]
            for key, chain in self._delay_chains.items()
        }
        # Clock edge: commit simultaneously.
        self._registers.update(new_registers)
        self._delay_chains = new_chains
        self.cycle += 1
        return self._registers.get(self.circuit.root)

    def _tap(self, child: int) -> Any:
        """Pre-edge value entering a delay chain from ``child``."""
        if child in self._constants:
            return self._constants[child]
        return self._registers[child]

    # ------------------------------------------------------------------
    def run_stream(
        self, evidence_stream: list[Mapping[str, int]]
    ) -> list[float]:
        """Feed one evidence per cycle; return the aligned root outputs.

        Output ``i`` corresponds to ``evidence_stream[i]``. The pipeline
        is flushed with idle cycles at the end, demonstrating full
        throughput: ``len(stream) + latency`` cycles total.
        """
        latency = self.design.latency_cycles
        outputs: list[float] = []
        raw: list[Any] = []
        for evidence in evidence_stream:
            raw.append(self.step(evidence))
        for _ in range(latency):
            raw.append(self.step(None))
        for index in range(len(evidence_stream)):
            value = raw[index + latency]
            if value is None:
                raise RuntimeError(
                    f"pipeline output {index} was X after {latency} cycles; "
                    f"register balancing is broken"
                )
            outputs.append(self.backend.to_real(value))
        return outputs
