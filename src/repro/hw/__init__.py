"""Automatic hardware generation (§3.4 of the paper).

Turns a binary arithmetic circuit plus a number format into a fully
parallel, fully pipelined datapath: tape-native pipeline scheduling with
balancing registers, quantized constant encoding, Verilog RTL emission,
a cycle-accurate oracle simulator, a vectorized whole-stream simulator
and bit-exact equivalence checking. The whole stack is lowered from the
engine's compiled tape (:mod:`repro.hw.program`), and both sweep
directions are first-class: ``workload="marginals"`` builds hardware for
the backward (derivative) pass, serving every joint marginal per cycle.
"""

from .netlist import (
    EnergyBreakdown,
    HardwareDesign,
    encode_fixed_word,
    encode_float_word,
    generate_hardware,
    pack_float_word,
    unpack_float_word,
)
from .pipeline import PipelineSchedule, delay_of_edge, schedule_pipeline
from .program import (
    DatapathProgram,
    forward_program,
    lower_program,
    marginals_program,
)
from .simulator import PipelineSimulator
from .stream import StreamSimulator
from .testbench import emit_testbench
from .verify import (
    EquivalenceReport,
    check_equivalence,
    check_marginals_equivalence,
)
from .verilog import emit_verilog

__all__ = [
    "DatapathProgram",
    "EnergyBreakdown",
    "EquivalenceReport",
    "HardwareDesign",
    "PipelineSchedule",
    "PipelineSimulator",
    "StreamSimulator",
    "check_equivalence",
    "check_marginals_equivalence",
    "delay_of_edge",
    "emit_testbench",
    "emit_verilog",
    "encode_fixed_word",
    "encode_float_word",
    "forward_program",
    "generate_hardware",
    "lower_program",
    "marginals_program",
    "pack_float_word",
    "schedule_pipeline",
    "unpack_float_word",
]
