"""Automatic hardware generation (§3.4 of the paper).

Turns a binary arithmetic circuit plus a number format into a fully
parallel, fully pipelined datapath: pipeline scheduling with balancing
registers, quantized constant encoding, Verilog RTL emission, a
cycle-accurate simulator and bit-exact equivalence checking.
"""

from .netlist import (
    EnergyBreakdown,
    HardwareDesign,
    encode_fixed_word,
    encode_float_word,
    generate_hardware,
    pack_float_word,
    unpack_float_word,
)
from .pipeline import PipelineSchedule, delay_of_edge, schedule_pipeline
from .simulator import PipelineSimulator
from .testbench import emit_testbench
from .verify import EquivalenceReport, check_equivalence
from .verilog import emit_verilog

__all__ = [
    "EnergyBreakdown",
    "EquivalenceReport",
    "HardwareDesign",
    "PipelineSchedule",
    "PipelineSimulator",
    "check_equivalence",
    "delay_of_edge",
    "emit_testbench",
    "emit_verilog",
    "encode_fixed_word",
    "encode_float_word",
    "generate_hardware",
    "pack_float_word",
    "schedule_pipeline",
    "unpack_float_word",
]
