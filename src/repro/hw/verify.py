"""Equivalence checking of generated hardware.

The check the paper performs via post-synthesis simulation: stream
evidence assignments through the pipelined design at full rate (one per
cycle) and compare every output word against the reference quantized
evaluation of the circuit. Results must be *bit-exact* — any deviation
indicates broken register balancing or operator semantics.

References are produced by the compiled-tape engine's exact vectorized
executor when the design's format qualifies (an order-of-magnitude
faster for long streams) and by the scalar big-int path otherwise; the
two are differentially tested to be bit-identical, so either way the
comparison is against §3.1 operator semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ac.evaluate import evaluate_quantized
from ..engine import session_for
from .netlist import HardwareDesign
from .simulator import PipelineSimulator


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a hardware-vs-reference equivalence run."""

    num_vectors: int
    num_mismatches: int
    max_abs_difference: float
    latency_cycles: int

    @property
    def equivalent(self) -> bool:
        return self.num_mismatches == 0


def check_equivalence(
    design: HardwareDesign,
    evidence_vectors: Sequence[Mapping[str, int]],
) -> EquivalenceReport:
    """Stream vectors through the design and diff against reference."""
    if not evidence_vectors:
        raise ValueError("need at least one evidence vector")
    evidence_vectors = list(evidence_vectors)
    simulator = PipelineSimulator(design)
    hardware_outputs = simulator.run_stream(evidence_vectors)
    session = session_for(design.circuit)
    if session.supports_vectorized(design.fmt):
        # strict matches the scalar evaluate_quantized branch below.
        references = session.evaluate_quantized_batch(
            design.fmt, evidence_vectors, strict=True
        )
    else:
        references = [
            evaluate_quantized(design.circuit, simulator.backend, evidence)
            for evidence in evidence_vectors
        ]
    mismatches = 0
    worst = 0.0
    for hardware_value, reference in zip(hardware_outputs, references):
        difference = abs(hardware_value - reference)
        if difference != 0.0:
            mismatches += 1
            worst = max(worst, difference)
    return EquivalenceReport(
        num_vectors=len(evidence_vectors),
        num_mismatches=mismatches,
        max_abs_difference=worst,
        latency_cycles=design.latency_cycles,
    )
