"""Equivalence checking of generated hardware.

The check the paper performs via post-synthesis simulation: stream
evidence assignments through the pipelined design at full rate (one per
cycle) and compare every output word against the reference quantized
evaluation of the circuit. Results must be *bit-exact* — any deviation
indicates broken register balancing or operator semantics.

The design side runs on the vectorized
:class:`~repro.hw.stream.StreamSimulator` (differentially pinned
bit-identical to the per-cycle oracle, so the fast path loses no
checking power); references come from the compiled-tape engine —
:meth:`~repro.engine.session.InferenceSession.evaluate_quantized_batch`
for forward designs and
:meth:`~repro.engine.session.InferenceSession.quantized_marginals_batch`
(unnormalized joints) for backward-pass marginal designs — so either way
the comparison is against §3.1 operator semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..engine import session_for
from .netlist import HardwareDesign
from .stream import StreamSimulator


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a hardware-vs-reference equivalence run."""

    num_vectors: int
    num_mismatches: int
    max_abs_difference: float
    latency_cycles: int

    @property
    def equivalent(self) -> bool:
        return self.num_mismatches == 0


def check_equivalence(
    design: HardwareDesign,
    evidence_vectors: Sequence[Mapping[str, int]],
) -> EquivalenceReport:
    """Stream vectors through the design and diff against reference.

    Dispatches on the design's workload: forward designs compare the root
    output stream, marginal designs every per-λ-leaf output stream.
    """
    if design.is_marginal:
        return check_marginals_equivalence(design, evidence_vectors)
    if not evidence_vectors:
        raise ValueError("need at least one evidence vector")
    evidence_vectors = list(evidence_vectors)
    simulator = StreamSimulator(design)
    hardware_outputs = simulator.run_stream(evidence_vectors)
    session = session_for(design.circuit)
    # Strict evidence handling matches the scalar quantized paths.
    references = session.evaluate_quantized_batch(
        design.fmt, evidence_vectors, strict=True
    )
    mismatches = 0
    worst = 0.0
    for hardware_value, reference in zip(hardware_outputs, references):
        difference = abs(hardware_value - reference)
        if difference != 0.0:
            mismatches += 1
            worst = max(worst, difference)
    return EquivalenceReport(
        num_vectors=len(evidence_vectors),
        num_mismatches=mismatches,
        max_abs_difference=worst,
        latency_cycles=design.latency_cycles,
    )


def check_marginals_equivalence(
    design: HardwareDesign,
    evidence_vectors: Sequence[Mapping[str, int]],
) -> EquivalenceReport:
    """Diff a marginal design against the engine's backward sweep.

    Every output word stream — one per λ leaf, i.e. the quantized joint
    marginal ``Pr(x, e\\X)`` of every state of every variable — must be
    bit-exact against
    :meth:`~repro.engine.session.InferenceSession.quantized_marginals_batch`
    with ``joint=True`` (the normalizing division is a float64
    post-process outside the datapath, identical on both sides).
    """
    if not design.is_marginal:
        raise ValueError("design implements the forward workload")
    if not evidence_vectors:
        raise ValueError("need at least one evidence vector")
    evidence_vectors = list(evidence_vectors)
    simulator = StreamSimulator(design)
    hardware = simulator.run_stream_outputs(evidence_vectors)
    session = session_for(design.circuit)
    references = session.quantized_marginals_batch(
        design.fmt, evidence_vectors, strict=True, joint=True
    )
    mismatches = 0
    worst = 0.0
    for key, outputs in hardware.items():
        variable, state = key
        reference_row = references[variable][state]
        for row in range(len(evidence_vectors)):
            difference = abs(outputs[row] - float(reference_row[row]))
            if difference != 0.0:
                mismatches += 1
                worst = max(worst, difference)
    return EquivalenceReport(
        num_vectors=len(evidence_vectors),
        num_mismatches=mismatches,
        max_abs_difference=worst,
        latency_cycles=design.latency_cycles,
    )
