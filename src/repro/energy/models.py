"""Operator-level energy models (Table 1 of the paper).

The paper synthesizes adders and multipliers with varying bit-widths in
TSMC 65 nm at 1 V, extracts post-synthesis energy, and fits the models

===============  ==================
Operator         Energy (fJ)
===============  ==================
Fixed-pt add     7.8 · N
Fixed-pt mult    1.9 · N² · log₂N
Float-pt add     44.74 · (M+1)
Float-pt mult    2.9 · (M+1)² · log₂(M+1)
===============  ==================

with ``N`` the total fixed-point bits and ``M`` the mantissa bits. We take
the published coefficients as defaults;
:mod:`repro.energy.fitting` demonstrates recovering them from (synthetic)
synthesis samples. MAX nodes are costed as adders — a comparator is a
subtractor-equivalent structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat


@dataclass(frozen=True)
class EnergyModel:
    """Coefficients of the four operator energy formulas, in femtojoules.

    The defaults are the paper's Table 1 values (TSMC 65 nm, 1 V).
    """

    fixed_add_coeff: float = 7.8
    fixed_mult_coeff: float = 1.9
    float_add_coeff: float = 44.74
    float_mult_coeff: float = 2.9
    #: Energy per pipeline-register bit per cycle (fJ); used only by the
    #: post-synthesis proxy, not by the paper's Table 1 predictions.
    register_bit_coeff: float = 1.0

    def fixed_add(self, total_bits: int) -> float:
        """Energy of an ``N``-bit fixed-point adder, fJ."""
        _check_bits(total_bits)
        return self.fixed_add_coeff * total_bits

    def fixed_mult(self, total_bits: int) -> float:
        """Energy of an ``N``-bit fixed-point multiplier, fJ."""
        _check_bits(total_bits)
        if total_bits == 1:
            # log2(1) = 0 would cost nothing; a 1-bit multiplier is an AND
            # gate — charge the linear term instead.
            return self.fixed_mult_coeff
        return self.fixed_mult_coeff * total_bits**2 * math.log2(total_bits)

    def float_add(self, mantissa_bits: int) -> float:
        """Energy of a float adder with ``M`` mantissa bits, fJ."""
        _check_bits(mantissa_bits)
        return self.float_add_coeff * (mantissa_bits + 1)

    def float_mult(self, mantissa_bits: int) -> float:
        """Energy of a float multiplier with ``M`` mantissa bits, fJ."""
        _check_bits(mantissa_bits)
        significand = mantissa_bits + 1
        return self.float_mult_coeff * significand**2 * math.log2(significand)

    def register(self, bits: int) -> float:
        """Energy of one ``bits``-wide pipeline register per cycle, fJ."""
        _check_bits(bits)
        return self.register_bit_coeff * bits

    # -- format-level conveniences -----------------------------------------
    def fixed_format_add(self, fmt: FixedPointFormat) -> float:
        return self.fixed_add(fmt.total_bits)

    def fixed_format_mult(self, fmt: FixedPointFormat) -> float:
        return self.fixed_mult(fmt.total_bits)

    def float_format_add(self, fmt: FloatFormat) -> float:
        return self.float_add(fmt.mantissa_bits)

    def float_format_mult(self, fmt: FloatFormat) -> float:
        return self.float_mult(fmt.mantissa_bits)


def _check_bits(bits: int) -> None:
    if bits < 1:
        raise ValueError(f"bit-width must be positive, got {bits}")


#: The paper's published model (Table 1).
PAPER_MODEL = EnergyModel()

#: Storage width of a float format in bits (no sign bit — probabilities).
def float_storage_bits(fmt: FloatFormat) -> int:
    return fmt.exponent_bits + fmt.mantissa_bits


#: The 32-bit float reference the paper compares against (E=8, M=23 plus
#: a sign bit, i.e. IEEE single precision).
IEEE_SINGLE = FloatFormat(exponent_bits=8, mantissa_bits=23)
