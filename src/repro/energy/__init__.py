"""Energy models and circuit-level energy estimation (paper Table 1)."""

from .estimate import (
    FJ_PER_NJ,
    OperatorCounts,
    circuit_energy_nj,
    count_operators,
    counts_from_opcodes,
    datapath_bits,
    fixed_circuit_energy,
    float_circuit_energy,
    operator_energy,
    register_energy,
)
from .fitting import (
    FitResult,
    SynthesisSample,
    fit_energy_model,
    fit_single_coefficient,
    generate_synthesis_samples,
)
from .gatecount import (
    fixed_adder_gates,
    fixed_multiplier_gates,
    float_adder_gates,
    float_multiplier_gates,
)
from .models import EnergyModel, IEEE_SINGLE, PAPER_MODEL, float_storage_bits

__all__ = [
    "EnergyModel",
    "FJ_PER_NJ",
    "FitResult",
    "IEEE_SINGLE",
    "OperatorCounts",
    "PAPER_MODEL",
    "SynthesisSample",
    "circuit_energy_nj",
    "count_operators",
    "counts_from_opcodes",
    "datapath_bits",
    "operator_energy",
    "fit_energy_model",
    "fit_single_coefficient",
    "fixed_adder_gates",
    "fixed_circuit_energy",
    "fixed_multiplier_gates",
    "float_adder_gates",
    "float_circuit_energy",
    "float_multiplier_gates",
    "float_storage_bits",
    "generate_synthesis_samples",
    "register_energy",
]
