"""Least-squares fitting of the operator energy models.

Reproduces the paper's model-construction flow: take per-operator energy
samples across bit-widths (the paper's came from post-synthesis
simulation; ours from :mod:`repro.energy.gatecount` scaled by a
calibrated per-gate energy, optionally with noise), then fit the Table 1
basis functions

* fixed add:   E(N) = a · N
* fixed mult:  E(N) = a · N² log₂N
* float add:   E(M) = a · (M+1)
* float mult:  E(M) = a · (M+1)² log₂(M+1)

by ordinary least squares. Because each model is a single scaled basis
function, the fit reduces to ``a = Σ φᵢEᵢ / Σ φᵢ²``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .gatecount import (
    fixed_adder_gates,
    fixed_multiplier_gates,
    float_adder_gates,
    float_multiplier_gates,
)
from .models import EnergyModel, PAPER_MODEL


@dataclass(frozen=True)
class FitResult:
    """Outcome of a single-coefficient least-squares fit."""

    coefficient: float
    residual_rms: float
    relative_rms: float
    num_samples: int


def fit_single_coefficient(
    bit_widths: Sequence[int],
    energies: Sequence[float],
    basis: Callable[[int], float],
) -> FitResult:
    """Fit ``E ≈ a · basis(bits)`` by least squares."""
    if len(bit_widths) != len(energies):
        raise ValueError("bit_widths and energies must have equal length")
    if len(bit_widths) < 2:
        raise ValueError("need at least two samples to fit")
    phi = np.array([basis(b) for b in bit_widths], dtype=float)
    e = np.asarray(energies, dtype=float)
    denominator = float(phi @ phi)
    if denominator == 0.0:
        raise ValueError("degenerate basis: all basis values are zero")
    a = float(phi @ e) / denominator
    residuals = e - a * phi
    rms = float(np.sqrt(np.mean(residuals**2)))
    scale = float(np.sqrt(np.mean(e**2)))
    return FitResult(
        coefficient=a,
        residual_rms=rms,
        relative_rms=rms / scale if scale else 0.0,
        num_samples=len(bit_widths),
    )


# Basis functions matching Table 1.
def fixed_add_basis(total_bits: int) -> float:
    return float(total_bits)


def fixed_mult_basis(total_bits: int) -> float:
    return float(total_bits**2) * math.log2(total_bits) if total_bits > 1 else 1.0


def float_add_basis(mantissa_bits: int) -> float:
    return float(mantissa_bits + 1)


def float_mult_basis(mantissa_bits: int) -> float:
    significand = mantissa_bits + 1
    return float(significand**2) * math.log2(significand)


@dataclass(frozen=True)
class SynthesisSample:
    """One simulated synthesis data point."""

    operator: str
    bits: int
    energy_fj: float


def generate_synthesis_samples(
    bit_widths: Sequence[int] = tuple(range(4, 33, 2)),
    noise: float = 0.05,
    seed: int = 2019,
    reference: EnergyModel = PAPER_MODEL,
) -> list[SynthesisSample]:
    """Simulate per-operator synthesis energy samples.

    Gate counts give the shape; a per-gate energy calibrated against the
    ``reference`` model at N=16 (M=15) gives the scale; multiplicative
    noise models synthesis variability.
    """
    if not 0.0 <= noise < 1.0:
        raise ValueError("noise must be in [0, 1)")
    rng = np.random.default_rng(seed)
    anchor_n, anchor_m = 16, 15
    calibrations = {
        "fixed_add": reference.fixed_add(anchor_n) / fixed_adder_gates(anchor_n),
        "fixed_mult": reference.fixed_mult(anchor_n)
        / fixed_multiplier_gates(anchor_n),
        "float_add": reference.float_add(anchor_m) / float_adder_gates(anchor_m),
        "float_mult": reference.float_mult(anchor_m)
        / float_multiplier_gates(anchor_m),
    }
    gate_models = {
        "fixed_add": fixed_adder_gates,
        "fixed_mult": fixed_multiplier_gates,
        "float_add": float_adder_gates,
        "float_mult": float_multiplier_gates,
    }
    samples = []
    for operator, gates in gate_models.items():
        per_gate = calibrations[operator]
        for bits in bit_widths:
            energy = gates(bits) * per_gate
            energy *= 1.0 + rng.uniform(-noise, noise)
            samples.append(SynthesisSample(operator, bits, energy))
    return samples


def fit_energy_model(samples: Sequence[SynthesisSample]) -> EnergyModel:
    """Fit a full :class:`EnergyModel` from synthesis samples."""
    bases = {
        "fixed_add": fixed_add_basis,
        "fixed_mult": fixed_mult_basis,
        "float_add": float_add_basis,
        "float_mult": float_mult_basis,
    }
    coefficients = {}
    for operator, basis in bases.items():
        selected = [s for s in samples if s.operator == operator]
        if not selected:
            raise ValueError(f"no samples for operator {operator!r}")
        fit = fit_single_coefficient(
            [s.bits for s in selected],
            [s.energy_fj for s in selected],
            basis,
        )
        coefficients[operator] = fit.coefficient
    return EnergyModel(
        fixed_add_coeff=coefficients["fixed_add"],
        fixed_mult_coeff=coefficients["fixed_mult"],
        float_add_coeff=coefficients["float_add"],
        float_mult_coeff=coefficients["float_mult"],
    )
