"""Analytic gate-count models of the arithmetic operators.

The paper derives its energy models from TSMC 65 nm synthesis runs. With
no synthesis toolchain available offline, this module provides the
substitute substrate (DESIGN.md §4): first-order gate counts of the
standard micro-architectures —

* ripple-carry adder: one full adder per bit;
* array multiplier: an AND plane plus an (N-1)·N adder array, with a
  log-factor for the carry-propagation/compression tree;
* float adder: alignment shifter + significand adder + normalization
  (LZC + shifter), all linear in the significand width;
* float multiplier: significand array multiplier + exponent adder +
  rounding.

Scaled by a per-gate switching energy calibrated at one anchor point,
these produce "synthesis samples" whose fitted coefficients land close to
the paper's Table 1 (the fitting flow is exercised in
:mod:`repro.energy.fitting`).
"""

from __future__ import annotations

import math

#: Gate-equivalents of a full adder (typical standard-cell mapping).
GATES_PER_FULL_ADDER = 5.0


def fixed_adder_gates(total_bits: int) -> float:
    """Gate count of an N-bit ripple-carry adder."""
    if total_bits < 1:
        raise ValueError("total_bits must be positive")
    return GATES_PER_FULL_ADDER * total_bits


def fixed_multiplier_gates(total_bits: int) -> float:
    """Gate count of an N-bit array multiplier with a compression tree.

    N² partial-product gates plus an adder array; the log₂N factor models
    the carry-save compression tree depth's wiring/activity overhead that
    the paper's quadratic-log fit captures.
    """
    if total_bits < 1:
        raise ValueError("total_bits must be positive")
    if total_bits == 1:
        return 1.0
    return total_bits**2 * math.log2(total_bits)


def float_adder_gates(mantissa_bits: int) -> float:
    """Gate count of a float adder over an (M+1)-bit significand.

    Dominated by three linear-in-width blocks: the alignment barrel
    shifter, the significand adder and the normalization shifter.
    """
    if mantissa_bits < 1:
        raise ValueError("mantissa_bits must be positive")
    significand = mantissa_bits + 1
    shifter = 2 * GATES_PER_FULL_ADDER * significand  # align + normalize
    adder = GATES_PER_FULL_ADDER * significand
    leading_zero_count = 3.0 * significand
    return shifter + adder + leading_zero_count


def float_multiplier_gates(mantissa_bits: int) -> float:
    """Gate count of a float multiplier over an (M+1)-bit significand."""
    if mantissa_bits < 1:
        raise ValueError("mantissa_bits must be positive")
    significand = mantissa_bits + 1
    return fixed_multiplier_gates(significand) + fixed_adder_gates(8)
