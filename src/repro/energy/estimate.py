"""Circuit-level energy estimation.

The paper predicts AC energy as the sum of operator energies over the
fully parallel hardware: every 2-input adder and multiplier of the binary
circuit evaluates once per AC evaluation. The *post-synthesis proxy* adds
pipeline-register energy computed from the balanced pipeline the hardware
generator builds (the paper measures this on synthesized netlists; see
DESIGN.md §4 on the substitution).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..ac.circuit import ArithmeticCircuit
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from ..errors import NonBinaryCircuitError
from .models import EnergyModel, PAPER_MODEL, float_storage_bits

#: Conversion from femtojoules to the nanojoules used in the paper's tables.
FJ_PER_NJ = 1.0e6


@dataclass(frozen=True)
class OperatorCounts:
    """Two-input operator counts of a binary circuit."""

    adders: int
    multipliers: int
    max_units: int

    @property
    def total(self) -> int:
        return self.adders + self.multipliers + self.max_units


def counts_from_opcodes(opcodes: np.ndarray) -> OperatorCounts:
    """Operator counts of a flat opcode array (tape or datapath program)."""
    from ..engine.tape import OP_MAX, OP_PRODUCT, OP_SUM

    histogram = np.bincount(opcodes, minlength=3)
    return OperatorCounts(
        adders=int(histogram[OP_SUM]),
        multipliers=int(histogram[OP_PRODUCT]),
        max_units=int(histogram[OP_MAX]),
    )


#: Per-tape operator-count cache; a count dies with its tape (and the
#: tape with its circuit), so repeated energy/netlist/report queries of
#: one circuit never re-count.
_COUNTS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def count_operators(circuit: ArithmeticCircuit) -> OperatorCounts:
    """Count 2-input operators; requires a binary circuit.

    Derived once from the cached tape's opcode arrays (one
    ``np.bincount`` instead of a node walk) and memoized per tape, so
    the netlist, energy and report paths all reuse one count.
    """
    if not circuit.is_binary:
        raise NonBinaryCircuitError(
            "energy estimation needs a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    from ..engine.tape import tape_for

    tape = tape_for(circuit)
    counts = _COUNTS_CACHE.get(tape)
    if counts is None:
        counts = counts_from_opcodes(tape.opcodes)
        _COUNTS_CACHE[tape] = counts
    return counts


def operator_energy(
    counts: OperatorCounts,
    fmt: FixedPointFormat | FloatFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted operator energy in fJ for explicit operator counts.

    The shared pricing core: fixed adders/multipliers at N = I + F bits,
    float ones at M mantissa bits, comparators costed as adders. Used by
    the circuit-level helpers below and by datapath programs whose op
    counts come straight from their opcode arrays (e.g. backward-pass
    hardware, which has no one-node-per-operator circuit to walk).
    """
    if isinstance(fmt, FixedPointFormat):
        add_energy = model.fixed_add(fmt.total_bits)
        mult_energy = model.fixed_mult(fmt.total_bits)
    elif isinstance(fmt, FloatFormat):
        add_energy = model.float_add(fmt.mantissa_bits)
        mult_energy = model.float_mult(fmt.mantissa_bits)
    else:
        raise TypeError(f"unsupported format type {type(fmt).__name__}")
    return (
        counts.adders * add_energy
        + counts.multipliers * mult_energy
        + counts.max_units * add_energy  # comparators costed as adders
    )


def fixed_circuit_energy(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in fJ, fixed-point operators."""
    return operator_energy(count_operators(circuit), fmt, model)


def float_circuit_energy(
    circuit: ArithmeticCircuit,
    fmt: FloatFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in fJ, float operators."""
    return operator_energy(count_operators(circuit), fmt, model)


def circuit_energy_nj(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat | FloatFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in nJ (the paper's table unit)."""
    if isinstance(fmt, FixedPointFormat):
        return fixed_circuit_energy(circuit, fmt, model) / FJ_PER_NJ
    if isinstance(fmt, FloatFormat):
        return float_circuit_energy(circuit, fmt, model) / FJ_PER_NJ
    raise TypeError(f"unsupported format type {type(fmt).__name__}")


def register_energy(
    num_registers: int,
    bits_per_register: int,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Energy of all pipeline registers for one evaluation, fJ.

    In a fully pipelined design every register clocks every cycle, and one
    evaluation advances one stage per cycle, so charging every register
    once per evaluation is the steady-state per-result energy.
    """
    if num_registers < 0:
        raise ValueError("num_registers must be non-negative")
    return num_registers * model.register(bits_per_register)


def datapath_bits(fmt: FixedPointFormat | FloatFormat) -> int:
    """Width of one datapath word (register width) for a format."""
    if isinstance(fmt, FixedPointFormat):
        return fmt.total_bits
    if isinstance(fmt, FloatFormat):
        return float_storage_bits(fmt)
    raise TypeError(f"unsupported format type {type(fmt).__name__}")
