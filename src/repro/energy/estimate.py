"""Circuit-level energy estimation.

The paper predicts AC energy as the sum of operator energies over the
fully parallel hardware: every 2-input adder and multiplier of the binary
circuit evaluates once per AC evaluation. The *post-synthesis proxy* adds
pipeline-register energy computed from the balanced pipeline the hardware
generator builds (the paper measures this on synthesized netlists; see
DESIGN.md §4 on the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ac.circuit import ArithmeticCircuit
from ..ac.nodes import OpType
from ..arith.fixedpoint import FixedPointFormat
from ..arith.floatingpoint import FloatFormat
from .models import EnergyModel, PAPER_MODEL, float_storage_bits

#: Conversion from femtojoules to the nanojoules used in the paper's tables.
FJ_PER_NJ = 1.0e6


@dataclass(frozen=True)
class OperatorCounts:
    """Two-input operator counts of a binary circuit."""

    adders: int
    multipliers: int
    max_units: int

    @property
    def total(self) -> int:
        return self.adders + self.multipliers + self.max_units


def count_operators(circuit: ArithmeticCircuit) -> OperatorCounts:
    """Count 2-input operators; requires a binary circuit."""
    if not circuit.is_binary:
        raise ValueError(
            "energy estimation needs a binary circuit; apply "
            "repro.ac.transform.binarize first"
        )
    adders = multipliers = max_units = 0
    for node in circuit.nodes:
        if len(node.children) != 2:
            continue
        if node.op is OpType.SUM:
            adders += 1
        elif node.op is OpType.PRODUCT:
            multipliers += 1
        elif node.op is OpType.MAX:
            max_units += 1
    return OperatorCounts(adders, multipliers, max_units)


def fixed_circuit_energy(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in fJ, fixed-point operators."""
    counts = count_operators(circuit)
    add_energy = model.fixed_add(fmt.total_bits)
    mult_energy = model.fixed_mult(fmt.total_bits)
    return (
        counts.adders * add_energy
        + counts.multipliers * mult_energy
        + counts.max_units * add_energy  # comparators costed as adders
    )


def float_circuit_energy(
    circuit: ArithmeticCircuit,
    fmt: FloatFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in fJ, float operators."""
    counts = count_operators(circuit)
    add_energy = model.float_add(fmt.mantissa_bits)
    mult_energy = model.float_mult(fmt.mantissa_bits)
    return (
        counts.adders * add_energy
        + counts.multipliers * mult_energy
        + counts.max_units * add_energy
    )


def circuit_energy_nj(
    circuit: ArithmeticCircuit,
    fmt: FixedPointFormat | FloatFormat,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Predicted energy per AC evaluation in nJ (the paper's table unit)."""
    if isinstance(fmt, FixedPointFormat):
        return fixed_circuit_energy(circuit, fmt, model) / FJ_PER_NJ
    if isinstance(fmt, FloatFormat):
        return float_circuit_energy(circuit, fmt, model) / FJ_PER_NJ
    raise TypeError(f"unsupported format type {type(fmt).__name__}")


def register_energy(
    num_registers: int,
    bits_per_register: int,
    model: EnergyModel = PAPER_MODEL,
) -> float:
    """Energy of all pipeline registers for one evaluation, fJ.

    In a fully pipelined design every register clocks every cycle, and one
    evaluation advances one stage per cycle, so charging every register
    once per evaluation is the steady-state per-result energy.
    """
    if num_registers < 0:
        raise ValueError("num_registers must be non-negative")
    return num_registers * model.register(bits_per_register)


def datapath_bits(fmt: FixedPointFormat | FloatFormat) -> int:
    """Width of one datapath word (register width) for a format."""
    if isinstance(fmt, FixedPointFormat):
        return fmt.total_bits
    if isinstance(fmt, FloatFormat):
        return float_storage_bits(fmt)
    raise TypeError(f"unsupported format type {type(fmt).__name__}")
