"""Serialization of Bayesian networks.

Networks round-trip through a plain-JSON document so that benchmark models
can be saved, versioned and reloaded by the CLI. The format is
intentionally simple:

.. code-block:: json

    {
      "name": "alarm",
      "variables": {"A": ["false", "true"], ...},
      "cpts": [{"child": "A", "parents": [], "table": [...]}, ...]
    }

Tables are stored as nested lists in the same axis order as
:class:`repro.bn.cpt.CPT` (parents first, child last).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .cpt import CPT
from .network import BayesianNetwork
from .variable import Variable


def network_to_dict(network: BayesianNetwork) -> dict:
    """Convert a network to a JSON-serializable dictionary."""
    return {
        "name": network.name,
        "variables": {
            name: list(var.states) for name, var in network.variables.items()
        },
        "cpts": [
            {
                "child": cpt.child.name,
                "parents": list(cpt.parent_names),
                "table": cpt.table.tolist(),
            }
            for cpt in network.cpts()
        ],
    }


def network_from_dict(payload: dict) -> BayesianNetwork:
    """Reconstruct a network from :func:`network_to_dict` output."""
    try:
        variables = {
            name: Variable(name, tuple(states))
            for name, states in payload["variables"].items()
        }
        cpts = [
            CPT(
                variables[entry["child"]],
                tuple(variables[p] for p in entry["parents"]),
                np.asarray(entry["table"], dtype=float),
            )
            for entry in payload["cpts"]
        ]
        return BayesianNetwork(cpts, name=payload.get("name", "bn"))
    except KeyError as exc:
        raise ValueError(f"malformed network document: missing {exc}") from exc


def save_network(network: BayesianNetwork, path: str | Path) -> None:
    """Write a network to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=1))


def load_network(path: str | Path) -> BayesianNetwork:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))


def load_any_network(path: str | Path) -> BayesianNetwork:
    """Load a network from ``.bif`` or ``.json``, dispatching on suffix.

    The single entry point the serving registry (and other front ends
    that accept "a network file") uses: BIF files go through
    :func:`repro.bn.bif.load_bif`, everything else is treated as the
    JSON document of :func:`save_network`.
    """
    path = Path(path)
    if path.suffix.lower() == ".bif":
        from .bif import load_bif

        return load_bif(path)
    return load_network(path)
