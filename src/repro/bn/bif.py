"""BIF (Bayesian Interchange Format) reader and writer.

BIF is the de-facto text format of the classic BN repositories (the
original Alarm network among them). Supporting it lets users feed their
own networks straight into ProbLP:

.. code-block:: text

    network unknown {}
    variable Rain {
      type discrete [ 2 ] { no, yes };
    }
    probability ( Rain ) {
      table 0.8, 0.2;
    }
    probability ( WetGrass | Rain ) {
      ( no ) 0.9, 0.1;
      ( yes ) 0.2, 0.8;
    }

The parser covers the common subset: ``network``, ``variable`` with
``type discrete``, and ``probability`` blocks with either a flat
``table`` (child-major, parents iterating row-wise as in the standard
layout) or per-parent-configuration rows. Writers emit the same subset,
so networks round-trip.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from .cpt import CPT
from .network import BayesianNetwork
from .variable import Variable


class BIFParseError(ValueError):
    """Raised on malformed BIF input."""


_COMMENT = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
# Variable bodies contain one nested brace level (the states list), so
# match a sequence of brace-free runs or single-level braced groups.
_VARIABLE = re.compile(
    r"variable\s+([\w.-]+)\s*\{((?:[^{}]|\{[^{}]*\})*)\}", re.DOTALL
)
_TYPE = re.compile(
    r"type\s+discrete\s*\[\s*(\d+)\s*\]\s*\{([^}]*)\}", re.DOTALL
)
_PROBABILITY = re.compile(
    r"probability\s*\(\s*([^)]*)\)\s*\{([^}]*)\}", re.DOTALL
)
_TABLE = re.compile(r"table\s+([^;]+);")
_ROW = re.compile(r"\(\s*([^)]*)\)\s*([^;]+);")


def _parse_numbers(text: str) -> list[float]:
    return [float(token) for token in text.replace(",", " ").split()]


def parse_bif(text: str) -> BayesianNetwork:
    """Parse BIF text into a :class:`BayesianNetwork`."""
    text = _COMMENT.sub("", text)
    name_match = re.search(r"network\s+([\w.-]+)", text)
    network_name = name_match.group(1) if name_match else "bif"

    variables: dict[str, Variable] = {}
    for match in _VARIABLE.finditer(text):
        var_name, body = match.group(1), match.group(2)
        type_match = _TYPE.search(body)
        if type_match is None:
            raise BIFParseError(
                f"variable {var_name!r} lacks a discrete type declaration"
            )
        cardinality = int(type_match.group(1))
        states = tuple(
            token.strip() for token in type_match.group(2).split(",")
        )
        if len(states) != cardinality:
            raise BIFParseError(
                f"variable {var_name!r} declares {cardinality} states but "
                f"lists {len(states)}"
            )
        variables[var_name] = Variable(var_name, states)

    cpts: list[CPT] = []
    for match in _PROBABILITY.finditer(text):
        header, body = match.group(1), match.group(2)
        if "|" in header:
            child_text, parent_text = header.split("|", 1)
            parent_names = [p.strip() for p in parent_text.split(",")]
        else:
            child_text, parent_names = header, []
        child_name = child_text.strip()
        try:
            child = variables[child_name]
            parents = tuple(variables[p] for p in parent_names)
        except KeyError as exc:
            raise BIFParseError(
                f"probability block references undeclared variable {exc}"
            ) from exc

        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        table = np.zeros(shape)
        table_match = _TABLE.search(body)
        if table_match is not None:
            numbers = _parse_numbers(table_match.group(1))
            if len(numbers) != table.size:
                raise BIFParseError(
                    f"table for {child_name!r} has {len(numbers)} entries, "
                    f"expected {table.size}"
                )
            # BIF flat tables iterate the child fastest within each
            # parent configuration (row-major over our axis order).
            table = np.asarray(numbers).reshape(shape)
        else:
            rows = list(_ROW.finditer(body))
            if not rows:
                raise BIFParseError(
                    f"probability block for {child_name!r} has neither a "
                    f"table nor configuration rows"
                )
            for row in rows:
                state_tokens = [
                    token.strip() for token in row.group(1).split(",")
                ]
                if len(state_tokens) != len(parents):
                    raise BIFParseError(
                        f"row for {child_name!r} lists {len(state_tokens)} "
                        f"parent states, expected {len(parents)}"
                    )
                config = tuple(
                    parent.index_of(token)
                    for parent, token in zip(parents, state_tokens)
                )
                numbers = _parse_numbers(row.group(2))
                if len(numbers) != child.cardinality:
                    raise BIFParseError(
                        f"row {row.group(1)!r} for {child_name!r} has "
                        f"{len(numbers)} entries, expected "
                        f"{child.cardinality}"
                    )
                table[config] = numbers
        cpts.append(CPT(child, parents, table))

    declared = set(variables)
    provided = {cpt.child.name for cpt in cpts}
    missing = declared - provided
    if missing:
        raise BIFParseError(
            f"variables without probability blocks: {sorted(missing)}"
        )
    return BayesianNetwork(cpts, name=network_name)


def load_bif(path: str | Path) -> BayesianNetwork:
    """Read a ``.bif`` file."""
    return parse_bif(Path(path).read_text())


def write_bif(network: BayesianNetwork) -> str:
    """Render a network as BIF text (per-configuration row style)."""
    lines = [f"network {network.name} {{", "}"]
    for name in network.topological_order:
        variable = network.variable(name)
        states = ", ".join(variable.states)
        lines += [
            f"variable {name} {{",
            f"  type discrete [ {variable.cardinality} ] {{ {states} }};",
            "}",
        ]
    for name in network.topological_order:
        cpt = network.cpt(name)
        if not cpt.parents:
            values = ", ".join(f"{v:.10g}" for v in cpt.table)
            lines += [
                f"probability ( {name} ) {{",
                f"  table {values};",
                "}",
            ]
            continue
        header = ", ".join(cpt.parent_names)
        lines.append(f"probability ( {name} | {header} ) {{")
        for config, row in cpt.rows():
            labels = ", ".join(
                parent.states[state]
                for parent, state in zip(cpt.parents, config)
            )
            values = ", ".join(f"{v:.10g}" for v in row)
            lines.append(f"  ( {labels} ) {values};")
        lines.append("}")
    return "\n".join(lines) + "\n"


def save_bif(network: BayesianNetwork, path: str | Path) -> None:
    """Write a network to a ``.bif`` file."""
    Path(path).write_text(write_bif(network))
