"""Naive Bayes classifier wrapper.

Bundles a trained Naive Bayes :class:`~repro.bn.network.BayesianNetwork`
with its class/feature roles and offers fast vectorized posterior
computation. Used by the embedded-sensing benchmarks (HAR / UniMiB /
UIWADS) to form the conditional queries
``Pr(Activity | sensors)`` the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .learning import train_naive_bayes
from .network import BayesianNetwork
from .variable import Variable


@dataclass(frozen=True)
class NaiveBayesClassifier:
    """A trained Naive Bayes model with explicit class/feature roles."""

    network: BayesianNetwork
    class_name: str
    feature_names: tuple[str, ...]

    @classmethod
    def train(
        cls,
        class_variable: Variable,
        feature_variables: list[Variable],
        labels: np.ndarray,
        features: np.ndarray,
        alpha: float = 1.0,
        name: str = "naive_bayes",
    ) -> "NaiveBayesClassifier":
        """Train from integer-coded data (see :func:`train_naive_bayes`)."""
        network = train_naive_bayes(
            class_variable, feature_variables, labels, features, alpha, name
        )
        return cls(
            network=network,
            class_name=class_variable.name,
            feature_names=tuple(v.name for v in feature_variables),
        )

    @property
    def num_classes(self) -> int:
        return self.network.variable(self.class_name).cardinality

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    def log_joint_per_class(self, features: np.ndarray) -> np.ndarray:
        """``log Pr(class = c, features)`` for every sample and class.

        Parameters
        ----------
        features:
            ``(n_samples, n_features)`` integer state matrix in
            ``feature_names`` order.

        Returns
        -------
        ``(n_samples, n_classes)`` array of log joint probabilities.
        """
        features = np.asarray(features, dtype=np.int64)
        if features.ndim != 2 or features.shape[1] != self.num_features:
            raise ValueError(
                f"features must be (n, {self.num_features}), got "
                f"{features.shape}"
            )
        prior = np.log(self.network.cpt(self.class_name).table)
        scores = np.tile(prior, (features.shape[0], 1))
        for j, feature_name in enumerate(self.feature_names):
            table = self.network.cpt(feature_name).table  # (classes, states)
            scores += np.log(table[:, features[:, j]]).T
        return scores

    def posterior(self, features: np.ndarray) -> np.ndarray:
        """``Pr(class | features)`` for every sample, shape ``(n, classes)``."""
        scores = self.log_joint_per_class(features)
        scores -= scores.max(axis=1, keepdims=True)
        probabilities = np.exp(scores)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class index per sample."""
        return self.log_joint_per_class(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of samples whose most probable class matches ``labels``."""
        labels = np.asarray(labels, dtype=np.int64)
        return float((self.predict(features) == labels).mean())
