"""Parameter learning for Bayesian networks.

Implements maximum-likelihood estimation with Laplace (additive) smoothing
from complete discrete data, plus the Naive Bayes trainer used for the
paper's HAR / UniMiB / UIWADS classifiers.
"""

from __future__ import annotations

from itertools import product as iter_product

import numpy as np

from .cpt import CPT
from .network import BayesianNetwork
from .variable import Variable


def estimate_cpt(
    child: Variable,
    parents: tuple[Variable, ...],
    data: np.ndarray,
    columns: dict[str, int],
    alpha: float = 1.0,
) -> CPT:
    """Estimate ``Pr(child | parents)`` from complete data.

    Parameters
    ----------
    data:
        Integer state matrix of shape ``(n_samples, n_columns)``.
    columns:
        Maps variable name to its column index in ``data``.
    alpha:
        Laplace smoothing pseudo-count added to every cell. ``alpha > 0``
        guarantees strictly positive parameters, which in turn bounds the
        AC's minimum value — the quantity that drives exponent-bit
        selection in ProbLP.
    """
    if alpha < 0.0:
        raise ValueError("alpha must be non-negative")
    cards = tuple(p.cardinality for p in parents) + (child.cardinality,)
    counts = np.full(cards, alpha, dtype=float)
    child_col = columns[child.name]
    parent_cols = [columns[p.name] for p in parents]
    for row in data:
        index = tuple(int(row[c]) for c in parent_cols) + (int(row[child_col]),)
        counts[index] += 1.0
    sums = counts.sum(axis=-1, keepdims=True)
    if np.any(sums == 0.0):
        raise ValueError(
            f"no data and no smoothing for some parent configuration of "
            f"{child.name!r}; use alpha > 0"
        )
    return CPT(child, parents, counts / sums)


def fit_parameters(
    structure: list[tuple[Variable, tuple[Variable, ...]]],
    data: np.ndarray,
    columns: dict[str, int],
    alpha: float = 1.0,
    name: str = "learned",
) -> BayesianNetwork:
    """Fit all CPTs of a fixed-structure network from complete data."""
    cpts = [
        estimate_cpt(child, parents, data, columns, alpha)
        for child, parents in structure
    ]
    return BayesianNetwork(cpts, name=name)


def train_naive_bayes(
    class_variable: Variable,
    feature_variables: list[Variable],
    labels: np.ndarray,
    features: np.ndarray,
    alpha: float = 1.0,
    name: str = "naive_bayes",
) -> BayesianNetwork:
    """Train a Naive Bayes classifier as a Bayesian network.

    The class variable is the single root; every feature is a leaf whose
    only parent is the class — matching the paper's experimental setup
    where "the leaf nodes of the BN were used as evidence nodes and one of
    the root nodes as the query node".

    Parameters
    ----------
    labels:
        ``(n_samples,)`` integer class indices.
    features:
        ``(n_samples, n_features)`` integer state matrix, columns in the
        order of ``feature_variables``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    features = np.asarray(features, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"features has {features.shape[0]} rows but labels has "
            f"{labels.shape[0]}"
        )
    if features.shape[1] != len(feature_variables):
        raise ValueError(
            f"features has {features.shape[1]} columns but "
            f"{len(feature_variables)} feature variables were given"
        )
    data = np.column_stack([labels, features])
    columns = {class_variable.name: 0}
    columns.update(
        (var.name, i + 1) for i, var in enumerate(feature_variables)
    )
    structure: list[tuple[Variable, tuple[Variable, ...]]] = [
        (class_variable, ())
    ]
    structure.extend((var, (class_variable,)) for var in feature_variables)
    return fit_parameters(structure, data, columns, alpha, name=name)


def all_parent_configurations(parents: tuple[Variable, ...]):
    """Iterate every joint parent state tuple (empty tuple for roots)."""
    return iter_product(*(range(p.cardinality) for p in parents))
