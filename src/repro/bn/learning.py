"""Parameter learning for Bayesian networks.

Implements maximum-likelihood estimation with Laplace (additive) smoothing
from complete discrete data, plus the Naive Bayes trainer used for the
paper's HAR / UniMiB / UIWADS classifiers.

Parameter *re*-estimation questions — "what if this CPT entry were
different?", "how does ``Pr(e)`` move as one parameter sweeps?" — used to
mean recompiling one circuit per candidate table. PR 7 reroutes them
through the engine's θ-batched tape replay: :class:`NetworkParameterMap`
maps every CPT entry of a network onto its column of the compiled tape's
deduplicated parameter table, and :func:`what_if_evaluations` /
:func:`cpt_sensitivity_curve` evaluate thousands of candidate
parameterizations in one struct-of-arrays sweep, bit-identical to the
sequential per-θ loop.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ThetaShapeError
from .cpt import CPT
from .network import BayesianNetwork
from .variable import Variable


def estimate_cpt(
    child: Variable,
    parents: tuple[Variable, ...],
    data: np.ndarray,
    columns: dict[str, int],
    alpha: float = 1.0,
) -> CPT:
    """Estimate ``Pr(child | parents)`` from complete data.

    Parameters
    ----------
    data:
        Integer state matrix of shape ``(n_samples, n_columns)``.
    columns:
        Maps variable name to its column index in ``data``.
    alpha:
        Laplace smoothing pseudo-count added to every cell. ``alpha > 0``
        guarantees strictly positive parameters, which in turn bounds the
        AC's minimum value — the quantity that drives exponent-bit
        selection in ProbLP.
    """
    if alpha < 0.0:
        raise ValueError("alpha must be non-negative")
    cards = tuple(p.cardinality for p in parents) + (child.cardinality,)
    counts = np.full(cards, alpha, dtype=float)
    child_col = columns[child.name]
    parent_cols = [columns[p.name] for p in parents]
    for row in data:
        index = tuple(int(row[c]) for c in parent_cols) + (int(row[child_col]),)
        counts[index] += 1.0
    sums = counts.sum(axis=-1, keepdims=True)
    if np.any(sums == 0.0):
        raise ValueError(
            f"no data and no smoothing for some parent configuration of "
            f"{child.name!r}; use alpha > 0"
        )
    return CPT(child, parents, counts / sums)


def fit_parameters(
    structure: list[tuple[Variable, tuple[Variable, ...]]],
    data: np.ndarray,
    columns: dict[str, int],
    alpha: float = 1.0,
    name: str = "learned",
) -> BayesianNetwork:
    """Fit all CPTs of a fixed-structure network from complete data."""
    cpts = [
        estimate_cpt(child, parents, data, columns, alpha)
        for child, parents in structure
    ]
    return BayesianNetwork(cpts, name=name)


def train_naive_bayes(
    class_variable: Variable,
    feature_variables: list[Variable],
    labels: np.ndarray,
    features: np.ndarray,
    alpha: float = 1.0,
    name: str = "naive_bayes",
) -> BayesianNetwork:
    """Train a Naive Bayes classifier as a Bayesian network.

    The class variable is the single root; every feature is a leaf whose
    only parent is the class — matching the paper's experimental setup
    where "the leaf nodes of the BN were used as evidence nodes and one of
    the root nodes as the query node".

    Parameters
    ----------
    labels:
        ``(n_samples,)`` integer class indices.
    features:
        ``(n_samples, n_features)`` integer state matrix, columns in the
        order of ``feature_variables``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    features = np.asarray(features, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"features has {features.shape[0]} rows but labels has "
            f"{labels.shape[0]}"
        )
    if features.shape[1] != len(feature_variables):
        raise ValueError(
            f"features has {features.shape[1]} columns but "
            f"{len(feature_variables)} feature variables were given"
        )
    data = np.column_stack([labels, features])
    columns = {class_variable.name: 0}
    columns.update(
        (var.name, i + 1) for i, var in enumerate(feature_variables)
    )
    structure: list[tuple[Variable, tuple[Variable, ...]]] = [
        (class_variable, ())
    ]
    structure.extend((var, (class_variable,)) for var in feature_variables)
    return fit_parameters(structure, data, columns, alpha, name=name)


def all_parent_configurations(parents: tuple[Variable, ...]):
    """Iterate every joint parent state tuple (empty tuple for roots)."""
    return iter_product(*(range(p.cardinality) for p in parents))


#: A CPT entry address: ``(child, child_state)`` for roots, or
#: ``(child, child_state, parent_states)`` where ``parent_states`` is a
#: tuple of ints in the CPT's parent order (or a ``{name: state}`` map).
EntryKey = tuple


class NetworkParameterMap:
    """Maps CPT entries of a network onto θ columns of its compiled tape.

    The compile layer emits one circuit parameter per CPT entry
    (``θ(child=x|u)``) and the tape compiler interns them into a
    deduplicated table — ``tape.param_values`` holds each *distinct*
    value once. This map recovers the correspondence by value: every
    entry ``Pr(child=x | parents=u)`` resolves to the column of the
    tape's parameter table holding its probability, so what-if tables
    become θ rows that :meth:`InferenceSession.evaluate_theta_batch
    <repro.engine.session.InferenceSession.evaluate_theta_batch>` can
    sweep in one batched replay.

    Deduplication is visible on purpose: entries sharing one
    probability share one column, so a what-if on one of them moves the
    whole class. :meth:`theta_row` is strict about that by default —
    an assignment touching a shared column must name every member of
    the class (or pass ``strict=False`` to opt into class-level
    semantics); conflicting values for one class raise
    :class:`~repro.errors.ThetaShapeError`.
    """

    def __init__(
        self,
        network: BayesianNetwork,
        circuit: Any | None = None,
    ) -> None:
        if circuit is None:
            # Compile lazily: compile depends on bn, not the reverse.
            from ..compile import compile_network

            circuit = compile_network(network).circuit
        from ..engine.tape import tape_for

        self.network = network
        self.circuit = circuit
        self.tape = tape_for(circuit)
        column_of_value = {
            float(value): index
            for index, value in enumerate(self.tape.param_values)
        }
        self._columns: dict[tuple, int] = {}
        self._class_members: dict[int, list[tuple]] = {}
        for cpt in network.cpts():
            for parent_states in all_parent_configurations(cpt.parents):
                for child_state in range(cpt.child.cardinality):
                    value = float(cpt.table[parent_states + (child_state,)])
                    try:
                        column = column_of_value[value]
                    except KeyError:
                        raise ValueError(
                            f"CPT entry Pr({cpt.child.name}={child_state} | "
                            f"{parent_states}) = {value!r} does not appear "
                            f"in the circuit's parameter table; the circuit "
                            f"was not compiled from this network"
                        ) from None
                    key = (cpt.child.name, child_state, parent_states)
                    self._columns[key] = column
                    self._class_members.setdefault(column, []).append(key)

    @property
    def width(self) -> int:
        """Number of θ columns (distinct parameter values) of the tape."""
        return len(self.tape.param_values)

    def base_row(self) -> np.ndarray:
        """The tape's own deduplicated parameter table, as one θ row."""
        return np.array(self.tape.param_values, dtype=np.float64)

    def _resolve(self, key: EntryKey) -> tuple:
        if len(key) == 2:
            child, child_state = key
            parent_states: Any = ()
        else:
            child, child_state, parent_states = key
        cpt = self.network.cpt(child)
        if isinstance(parent_states, Mapping):
            try:
                parent_states = tuple(
                    int(parent_states[name]) for name in cpt.parent_names
                )
            except KeyError as missing:
                raise ValueError(
                    f"what-if on {child!r} needs states for all parents "
                    f"{cpt.parent_names}; missing {missing}"
                ) from None
        else:
            parent_states = tuple(int(state) for state in parent_states)
        resolved = (child, int(child_state), parent_states)
        if resolved not in self._columns:
            raise ValueError(
                f"no CPT entry Pr({child}={child_state} | {parent_states}) "
                f"in network {self.network.name!r}"
            )
        return resolved

    def column(self, key: EntryKey) -> int:
        """The θ column holding this entry's (deduplicated) value."""
        return self._columns[self._resolve(key)]

    def shared_entries(self, key: EntryKey) -> tuple[tuple, ...]:
        """Every CPT entry sharing this entry's deduplicated column."""
        return tuple(self._class_members[self.column(key)])

    def theta_row(
        self,
        assignments: Mapping[EntryKey, float],
        strict: bool = True,
    ) -> np.ndarray:
        """One θ row: the base table with the given entries replaced.

        ``strict=True`` (the default) refuses assignments that would
        silently drag unnamed entries along through value
        deduplication; ``strict=False`` applies them to the whole
        class. Conflicting values for one deduplicated column always
        raise :class:`~repro.errors.ThetaShapeError`.
        """
        row = self.base_row()
        chosen: dict[int, tuple[tuple, float]] = {}
        claimed: dict[int, set[tuple]] = {}
        for key, value in assignments.items():
            resolved = self._resolve(key)
            column = self._columns[resolved]
            value = float(value)
            if column in chosen and chosen[column][1] != value:
                other = chosen[column][0]
                raise ThetaShapeError(
                    f"conflicting what-if values for one deduplicated "
                    f"parameter: entries {resolved} and {other} share θ "
                    f"column {column} (value "
                    f"{self.tape.param_values[column]!r}) but were "
                    f"assigned {value!r} and {chosen[column][1]!r}"
                )
            chosen[column] = (resolved, value)
            claimed.setdefault(column, set()).add(resolved)
        if strict:
            for column, keys in claimed.items():
                unnamed = [
                    key
                    for key in self._class_members[column]
                    if key not in keys
                ]
                if unnamed:
                    raise ThetaShapeError(
                        f"what-if on θ column {column} (value "
                        f"{self.tape.param_values[column]!r}) also moves "
                        f"deduplicated entries {unnamed}; assign them "
                        f"explicitly or pass strict=False"
                    )
        for column, (_, value) in chosen.items():
            row[column] = value
        return row

    def what_if_matrix(
        self,
        sweeps: Sequence[Mapping[EntryKey, float]],
        strict: bool = True,
    ) -> np.ndarray:
        """Stack what-if assignments into an ``(n_theta, width)`` batch."""
        if not sweeps:
            raise ThetaShapeError("what-if sweep needs at least one row")
        return np.stack(
            [self.theta_row(assignments, strict=strict) for assignments in sweeps]
        )

    def sensitivity_matrix(
        self,
        key: EntryKey,
        values: Sequence[float],
        renormalize: bool = True,
        strict: bool = True,
    ) -> np.ndarray:
        """θ batch sweeping one CPT entry over candidate values.

        ``renormalize=True`` (the default) rescales the sibling child
        states of the same parent configuration proportionally so every
        row stays a distribution — the classical one-way sensitivity
        scheme. ``renormalize=False`` moves the single entry only.
        """
        child, child_state, parent_states = self._resolve(key)
        cpt = self.network.cpt(child)
        base = float(cpt.table[parent_states + (child_state,)])
        complement = 1.0 - base
        sweeps = []
        for value in values:
            value = float(value)
            assignments: dict[tuple, float] = {
                (child, child_state, parent_states): value
            }
            if renormalize:
                if complement <= 0.0 and value != base:
                    raise ValueError(
                        f"cannot renormalize around Pr({child}="
                        f"{child_state} | {parent_states}) = {base}: the "
                        f"sibling states carry no mass to rescale"
                    )
                for sibling in range(cpt.child.cardinality):
                    if sibling == child_state:
                        continue
                    sibling_base = float(
                        cpt.table[parent_states + (sibling,)]
                    )
                    assignments[(child, sibling, parent_states)] = (
                        sibling_base * (1.0 - value) / complement
                        if complement > 0.0
                        else sibling_base
                    )
            sweeps.append(assignments)
        return self.what_if_matrix(sweeps, strict=strict)


def what_if_evaluations(
    network: BayesianNetwork,
    sweeps: Sequence[Mapping[EntryKey, float]],
    evidence: Mapping[str, int] | None = None,
    circuit: Any | None = None,
    strict: bool = True,
) -> np.ndarray:
    """``Pr(e)`` under each what-if parameterization, in one θ sweep.

    Builds the θ batch with :class:`NetworkParameterMap` and replays the
    network's compiled tape once over all candidate tables —
    bit-identical to evaluating each what-if sequentially, at batched
    throughput (see ``benchmarks/bench_engine_tape.py``).
    """
    parameter_map = NetworkParameterMap(network, circuit)
    theta = parameter_map.what_if_matrix(sweeps, strict=strict)
    from ..engine import session_for

    return session_for(parameter_map.circuit).evaluate_theta_batch(
        theta, evidence
    )


def cpt_sensitivity_curve(
    network: BayesianNetwork,
    key: EntryKey,
    values: Sequence[float],
    evidence: Mapping[str, int] | None = None,
    renormalize: bool = True,
    circuit: Any | None = None,
    strict: bool = True,
) -> np.ndarray:
    """``Pr(e)`` as one CPT entry sweeps over candidate values.

    One batched tape replay instead of one recompilation per point:
    the response of a Bayesian network query to a single parameter —
    the what-if curve sensitivity analysis plots — computed through
    the engine's θ batch axis.
    """
    parameter_map = NetworkParameterMap(network, circuit)
    theta = parameter_map.sensitivity_matrix(
        key, values, renormalize=renormalize, strict=strict
    )
    from ..engine import session_for

    return session_for(parameter_map.circuit).evaluate_theta_batch(
        theta, evidence
    )
