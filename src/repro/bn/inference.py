"""Exact inference by variable elimination.

This is the reference inference engine used to cross-check the compiled
arithmetic circuits, and the numeric twin of the symbolic elimination in
:mod:`repro.compile.elimination`. Factors are dense numpy arrays over a
sorted scope of variable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..errors import ZeroEvidenceError
from .network import BayesianNetwork


@dataclass(frozen=True)
class Factor:
    """A dense non-negative function over a tuple of discrete variables."""

    scope: tuple[str, ...]
    values: np.ndarray  # shape = cards of scope, in scope order

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != len(self.scope):
            raise ValueError(
                f"factor over {self.scope} must have {len(self.scope)} axes, "
                f"got {values.ndim}"
            )
        if tuple(sorted(self.scope)) != tuple(self.scope):
            raise ValueError(
                f"factor scope must be sorted, got {self.scope}; sort the "
                f"axes before constructing the factor"
            )
        object.__setattr__(self, "values", values)

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product, aligning and unioning scopes."""
        scope = tuple(sorted(set(self.scope) | set(other.scope)))
        a = _expand(self, scope)
        b = _expand(other, scope)
        return Factor(scope, a * b)

    def marginalize(self, name: str) -> "Factor":
        """Sum out ``name``."""
        if name not in self.scope:
            raise ValueError(f"{name!r} not in factor scope {self.scope}")
        axis = self.scope.index(name)
        scope = tuple(v for v in self.scope if v != name)
        return Factor(scope, self.values.sum(axis=axis))

    def maximize(self, name: str) -> "Factor":
        """Max out ``name`` (for MPE)."""
        if name not in self.scope:
            raise ValueError(f"{name!r} not in factor scope {self.scope}")
        axis = self.scope.index(name)
        scope = tuple(v for v in self.scope if v != name)
        return Factor(scope, self.values.max(axis=axis))

    def reduce(self, name: str, state: int) -> "Factor":
        """Zero out all entries inconsistent with ``name = state``.

        Keeps the variable in scope so factor shapes stay aligned with the
        symbolic compilation (indicator semantics).
        """
        if name not in self.scope:
            return self
        axis = self.scope.index(name)
        mask = np.zeros(self.values.shape[axis])
        mask[state] = 1.0
        shape = [1] * self.values.ndim
        shape[axis] = -1
        return Factor(self.scope, self.values * mask.reshape(shape))

    def scalar(self) -> float:
        if self.scope:
            raise ValueError(f"factor still has scope {self.scope}")
        return float(self.values)


def _expand(factor: Factor, scope: tuple[str, ...]) -> np.ndarray:
    """Broadcast ``factor.values`` to the (sorted) union ``scope``.

    Because scopes are kept sorted, the factor's axes already appear in
    the right relative order; missing variables become length-1 axes.
    """
    shape = [
        factor.values.shape[factor.scope.index(name)]
        if name in factor.scope
        else 1
        for name in scope
    ]
    return factor.values.reshape(shape)


def network_factors(
    network: BayesianNetwork, evidence: Mapping[str, int] | None = None
) -> list[Factor]:
    """One factor per CPT, with evidence applied as indicator reductions."""
    evidence = dict(evidence or {})
    unknown = set(evidence) - set(network.variable_names)
    if unknown:
        raise ValueError(f"evidence on unknown variables: {sorted(unknown)}")
    factors = []
    for cpt in network.cpts():
        scope_vars = cpt.scope
        names = tuple(v.name for v in scope_vars)
        order = tuple(np.argsort(names))
        values = np.transpose(cpt.table, order)
        factor = Factor(tuple(sorted(names)), values)
        for name, state in evidence.items():
            factor = factor.reduce(name, state)
        factors.append(factor)
    return factors


def eliminate(
    factors: Iterable[Factor],
    order: Iterable[str],
    mode: str = "sum",
) -> Factor:
    """Eliminate variables in ``order`` from the factor set.

    ``mode`` is ``"sum"`` for marginals or ``"max"`` for MPE values.
    Remaining factors are multiplied together at the end.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"mode must be 'sum' or 'max', got {mode!r}")
    pool = list(factors)
    for name in order:
        involved = [f for f in pool if name in f.scope]
        if not involved:
            continue
        pool = [f for f in pool if name not in f.scope]
        product = involved[0]
        for f in involved[1:]:
            product = product.multiply(f)
        pool.append(
            product.marginalize(name) if mode == "sum" else product.maximize(name)
        )
    result = pool[0]
    for f in pool[1:]:
        result = result.multiply(f)
    return result


def probability_of_evidence(
    network: BayesianNetwork,
    evidence: Mapping[str, int],
    order: Iterable[str] | None = None,
) -> float:
    """Exact ``Pr(evidence)`` by variable elimination."""
    from ..compile.ordering import min_fill_order

    if order is None:
        order = min_fill_order(network)
    factors = network_factors(network, evidence)
    return eliminate(factors, order, mode="sum").scalar()


def marginal(
    network: BayesianNetwork,
    query: str,
    evidence: Mapping[str, int] | None = None,
    order: Iterable[str] | None = None,
) -> np.ndarray:
    """Exact posterior ``Pr(query | evidence)`` as a distribution array.

    Raises :class:`~repro.errors.ZeroEvidenceError` (a
    ``ZeroDivisionError`` subclass) when the evidence has probability
    zero.
    """
    evidence = dict(evidence or {})
    if query in evidence:
        raise ValueError(f"query variable {query!r} is also evidence")
    card = network.variable(query).cardinality
    joint = np.empty(card)
    for state in range(card):
        joint[state] = probability_of_evidence(
            network, {**evidence, query: state}, order
        )
    total = joint.sum()
    if total == 0.0:
        raise ZeroEvidenceError(
            f"evidence has probability zero; cannot condition {query!r}"
        )
    return joint / total


def mpe_value(
    network: BayesianNetwork,
    evidence: Mapping[str, int] | None = None,
    order: Iterable[str] | None = None,
) -> float:
    """Probability of the most probable explanation given evidence."""
    from ..compile.ordering import min_fill_order

    if order is None:
        order = min_fill_order(network)
    factors = network_factors(network, evidence or {})
    return eliminate(factors, order, mode="max").scalar()
