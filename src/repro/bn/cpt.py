"""Conditional probability tables (CPTs).

A :class:`CPT` stores ``Pr(X | parents)`` as a dense numpy array whose last
axis ranges over the child's states and whose leading axes range over the
parents' states, in the order the parents are listed. Every row (a slice
along the last axis for one full parent configuration) must sum to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterator

import numpy as np

from .variable import Variable

#: Tolerance for CPT row normalization checks.
ROW_SUM_TOLERANCE = 1e-6


@dataclass(frozen=True)
class CPT:
    """Conditional probability table ``Pr(child | parents)``.

    Parameters
    ----------
    child:
        The variable whose distribution this table specifies.
    parents:
        Ordered tuple of parent variables; may be empty for root nodes.
    table:
        Array of shape ``(*parent_cards, child_card)``. Rows along the last
        axis must be valid distributions.
    """

    child: Variable
    parents: tuple[Variable, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        if not isinstance(self.parents, tuple):
            object.__setattr__(self, "parents", tuple(self.parents))
        arr = np.asarray(self.table, dtype=float)
        expected = tuple(p.cardinality for p in self.parents) + (
            self.child.cardinality,
        )
        if arr.shape != expected:
            raise ValueError(
                f"CPT for {self.child.name!r}: table shape {arr.shape} does "
                f"not match expected {expected} from parents "
                f"{[p.name for p in self.parents]}"
            )
        if np.any(arr < 0.0) or np.any(arr > 1.0):
            raise ValueError(
                f"CPT for {self.child.name!r} contains entries outside [0, 1]"
            )
        sums = arr.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=ROW_SUM_TOLERANCE):
            worst = float(np.abs(sums - 1.0).max())
            raise ValueError(
                f"CPT for {self.child.name!r} has rows that do not sum to 1 "
                f"(worst deviation {worst:.3e})"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "table", arr)

    @property
    def parent_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parents)

    @property
    def scope(self) -> tuple[Variable, ...]:
        """All variables the table mentions: parents then child."""
        return self.parents + (self.child,)

    def probability(
        self, child_state: int, parent_states: tuple[int, ...] = ()
    ) -> float:
        """Return ``Pr(child = child_state | parents = parent_states)``."""
        if len(parent_states) != len(self.parents):
            raise ValueError(
                f"CPT for {self.child.name!r} expects "
                f"{len(self.parents)} parent states, got {len(parent_states)}"
            )
        return float(self.table[parent_states + (child_state,)])

    def rows(self) -> Iterator[tuple[tuple[int, ...], np.ndarray]]:
        """Yield ``(parent_configuration, distribution_row)`` pairs."""
        cards = [p.cardinality for p in self.parents]
        for config in iter_product(*(range(c) for c in cards)):
            yield config, self.table[config]

    def parameters(self) -> Iterator[tuple[tuple[int, ...], int, float]]:
        """Yield every parameter as ``(parent_config, child_state, value)``."""
        for config, row in self.rows():
            for state, value in enumerate(row):
                yield config, state, float(value)

    def min_positive(self) -> float:
        """Smallest strictly positive entry (``inf`` if the table is all-zero)."""
        positive = self.table[self.table > 0.0]
        return float(positive.min()) if positive.size else float("inf")

    def __repr__(self) -> str:
        parents = ", ".join(self.parent_names)
        return f"CPT(Pr({self.child.name} | {parents}))"


def uniform_cpt(child: Variable, parents: tuple[Variable, ...] = ()) -> CPT:
    """A CPT assigning the uniform distribution for every parent config."""
    shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
    table = np.full(shape, 1.0 / child.cardinality)
    return CPT(child, parents, table)


def random_cpt(
    child: Variable,
    parents: tuple[Variable, ...],
    rng: np.random.Generator,
    concentration: float = 1.0,
    min_probability: float = 0.0,
) -> CPT:
    """Sample a CPT with Dirichlet-distributed rows.

    Parameters
    ----------
    concentration:
        Dirichlet concentration; values < 1 produce peaked rows, > 1
        near-uniform rows.
    min_probability:
        Optional floor applied to every entry (rows are renormalized), which
        bounds the network's minimum value — useful when constructing
        benchmarks with a controlled dynamic range.
    """
    shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
    rows = rng.dirichlet(
        [concentration] * child.cardinality,
        size=int(np.prod(shape[:-1], dtype=int)) if shape[:-1] else 1,
    )
    if min_probability > 0.0:
        if min_probability * child.cardinality >= 1.0:
            raise ValueError("min_probability too large for cardinality")
        rows = np.clip(rows, min_probability, None)
        rows = rows / rows.sum(axis=-1, keepdims=True)
    table = rows.reshape(shape)
    return CPT(child, parents, table)
