"""Small Bayesian networks for examples, tests and documentation."""

from __future__ import annotations

import numpy as np

from ..cpt import CPT, random_cpt
from ..network import BayesianNetwork
from ..variable import Variable


def figure1_network() -> BayesianNetwork:
    """The three-node network of Figure 1a in the paper.

    ``A`` is a binary root with children ``B`` (binary) and ``C``
    (three-valued), so the paper's example evidence ``{A=a1, C=c3}`` is
    expressible. Parameter values are illustrative.
    """
    a = Variable("A", ("a1", "a2"))
    b = Variable("B", ("b1", "b2"))
    c = Variable("C", ("c1", "c2", "c3"))
    return BayesianNetwork(
        [
            CPT(a, (), np.array([0.6, 0.4])),
            CPT(b, (a,), np.array([[0.7, 0.3], [0.2, 0.8]])),
            CPT(
                c,
                (a,),
                np.array([[0.5, 0.3, 0.2], [0.1, 0.3, 0.6]]),
            ),
        ],
        name="figure1",
    )


def sprinkler_network() -> BayesianNetwork:
    """The classic cloudy/sprinkler/rain/wet-grass network."""
    cloudy = Variable("Cloudy", ("false", "true"))
    sprinkler = Variable("Sprinkler", ("false", "true"))
    rain = Variable("Rain", ("false", "true"))
    wet = Variable("WetGrass", ("false", "true"))
    return BayesianNetwork(
        [
            CPT(cloudy, (), np.array([0.5, 0.5])),
            CPT(sprinkler, (cloudy,), np.array([[0.5, 0.5], [0.9, 0.1]])),
            CPT(rain, (cloudy,), np.array([[0.8, 0.2], [0.2, 0.8]])),
            CPT(
                wet,
                (sprinkler, rain),
                np.array(
                    [
                        [[1.0, 0.0], [0.1, 0.9]],
                        [[0.1, 0.9], [0.01, 0.99]],
                    ]
                ),
            ),
        ],
        name="sprinkler",
    )


def landscape_network() -> BayesianNetwork:
    """The per-cell habitat model of the raster landscape workload.

    Rain/soil roots, vegetation, presence — every CPT entry carries a
    distinct base value on purpose: value deduplication then maps each
    entry onto its *own* θ column of the compiled tape, so per-cell
    spatial fields can move any entry independently
    (see :mod:`repro.experiments.landscape`).
    """
    rain = Variable("Rain", ("dry", "wet"))
    soil = Variable("Soil", ("poor", "rich"))
    vegetation = Variable("Vegetation", ("sparse", "dense"))
    presence = Variable("Presence", ("absent", "present"))
    return BayesianNetwork(
        [
            CPT(rain, (), np.array([0.62, 0.38])),
            CPT(soil, (), np.array([0.55, 0.45])),
            CPT(
                vegetation,
                (rain, soil),
                np.array(
                    [
                        [[0.91, 0.09], [0.66, 0.34]],
                        [[0.47, 0.53], [0.18, 0.82]],
                    ]
                ),
            ),
            CPT(
                presence,
                (vegetation,),
                np.array([[0.88, 0.12], [0.27, 0.73]]),
            ),
        ],
        name="landscape",
    )


def asia_network() -> BayesianNetwork:
    """The Lauritzen & Spiegelhalter "Asia" chest-clinic network."""
    asia = Variable("Asia", ("no", "yes"))
    tub = Variable("Tuberculosis", ("no", "yes"))
    smoke = Variable("Smoking", ("no", "yes"))
    lung = Variable("LungCancer", ("no", "yes"))
    bronc = Variable("Bronchitis", ("no", "yes"))
    either = Variable("Either", ("no", "yes"))
    xray = Variable("Xray", ("normal", "abnormal"))
    dysp = Variable("Dyspnea", ("no", "yes"))
    return BayesianNetwork(
        [
            CPT(asia, (), np.array([0.99, 0.01])),
            CPT(tub, (asia,), np.array([[0.99, 0.01], [0.95, 0.05]])),
            CPT(smoke, (), np.array([0.5, 0.5])),
            CPT(lung, (smoke,), np.array([[0.99, 0.01], [0.9, 0.1]])),
            CPT(bronc, (smoke,), np.array([[0.7, 0.3], [0.4, 0.6]])),
            CPT(
                either,
                (tub, lung),
                np.array(
                    [
                        [[1.0, 0.0], [0.0, 1.0]],
                        [[0.0, 1.0], [0.0, 1.0]],
                    ]
                ),
            ),
            CPT(xray, (either,), np.array([[0.95, 0.05], [0.02, 0.98]])),
            CPT(
                dysp,
                (bronc, either),
                np.array(
                    [
                        [[0.9, 0.1], [0.3, 0.7]],
                        [[0.2, 0.8], [0.1, 0.9]],
                    ]
                ),
            ),
        ],
        name="asia",
    )


def chain_network(
    length: int, cardinality: int = 2, seed: int = 0
) -> BayesianNetwork:
    """A Markov chain ``X0 -> X1 -> ... -> X(length-1)``."""
    if length < 1:
        raise ValueError("length must be at least 1")
    rng = np.random.default_rng(seed)
    variables = [
        Variable(f"X{i}", tuple(f"s{j}" for j in range(cardinality)))
        for i in range(length)
    ]
    cpts = [random_cpt(variables[0], (), rng, min_probability=0.01)]
    cpts.extend(
        random_cpt(variables[i], (variables[i - 1],), rng, min_probability=0.01)
        for i in range(1, length)
    )
    return BayesianNetwork(cpts, name=f"chain{length}")


def tree_network(
    depth: int, branching: int = 2, cardinality: int = 2, seed: int = 0
) -> BayesianNetwork:
    """A complete rooted tree of the given depth and branching factor."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    rng = np.random.default_rng(seed)
    states = tuple(f"s{j}" for j in range(cardinality))
    root = Variable("N0", states)
    cpts = [random_cpt(root, (), rng, min_probability=0.01)]
    frontier = [root]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = Variable(f"N{counter}", states)
                counter += 1
                cpts.append(random_cpt(child, (parent,), rng, min_probability=0.01))
                next_frontier.append(child)
        frontier = next_frontier
    return BayesianNetwork(cpts, name=f"tree_d{depth}_b{branching}")


def random_network(
    num_variables: int,
    max_parents: int = 3,
    max_cardinality: int = 3,
    seed: int = 0,
    min_probability: float = 0.01,
) -> BayesianNetwork:
    """A random DAG network for property-based testing.

    Nodes are created in index order; each node picks up to ``max_parents``
    parents uniformly from its predecessors, so the graph is acyclic by
    construction.
    """
    if num_variables < 1:
        raise ValueError("num_variables must be at least 1")
    rng = np.random.default_rng(seed)
    variables = []
    for i in range(num_variables):
        card = int(rng.integers(2, max_cardinality + 1))
        variables.append(Variable(f"V{i}", tuple(f"s{j}" for j in range(card))))
    cpts = []
    for i, var in enumerate(variables):
        limit = min(i, max_parents)
        n_parents = int(rng.integers(0, limit + 1)) if limit else 0
        parent_ids = rng.choice(i, size=n_parents, replace=False) if n_parents else []
        parents = tuple(variables[j] for j in sorted(int(j) for j in parent_ids))
        cpts.append(
            random_cpt(var, parents, rng, min_probability=min_probability)
        )
    return BayesianNetwork(cpts, name=f"random{num_variables}_seed{seed}")
