"""The ALARM patient-monitoring network (Beinlich et al., 1989).

This is the standard 37-node, 46-edge Bayesian network used by the paper
for bound validation (Figure 5) and in Table 2. The structure and
cardinalities below are the canonical ones. CPT entries follow the
published distribution; for a few large tables whose exact historical
values are ambiguous across distributions, faithful peaked approximations
with the same dynamic range are used (see DESIGN.md §4) — the paper's
experiments depend on AC structure and parameter ranges, not exact values.
"""

from __future__ import annotations

import numpy as np

from ..cpt import CPT
from ..network import BayesianNetwork
from ..variable import Variable

# State vocabularies reused across nodes.
TF = ("true", "false")
LNH = ("low", "normal", "high")
ZLNH = ("zero", "low", "normal", "high")


def _peaked(cardinality: int, peak: int, mass: float = 0.97) -> list[float]:
    """A distribution with ``mass`` at ``peak`` and the rest spread evenly."""
    rest = (1.0 - mass) / (cardinality - 1)
    row = [rest] * cardinality
    row[peak] = mass
    return row


def alarm_network() -> BayesianNetwork:
    """Construct the ALARM network."""
    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    history = Variable("HISTORY", TF)
    cvp = Variable("CVP", LNH)
    pcwp = Variable("PCWP", LNH)
    hypovolemia = Variable("HYPOVOLEMIA", TF)
    lvedvolume = Variable("LVEDVOLUME", LNH)
    lvfailure = Variable("LVFAILURE", TF)
    strokevolume = Variable("STROKEVOLUME", LNH)
    errlowoutput = Variable("ERRLOWOUTPUT", TF)
    hrbp = Variable("HRBP", LNH)
    hrekg = Variable("HREKG", LNH)
    errcauter = Variable("ERRCAUTER", TF)
    hrsat = Variable("HRSAT", LNH)
    insuffanesth = Variable("INSUFFANESTH", TF)
    anaphylaxis = Variable("ANAPHYLAXIS", TF)
    tpr = Variable("TPR", LNH)
    expco2 = Variable("EXPCO2", ZLNH)
    kinkedtube = Variable("KINKEDTUBE", TF)
    minvol = Variable("MINVOL", ZLNH)
    fio2 = Variable("FIO2", ("low", "normal"))
    pvsat = Variable("PVSAT", LNH)
    sao2 = Variable("SAO2", LNH)
    pap = Variable("PAP", LNH)
    pulmembolus = Variable("PULMEMBOLUS", TF)
    shunt = Variable("SHUNT", ("normal", "high"))
    intubation = Variable("INTUBATION", ("normal", "esophageal", "onesided"))
    press = Variable("PRESS", ZLNH)
    disconnect = Variable("DISCONNECT", TF)
    minvolset = Variable("MINVOLSET", LNH)
    ventmach = Variable("VENTMACH", ZLNH)
    venttube = Variable("VENTTUBE", ZLNH)
    ventlung = Variable("VENTLUNG", ZLNH)
    ventalv = Variable("VENTALV", ZLNH)
    artco2 = Variable("ARTCO2", LNH)
    catechol = Variable("CATECHOL", ("normal", "high"))
    hr = Variable("HR", LNH)
    co = Variable("CO", LNH)
    bp = Variable("BP", LNH)

    cpts: list[CPT] = []

    # ------------------------------------------------------------------
    # Root priors
    # ------------------------------------------------------------------
    cpts.append(CPT(hypovolemia, (), np.array([0.2, 0.8])))
    cpts.append(CPT(lvfailure, (), np.array([0.05, 0.95])))
    cpts.append(CPT(errlowoutput, (), np.array([0.05, 0.95])))
    cpts.append(CPT(errcauter, (), np.array([0.1, 0.9])))
    cpts.append(CPT(insuffanesth, (), np.array([0.1, 0.9])))
    cpts.append(CPT(anaphylaxis, (), np.array([0.01, 0.99])))
    cpts.append(CPT(kinkedtube, (), np.array([0.04, 0.96])))
    cpts.append(CPT(fio2, (), np.array([0.05, 0.95])))
    cpts.append(CPT(pulmembolus, (), np.array([0.01, 0.99])))
    cpts.append(CPT(intubation, (), np.array([0.92, 0.03, 0.05])))
    cpts.append(CPT(disconnect, (), np.array([0.1, 0.9])))
    cpts.append(CPT(minvolset, (), np.array([0.05, 0.90, 0.05])))

    # ------------------------------------------------------------------
    # Cardiovascular chain
    # ------------------------------------------------------------------
    cpts.append(CPT(history, (lvfailure,), np.array([[0.9, 0.1], [0.01, 0.99]])))
    # LVEDVOLUME | HYPOVOLEMIA, LVFAILURE
    cpts.append(
        CPT(
            lvedvolume,
            (hypovolemia, lvfailure),
            np.array(
                [
                    [[0.95, 0.04, 0.01], [0.98, 0.01, 0.01]],
                    [[0.01, 0.09, 0.90], [0.05, 0.90, 0.05]],
                ]
            ),
        )
    )
    cpts.append(
        CPT(
            cvp,
            (lvedvolume,),
            np.array(
                [
                    [0.95, 0.04, 0.01],
                    [0.04, 0.95, 0.01],
                    [0.01, 0.29, 0.70],
                ]
            ),
        )
    )
    cpts.append(
        CPT(
            pcwp,
            (lvedvolume,),
            np.array(
                [
                    [0.95, 0.04, 0.01],
                    [0.04, 0.95, 0.01],
                    [0.01, 0.04, 0.95],
                ]
            ),
        )
    )
    # STROKEVOLUME | HYPOVOLEMIA, LVFAILURE
    cpts.append(
        CPT(
            strokevolume,
            (hypovolemia, lvfailure),
            np.array(
                [
                    [[0.98, 0.01, 0.01], [0.50, 0.49, 0.01]],
                    [[0.95, 0.04, 0.01], [0.05, 0.90, 0.05]],
                ]
            ),
        )
    )

    # ------------------------------------------------------------------
    # Anaphylaxis / vascular resistance
    # ------------------------------------------------------------------
    cpts.append(
        CPT(
            tpr,
            (anaphylaxis,),
            np.array([[0.98, 0.01, 0.01], [0.3, 0.4, 0.3]]),
        )
    )

    # ------------------------------------------------------------------
    # Ventilation chain
    # ------------------------------------------------------------------
    # VENTMACH | MINVOLSET
    cpts.append(
        CPT(
            ventmach,
            (minvolset,),
            np.array(
                [
                    [0.05, 0.93, 0.01, 0.01],
                    [0.05, 0.01, 0.93, 0.01],
                    [0.05, 0.01, 0.01, 0.93],
                ]
            ),
        )
    )
    # VENTTUBE | DISCONNECT, VENTMACH
    venttube_rows = np.empty((2, 4, 4))
    for machine_state in range(4):
        venttube_rows[0, machine_state] = _peaked(4, 0)  # disconnected -> zero
        venttube_rows[1, machine_state] = _peaked(4, machine_state)
    cpts.append(CPT(venttube, (disconnect, ventmach), venttube_rows))

    # VENTLUNG | INTUBATION, KINKEDTUBE, VENTTUBE
    ventlung_rows = np.empty((3, 2, 4, 4))
    for intubation_state in range(3):
        for kinked_state in range(2):
            for tube_state in range(4):
                if intubation_state == 1:  # esophageal -> no lung ventilation
                    row = _peaked(4, 0)
                elif kinked_state == 0:  # kinked tube -> at most low
                    row = _peaked(4, min(tube_state, 1), mass=0.60)
                elif intubation_state == 2:  # one-sided -> reduced
                    row = _peaked(4, max(tube_state - 1, 0), mass=0.85)
                else:
                    row = _peaked(4, tube_state)
                ventlung_rows[intubation_state, kinked_state, tube_state] = row
    cpts.append(CPT(ventlung, (intubation, kinkedtube, venttube), ventlung_rows))

    # VENTALV | INTUBATION, VENTLUNG
    ventalv_rows = np.empty((3, 4, 4))
    for intubation_state in range(3):
        for lung_state in range(4):
            if intubation_state == 1:  # esophageal
                row = _peaked(4, 0)
            elif intubation_state == 2:  # one-sided
                row = _peaked(4, max(lung_state - 1, 0), mass=0.85)
            else:
                row = _peaked(4, lung_state)
            ventalv_rows[intubation_state, lung_state] = row
    cpts.append(CPT(ventalv, (intubation, ventlung), ventalv_rows))

    # MINVOL | INTUBATION, VENTLUNG
    minvol_rows = np.empty((3, 4, 4))
    for intubation_state in range(3):
        for lung_state in range(4):
            if intubation_state == 1:
                row = _peaked(4, 0)
            else:
                row = _peaked(4, lung_state)
            minvol_rows[intubation_state, lung_state] = row
    cpts.append(CPT(minvol, (intubation, ventlung), minvol_rows))

    # PRESS | INTUBATION, KINKEDTUBE, VENTTUBE
    press_rows = np.empty((3, 2, 4, 4))
    for intubation_state in range(3):
        for kinked_state in range(2):
            for tube_state in range(4):
                if tube_state == 0:
                    row = _peaked(4, 0)
                elif kinked_state == 0:  # kinked -> pressure spikes high
                    row = _peaked(4, 3, mass=0.70)
                elif intubation_state == 1:  # esophageal -> low pressure
                    row = _peaked(4, 1, mass=0.70)
                elif intubation_state == 2:  # one-sided -> elevated
                    row = _peaked(4, min(tube_state + 1, 3), mass=0.70)
                else:
                    row = _peaked(4, tube_state)
                press_rows[intubation_state, kinked_state, tube_state] = row
    cpts.append(CPT(press, (intubation, kinkedtube, venttube), press_rows))

    # ARTCO2 | VENTALV
    cpts.append(
        CPT(
            artco2,
            (ventalv,),
            np.array(
                [
                    [0.01, 0.01, 0.98],
                    [0.01, 0.01, 0.98],
                    [0.04, 0.92, 0.04],
                    [0.90, 0.09, 0.01],
                ]
            ),
        )
    )
    # EXPCO2 | ARTCO2, VENTLUNG
    expco2_rows = np.empty((3, 4, 4))
    for art_state in range(3):
        for lung_state in range(4):
            if lung_state == 0:
                row = _peaked(4, 0)
            else:
                row = _peaked(4, art_state + 1)
            expco2_rows[art_state, lung_state] = row
    cpts.append(CPT(expco2, (artco2, ventlung), expco2_rows))

    # ------------------------------------------------------------------
    # Oxygenation chain
    # ------------------------------------------------------------------
    # PVSAT | FIO2, VENTALV
    pvsat_rows = np.empty((2, 4, 3))
    for fio2_state in range(2):
        for alv_state in range(4):
            if alv_state == 0:
                row = _peaked(3, 0, mass=0.98)
            elif fio2_state == 0:  # low inspired oxygen
                row = _peaked(3, 0, mass=0.95)
            elif alv_state == 1:
                row = _peaked(3, 0, mass=0.95)
            elif alv_state == 2:
                row = _peaked(3, 1, mass=0.95)
            else:
                row = _peaked(3, 2, mass=0.98)
            pvsat_rows[fio2_state, alv_state] = row
    cpts.append(CPT(pvsat, (fio2, ventalv), pvsat_rows))

    # SHUNT | INTUBATION, PULMEMBOLUS
    cpts.append(
        CPT(
            shunt,
            (intubation, pulmembolus),
            np.array(
                [
                    [[0.10, 0.90], [0.95, 0.05]],
                    [[0.10, 0.90], [0.95, 0.05]],
                    [[0.01, 0.99], [0.05, 0.95]],
                ]
            ),
        )
    )
    # SAO2 | PVSAT, SHUNT
    cpts.append(
        CPT(
            sao2,
            (pvsat, shunt),
            np.array(
                [
                    [[0.98, 0.01, 0.01], [0.98, 0.01, 0.01]],
                    [[0.01, 0.98, 0.01], [0.98, 0.01, 0.01]],
                    [[0.01, 0.01, 0.98], [0.69, 0.30, 0.01]],
                ]
            ),
        )
    )
    cpts.append(
        CPT(
            pap,
            (pulmembolus,),
            np.array([[0.01, 0.19, 0.80], [0.05, 0.90, 0.05]]),
        )
    )

    # ------------------------------------------------------------------
    # Catecholamine response and heart
    # ------------------------------------------------------------------
    # CATECHOL | ARTCO2, INSUFFANESTH, SAO2, TPR — 54 rows built from a
    # stress score: any hypoxia / hypercapnia / low resistance /
    # light anesthesia pushes catecholamine high.
    catechol_rows = np.empty((3, 2, 3, 3, 2))
    for art_state in range(3):
        for anesth_state in range(2):
            for sao2_state in range(3):
                for tpr_state in range(3):
                    stress = 0.0
                    if art_state == 2:
                        stress += 1.5
                    if anesth_state == 0:
                        stress += 1.0
                    if sao2_state == 0:
                        stress += 2.0
                    if tpr_state == 0:
                        stress += 1.0
                    p_high = min(0.05 + 0.30 * stress, 0.99)
                    catechol_rows[
                        art_state, anesth_state, sao2_state, tpr_state
                    ] = [1.0 - p_high, p_high]
    cpts.append(CPT(catechol, (artco2, insuffanesth, sao2, tpr), catechol_rows))

    cpts.append(
        CPT(
            hr,
            (catechol,),
            np.array([[0.05, 0.90, 0.05], [0.01, 0.09, 0.90]]),
        )
    )
    # HRBP | ERRLOWOUTPUT, HR
    hrbp_rows = np.empty((2, 3, 3))
    for hr_state in range(3):
        hrbp_rows[0, hr_state] = _peaked(3, 0, mass=0.60)  # error -> reads low
        hrbp_rows[1, hr_state] = _peaked(3, hr_state, mass=0.98)
    cpts.append(CPT(hrbp, (errlowoutput, hr), hrbp_rows))
    # HREKG / HRSAT | ERRCAUTER, HR — cauterization noise flattens readings
    noisy = np.array([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0])
    for meter in (hrekg, hrsat):
        rows = np.empty((2, 3, 3))
        for hr_state in range(3):
            rows[0, hr_state] = noisy
            rows[1, hr_state] = _peaked(3, hr_state, mass=0.98)
        cpts.append(CPT(meter, (errcauter, hr), rows))

    # CO | HR, STROKEVOLUME — cardiac output rises with both
    co_rows = np.empty((3, 3, 3))
    for hr_state in range(3):
        for sv_state in range(3):
            level = (hr_state + sv_state) / 2.0
            if level < 0.75:
                row = _peaked(3, 0, mass=0.95)
            elif level < 1.5:
                row = _peaked(3, 1, mass=0.90)
            else:
                row = _peaked(3, 2, mass=0.95)
            co_rows[hr_state, sv_state] = row
    cpts.append(CPT(co, (hr, strokevolume), co_rows))

    # BP | CO, TPR — blood pressure from output and resistance
    bp_rows = np.empty((3, 3, 3))
    for co_state in range(3):
        for tpr_state in range(3):
            level = (co_state + tpr_state) / 2.0
            if level < 0.75:
                row = _peaked(3, 0, mass=0.90)
            elif level < 1.5:
                row = _peaked(3, 1, mass=0.85)
            else:
                row = _peaked(3, 2, mass=0.90)
            bp_rows[co_state, tpr_state] = row
    cpts.append(CPT(bp, (co, tpr), bp_rows))

    return BayesianNetwork(cpts, name="alarm")
