"""Benchmark Bayesian networks.

Provides the paper's Alarm network, the Figure-1 example, classic toy
networks, and random generators for property-based testing. Networks are
available through :func:`get_network` by name.
"""

from __future__ import annotations

from typing import Callable

from ..network import BayesianNetwork
from .alarm import alarm_network
from .toy import (
    asia_network,
    chain_network,
    figure1_network,
    landscape_network,
    random_network,
    sprinkler_network,
    tree_network,
)

_REGISTRY: dict[str, Callable[[], BayesianNetwork]] = {
    "alarm": alarm_network,
    "asia": asia_network,
    "figure1": figure1_network,
    "landscape": landscape_network,
    "sprinkler": sprinkler_network,
}


def available_networks() -> tuple[str, ...]:
    """Names accepted by :func:`get_network`."""
    return tuple(sorted(_REGISTRY))


def get_network(name: str) -> BayesianNetwork:
    """Instantiate a benchmark network by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {available_networks()}"
        ) from None
    return factory()


__all__ = [
    "alarm_network",
    "asia_network",
    "available_networks",
    "chain_network",
    "figure1_network",
    "get_network",
    "landscape_network",
    "random_network",
    "sprinkler_network",
    "tree_network",
]
